//! Command-line interface to the Bolt reproduction.
//!
//! ```text
//! bolt-cli models                              list the model zoo
//! bolt-cli compile resnet-50 --batch 32        compile + simulated timing
//! bolt-cli compile repvgg-a0 --emit            also print generated CUDA
//! bolt-cli ansor resnet-18 --trials 128        Ansor baseline on a model
//! bolt-cli gemm 1280 3072 768                  profile one GEMM workload
//! ```
//!
//! Every command accepts `--arch t4|v100|a100` (default `t4`).

use std::process::ExitCode;

use bolt::{AnsorBackend, BoltCompiler, BoltConfig};
use bolt_cutlass::{Epilogue, GemmProblem, VendorLibrary};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_models::{model_by_name, FIGURE10_MODELS};
use bolt_tensor::DType;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => Some(iter.next().expect("peeked")),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn usize_flag(&self, name: &str, default: usize) -> usize {
        self.flag(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn arch(&self) -> GpuArch {
        match self.flag("arch").unwrap_or("t4") {
            "v100" => GpuArch::tesla_v100(),
            "a100" => GpuArch::a100(),
            _ => GpuArch::tesla_t4(),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bolt-cli models\n  bolt-cli compile <model> [--batch N] [--emit] [--timeline out.csv] [--cache cache.json] [--arch t4|v100|a100]\n  bolt-cli ansor <model> [--batch N] [--trials N] [--arch ...]\n  bolt-cli gemm <M> <N> <K> [--batch B] [--arch ...]\n\nmodels: {}",
        FIGURE10_MODELS.join(", ")
    );
    ExitCode::FAILURE
}

fn cmd_models() -> ExitCode {
    println!("model zoo (plus vgg-11/13, resnet-34, repvgg-a1, repvggaug-*):");
    for name in FIGURE10_MODELS {
        let info = model_by_name(name, 1);
        println!(
            "  {name:<12} {:>7.1} M params, {} graph nodes",
            info.params_m,
            info.graph.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_compile(args: &Args) -> ExitCode {
    let Some(name) = args.positional.get(1) else {
        return usage();
    };
    let batch = args.usize_flag("batch", 32);
    let arch = args.arch();
    let info = model_by_name(name, batch);
    let graph = match PassManager::deployment().run(&info.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("graph passes failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--cache` (or the BOLT_TUNE_CACHE env var) makes the compiler load
    // a warm autotune cache at construction and save it after compiling.
    let config = BoltConfig {
        cache_path: args.flag("cache").map(std::path::PathBuf::from),
        ..BoltConfig::default()
    };
    let compiler = BoltCompiler::new(arch, config);
    let model = match compiler.compile(&graph) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = model.time();
    println!(
        "{name} @ batch {batch} on {}: {:.2} ms / batch = {:.0} img/s",
        model.arch().name,
        report.total_us / 1e3,
        report.images_per_sec(batch)
    );
    println!(
        "{} steps, {} device kernels; profiled {} workloads ({} measurements, {} pruned, {:.1} min simulated tuning)",
        model.steps().len(),
        model.kernel_count(),
        model.tuning.workloads,
        model.tuning.measurements,
        model.tuning.pruned,
        model.tuning.tuning_seconds / 60.0
    );
    println!("\nhottest kernels:");
    for e in report.timeline.hottest(8) {
        println!("  {:>9.1} us  {:<14} {}", e.duration_us, e.bound, e.name);
    }
    if let Some(path) = args.flag("timeline") {
        let mut csv = String::from("start_us,duration_us,bound,name\n");
        for e in report.timeline.events() {
            csv.push_str(&format!(
                "{:.3},{:.3},{},{}\n",
                e.start_us, e.duration_us, e.bound, e.name
            ));
        }
        if std::fs::write(path, csv).is_ok() {
            println!("\nwrote timeline to {path}");
        }
    }
    if let Some(path) = args.flag("cache") {
        if std::path::Path::new(&path).is_file() {
            println!("tuning cache saved to {path}");
        }
    }
    if args.has("emit") {
        println!("\n{}", model.emit_cuda());
    }
    ExitCode::SUCCESS
}

fn cmd_ansor(args: &Args) -> ExitCode {
    let Some(name) = args.positional.get(1) else {
        return usage();
    };
    let batch = args.usize_flag("batch", 32);
    let trials = args.usize_flag("trials", 128);
    let arch = args.arch();
    let info = model_by_name(name, batch);
    let graph = PassManager::deployment().run(&info.graph).expect("passes");
    let backend = AnsorBackend::with_trials(&arch, trials);
    match backend.evaluate(&graph) {
        Ok((timing, tuning)) => {
            println!(
                "{name} @ batch {batch} via Ansor ({trials} trials/task): {:.2} ms / batch = {:.0} img/s",
                timing.total_us / 1e3,
                batch as f64 / (timing.total_us / 1e6)
            );
            println!(
                "{} tasks, {} trials, {:.1} h simulated tuning",
                tuning.tasks.len(),
                tuning.total_trials,
                tuning.tuning_hours()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ansor evaluation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_gemm(args: &Args) -> ExitCode {
    let dims: Vec<usize> = args.positional[1..]
        .iter()
        .filter_map(|v| v.parse().ok())
        .collect();
    let [m, n, k] = dims[..] else {
        return usage();
    };
    let arch = args.arch();
    let mut problem = GemmProblem::fp16(m, n, k);
    problem.batch = args.usize_flag("batch", 1);

    let profiler = bolt::BoltProfiler::new(&arch, 30);
    let best = profiler
        .profile_gemm(&problem, &Epilogue::linear(DType::F16))
        .expect("no legal config");
    let tflops = problem.flops() / (best.time_us * 1e6);
    println!(
        "{problem} on {}: best {} -> {:.1} us ({tflops:.1} TFLOPS, {} candidates profiled)",
        arch.name,
        best.config.tag(),
        best.time_us,
        best.candidates
    );
    let vendor = VendorLibrary::new(&arch);
    let vendor_us = vendor.gemm_time_us(&problem);
    println!(
        "vendor library (exhaustive search): {vendor_us:.1} us — profiler within {:+.1}%",
        100.0 * (best.time_us / vendor_us - 1.0)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("compile") => cmd_compile(&args),
        Some("ansor") => cmd_ansor(&args),
        Some("gemm") => cmd_gemm(&args),
        _ => usage(),
    }
}
