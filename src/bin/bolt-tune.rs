//! Fleet tooling for portable autotune caches.
//!
//! ```text
//! bolt-tune pack fleet.bundle t4.cache a100.cache    pack per-arch shards into one bundle
//! bolt-tune merge fleet.bundle fresh.cache           fold new winners into an existing bundle
//! bolt-tune inspect fleet.bundle                     per-arch shard summary
//! bolt-tune extract fleet.bundle t4.cache --arch t4  pull one arch back out as a plain cache
//! ```
//!
//! `pack` and `merge` accept any mix of single-arch cache files and
//! previously packed bundles; overlapping shards keep the **faster
//! winner** per workload, so repeated tuning sessions fold together
//! without ever regressing a kernel choice. Output files are canonical:
//! the same shards always produce byte-identical bytes, making bundles
//! diffable and safe to ship through content-addressed stores.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bolt::{arch_fingerprint, TuneBundle};
use bolt_gpu_sim::GpuArch;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => Some(iter.next().expect("peeked")),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bolt-tune pack <out.bundle> <cache-or-bundle>...\n  bolt-tune merge <bundle> <cache-or-bundle>...\n  bolt-tune inspect <cache-or-bundle>\n  bolt-tune extract <bundle> <out.cache> --arch <{}>",
        GpuArch::PRESET_NAMES.join("|")
    );
    ExitCode::FAILURE
}

/// Reads every input (shard or bundle) and folds it into `bundle`,
/// reporting per-file shard provenance. Returns false on the first
/// unreadable input — partial packs would ship silently-thin bundles.
fn absorb_inputs(bundle: &mut TuneBundle, inputs: &[String]) -> bool {
    for input in inputs {
        match TuneBundle::read_any(Path::new(input)) {
            Ok(read) => {
                for shard in read.shards() {
                    println!("  {input}: {} ({} entries)", shard.describe(), shard.len());
                }
                bundle.absorb_bundle(read);
            }
            Err(e) => {
                eprintln!("cannot read {input}: {e}");
                return false;
            }
        }
    }
    true
}

fn summarize(bundle: &TuneBundle) {
    for shard in bundle.shards() {
        println!("  shard {} — {} entries", shard.describe(), shard.len());
    }
    println!(
        "  {} shard(s), {} entries total",
        bundle.shards().len(),
        bundle.total_entries()
    );
}

fn cmd_pack(args: &Args) -> ExitCode {
    let [out, inputs @ ..] = &args.positional[1..] else {
        return usage();
    };
    if inputs.is_empty() {
        return usage();
    }
    let mut bundle = TuneBundle::new();
    if !absorb_inputs(&mut bundle, inputs) {
        return ExitCode::FAILURE;
    }
    if let Err(e) = bundle.write(Path::new(out)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("packed {out}:");
    summarize(&bundle);
    ExitCode::SUCCESS
}

fn cmd_merge(args: &Args) -> ExitCode {
    let [target, inputs @ ..] = &args.positional[1..] else {
        return usage();
    };
    if inputs.is_empty() {
        return usage();
    }
    let mut bundle = match TuneBundle::read_any(Path::new(target)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {target}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let before = bundle.total_entries();
    if !absorb_inputs(&mut bundle, inputs) {
        return ExitCode::FAILURE;
    }
    if let Err(e) = bundle.write(Path::new(target)) {
        eprintln!("cannot write {target}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "merged into {target} ({} -> {} entries):",
        before,
        bundle.total_entries()
    );
    summarize(&bundle);
    ExitCode::SUCCESS
}

fn cmd_inspect(args: &Args) -> ExitCode {
    let Some(path) = args.positional.get(1) else {
        return usage();
    };
    let bundle = match TuneBundle::read_any(Path::new(path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}:");
    summarize(&bundle);
    ExitCode::SUCCESS
}

fn cmd_extract(args: &Args) -> ExitCode {
    let (Some(path), Some(out)) = (args.positional.get(1), args.positional.get(2)) else {
        return usage();
    };
    let Some(arch_name) = args.flag("arch") else {
        return usage();
    };
    let Some(arch) = GpuArch::preset(arch_name) else {
        eprintln!(
            "unknown arch {arch_name:?}; presets: {}",
            GpuArch::PRESET_NAMES.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let bundle = match TuneBundle::read_any(Path::new(path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fingerprint = arch_fingerprint(&arch);
    let Some(shard) = bundle.shard_for(fingerprint) else {
        eprintln!(
            "{path} has no shard for {} ({fingerprint:016x}); it holds:",
            arch.name
        );
        for shard in bundle.shards() {
            eprintln!("  {}", shard.describe());
        }
        return ExitCode::FAILURE;
    };
    if let Err(e) = shard.write(&PathBuf::from(out)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "extracted {} ({} entries) -> {out}",
        shard.describe(),
        shard.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("pack") => cmd_pack(&args),
        Some("merge") => cmd_merge(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("extract") => cmd_extract(&args),
        _ => usage(),
    }
}
