//! # bolt-repro
//!
//! Umbrella crate for the Bolt (MLSys 2022) reproduction. It re-exports the
//! workspace crates so that examples and integration tests can use a single
//! dependency, and hosts the cross-crate integration test suite under
//! `tests/`.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results of every figure and table.

pub use bolt;
pub use bolt_ansor as ansor;
pub use bolt_cutlass as cutlass;
pub use bolt_gpu_sim as gpu_sim;
pub use bolt_graph as graph;
pub use bolt_models as models;
pub use bolt_tensor as tensor;
