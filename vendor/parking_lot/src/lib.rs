//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny API slice it actually uses: `Mutex` and
//! `RwLock` with non-poisoning `lock()`/`read()`/`write()` accessors.
//! Backed by `std::sync` primitives; poison is swallowed, matching
//! parking_lot's semantics of never poisoning.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later lockers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
