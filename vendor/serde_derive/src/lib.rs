//! Offline stand-in for `serde_derive`.
//!
//! The workspace persists data through a hand-rolled text codec (see
//! `crates/core/src/cache.rs`), so serde's derives only need to *exist*
//! for the `#[derive(Serialize, Deserialize)]` annotations to compile.
//! Both derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
