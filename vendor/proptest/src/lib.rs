//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small, deterministic property-testing harness exposing the proptest
//! API slice its tests use: the `proptest!` macro (with
//! `#![proptest_config]`), `prop_assert*`/`prop_assume!`, `prop_oneof!`,
//! `Just`, `any`, ranges and tuples as strategies, `prop::collection::vec`
//! and `prop::sample::select`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs' assertion message), and the random stream is a
//! SplitMix64 seeded from the test's module path, so runs are fully
//! deterministic across processes.

use std::ops::Range;

/// Runner configuration (`cases` = number of passing cases required).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// A `prop_assert*` failed; the test panics with this message.
    Fail(String),
}

/// Deterministic RNG used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so every run of a given test
    /// explores the same cases.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.next_usize(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_unit_f64() as $t;
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end - self.len.start;
            let n = self.len.start + (rng.next_u64() % span as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniformly selects one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty set");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// Defines property tests. Each `fn` runs `config.cases` successful
/// cases with inputs drawn from the given strategies; `prop_assume!`
/// rejections are retried (with a bounded retry budget).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many prop_assume! rejections ({} attempts for {} cases)",
                    attempts,
                    config.cases,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}")
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniformly picks one of the argument strategies per case. All arms
/// must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Shape {
        Dot,
        Bar(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..9,
            (x, y) in (0u64..10, 0.0f64..1.0),
        ) {
            prop_assert!((1..9).contains(&a));
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn oneof_map_vec_and_select(
            shapes in prop::collection::vec(
                prop_oneof![Just(Shape::Dot), (1usize..5).prop_map(Shape::Bar)],
                1..6,
            ),
            pick in prop::sample::select(vec![2usize, 4, 8]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!shapes.is_empty() && shapes.len() < 6);
            prop_assert!(pick.is_power_of_two());
            if flag {
                prop_assert_ne!(pick, 3);
            }
        }

        #[test]
        fn assume_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x::y");
        let mut b = crate::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
