//! Offline stand-in for the `serde` crate.
//!
//! Provides `Serialize`/`Deserialize` as marker traits together with
//! no-op derive macros so existing `#[derive(serde::Serialize,
//! serde::Deserialize)]` annotations compile unchanged. Actual
//! persistence in this workspace goes through a hand-rolled codec
//! (`crates/core/src/cache.rs`), which depends on none of this.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
