//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `crossbeam::thread::scope` API used by this workspace is
//! provided, implemented on top of `std::thread::scope` (available since
//! Rust 1.63). The spawn closure's scope argument is a placeholder — the
//! workspace never spawns nested scoped threads — so it is typed `&()`.

pub mod thread {
    //! Scoped threads.

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope in which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure argument is a placeholder
        /// (crossbeam passes a nested scope; this stand-in does not
        /// support nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Creates a scope, runs `f` inside it, and joins all spawned threads
    /// before returning.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam this never returns `Err`: panics in unjoined
    /// threads propagate out of `std::thread::scope` directly. All
    /// workspace call sites `.expect()` the result, so behaviour matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }
}
