//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over half-open ranges, and `Rng::gen_bool`. The
//! generator is SplitMix64 — statistically solid for tuning/search
//! randomness, deterministic for a given seed, and dependency-free. It is
//! NOT the same stream as upstream `StdRng` (ChaCha12) and is not
//! cryptographically secure.

use std::ops::Range;

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng`
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a `low..high` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = low + unit * (high - low);
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Converts 64 uniform random bits into a value.
    fn from_bits64(bits: u64) -> Self;
}

/// Converts random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn from_bits64(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for f32 {
    fn from_bits64(bits: u64) -> Self {
        ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_bits64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for usize {
    fn from_bits64(bits: u64) -> Self {
        bits as usize
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (uniform bits,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits64(self.next_u64())
    }

    /// Samples uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(1e-7..1.0f32);
            assert!((1e-7..1.0).contains(&f));
            let x = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.25;
            hi |= u > 0.75;
        }
        assert!(lo && hi, "samples should spread across [0,1)");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
    }
}
