//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice the workspace's benches use —
//! `Criterion::default().sample_size(..).measurement_time(..)
//! .warm_up_time(..)`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — as a plain wall-clock harness.
//! No statistics beyond mean/min/max, no HTML reports, no comparisons to
//! previous runs; results print to stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver: times closures and prints per-bench summaries.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total target time spent measuring each bench.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up before measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` under the harness and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run until the warm-up budget elapses, measuring the
        // per-iteration cost so the sample loop can budget iterations.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(0);
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher::default();
            f(&mut b);
            warm_iters += b.iterations;
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / (b.iterations.max(1) as u32);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_per_sample = self.measurement_time / (self.sample_size as u32);
        let iters_per_sample =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                target_iterations: iters_per_sample,
                ..Bencher::default()
            };
            f(&mut b);
            if b.iterations > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iterations as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        let min = samples.first().copied().unwrap_or(0.0);
        let max = samples.last().copied().unwrap_or(0.0);
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Passed to the bench closure; times the iteration loop.
#[derive(Debug)]
pub struct Bencher {
    target_iterations: u64,
    iterations: u64,
    elapsed: Duration,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            target_iterations: 1,
            iterations: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl Bencher {
    /// Times `target_iterations` calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.target_iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.target_iterations;
    }
}

/// Declares a group of benches, mirroring criterion's two invocation
/// forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn formats_cover_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
