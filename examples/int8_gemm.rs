//! Mixed precision beyond FP16: the INT8 tensor-core (IMMA) path.
//!
//! The paper notes CUTLASS templates "optimize for a wide range of
//! mixed-precision computations including B1, INT4, INT8, FP16, BF16,
//! FP32, TF32 ..." — this example quantizes a GEMM to INT8, verifies the
//! integer math exactly, and shows the ~2× throughput over FP16 that
//! Turing IMMA tensor cores deliver.
//!
//! Run with: `cargo run --release --example int8_gemm`

use bolt::BoltProfiler;
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::GpuArch;
use bolt_tensor::{DType, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);

    // 1. Throughput: INT8 vs FP16 tensor cores on a big GEMM.
    let mut i8_problem = GemmProblem::fp16(4096, 4096, 4096);
    i8_problem.element = DType::I8;
    let f16_problem = GemmProblem::fp16(4096, 4096, 4096);

    let i8_best = profiler
        .profile_gemm(&i8_problem, &Epilogue::linear(DType::I8))
        .unwrap();
    let f16_best = profiler
        .profile_gemm(&f16_problem, &Epilogue::linear(DType::F16))
        .unwrap();
    let i8_tops = i8_problem.flops() / (i8_best.time_us * 1e6);
    let f16_tflops = f16_problem.flops() / (f16_best.time_us * 1e6);
    println!("4096^3 GEMM on the simulated T4:");
    println!(
        "  FP16 (HMMA): {f16_tflops:.0} TFLOPS  ({:.0} us)",
        f16_best.time_us
    );
    println!(
        "  INT8 (IMMA): {i8_tops:.0} TOPS    ({:.0} us)",
        i8_best.time_us
    );
    println!(
        "  speedup: {:.2}x (hardware ratio: 2x)",
        f16_best.time_us / i8_best.time_us
    );

    // 2. Numerics: int8 operands, i32 accumulation, fused dequant scale.
    let m = 8;
    let a = Tensor::from_vec(
        &[m, 16],
        DType::I8,
        (0..m * 16).map(|i| (i % 11) as f32 - 5.0).collect(),
    )?;
    let b = Tensor::from_vec(
        &[16, 4],
        DType::I8,
        (0..64).map(|i| (i % 7) as f32 - 3.0).collect(),
    )?;
    let mut quant_problem = GemmProblem::fp16(m, 4, 16);
    quant_problem.element = DType::I8;
    let mut epilogue = Epilogue::linear(DType::F32);
    epilogue.alpha = 0.05; // dequantization scale (sa * sb)
    let kernel = bolt_cutlass::GemmKernel::new(
        quant_problem,
        bolt_cutlass::GemmConfig::turing_default(),
        epilogue,
    );
    let (d, _) = kernel.run(&a, &b, None)?;

    // Integer reference for one element.
    let mut acc = 0i64;
    for k in 0..16 {
        acc += a.get2(0, k) as i64 * b.get2(k, 0) as i64;
    }
    println!(
        "\nquantized GEMM check: d[0,0] = {} (exact integer {} x scale 0.05)",
        d.get2(0, 0),
        acc
    );
    assert_eq!(d.get2(0, 0), 0.05 * acc as f32);
    println!("integer accumulation is exact — the IMMA contract holds");
    Ok(())
}
