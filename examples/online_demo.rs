//! Online tuning and engine lifecycle: start a server with **zero**
//! compiled engines, serve unseen batch shapes immediately on the
//! fallback path while the background tuner compiles the missing
//! buckets, watch tuned engines hot-swap in, then restart against the
//! persisted autotune cache and recompile everything without measuring
//! a single candidate.
//!
//! Run with: `cargo run --release --example online_demo`
//! CI smoke mode (small load, fast): `... --example online_demo -- --smoke`

use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_gpu_sim::GpuArch;
use bolt_models::zoo::sample_inputs;
use bolt_serve::{BoltServer, EngineRegistry, OnlineConfig, Outcome, ServeConfig};
use bolt_tensor::Tensor;

const MODELS: [&str; 2] = ["mlp-small", "mlp-large"];

fn sample(model: &str, seed: u64) -> Vec<Tensor> {
    sample_inputs(model, seed).expect("zoo model")
}

fn registry(cache: &std::path::Path) -> Arc<EngineRegistry> {
    let reg = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            cache_path: Some(cache.to_path_buf()),
            ..BoltConfig::default()
        },
    ));
    for model in MODELS {
        // Dynamic registration: just the graph builder, no buckets. Every
        // engine this demo serves is compiled online.
        reg.register_zoo_dynamic(model)
            .expect("zoo model registers");
    }
    reg
}

fn serve_stream(reg: &Arc<EngineRegistry>, clients: usize, per_client: usize) -> f64 {
    let server = Arc::new(
        BoltServer::start(
            Arc::clone(reg),
            ServeConfig {
                workers: 2,
                max_batch: 8,
                batch_timeout: Duration::from_millis(2),
                queue_capacity: 1024,
                online: Some(OnlineConfig {
                    tuner_threads: 2,
                    ..OnlineConfig::default()
                }),
                ..Default::default()
            },
        )
        .expect("valid serve config"),
    );

    // The very first request has no engine anywhere — it is still served,
    // on the heuristic default-config fallback, while its bucket tunes in
    // the background.
    match server
        .infer("mlp-large", sample("mlp-large", 0))
        .expect("admitted")
    {
        Outcome::Completed(response) => println!(
            "  first request:  fallback={} bucket={} kernel {:.1} us",
            response.fallback, response.bucket, response.latency.kernel_us
        ),
        other => panic!("first request must complete, got {other:?}"),
    }

    println!(
        "  streaming {} unseen-shape requests...",
        clients * per_client
    );
    std::thread::scope(|scope| {
        for t in 0..clients {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                for i in 0..per_client {
                    let model = MODELS[(t + i) % MODELS.len()];
                    let seed = (t * per_client + i) as u64;
                    let handle = server
                        .submit(model, sample(model, seed), None)
                        .expect("admitted");
                    let _ = handle.wait();
                }
            });
        }
    });

    // Drain the tuner, then replay the first request on the now-tuned
    // engine.
    let manager = server.online().expect("online mode");
    assert!(manager.wait_idle(Duration::from_secs(300)), "tuner drains");
    match server
        .infer("mlp-large", sample("mlp-large", 0))
        .expect("admitted")
    {
        Outcome::Completed(response) => println!(
            "  same request:   fallback={} bucket={} kernel {:.1} us (tuned)",
            response.fallback, response.bucket, response.latency.kernel_us
        ),
        other => panic!("replay must complete, got {other:?}"),
    }

    for model in MODELS {
        println!(
            "  {model:<10} buckets tuned online: {:?}",
            reg.get(model).expect("registered").bucket_sizes()
        );
    }
    let stats = Arc::try_unwrap(server).expect("clients joined").shutdown();
    assert_eq!(stats.resolved(), stats.accepted, "every request terminal");
    let online = stats.online.expect("online counters");
    println!(
        "  served: {} completed, {} on fallback paths, {} batch splits",
        stats.completed, online.fallback_served, stats.batch_overflow
    );
    println!(
        "  tuner:  {} compiles ({} failed), {} hot-swaps, {} evictions, \
         {:.1} s simulated tuning, {:.1} KiB resident",
        online.compiles_started,
        online.compiles_failed,
        online.hot_swaps,
        online.evictions,
        online.tuning_seconds,
        online.resident_bytes as f64 / 1024.0
    );
    println!(
        "  health: {} degraded responses, {} breaker trips (open: {:?}), \
         {} tuner restarts, {} worker restarts",
        online.degraded_served,
        online.breaker_trips,
        online.tripped_models,
        online.tuner_restarts,
        stats.worker_restarts
    );
    if online.failed_buckets.is_empty() {
        println!("  failed buckets: none");
    } else {
        for failed in &online.failed_buckets {
            println!(
                "  failed bucket: ({}, {}) attempts={} retry in {:.0?}: {}",
                failed.model, failed.bucket, failed.attempts, failed.retry_in, failed.error
            );
        }
    }
    online.tuning_seconds
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, per_client) = if smoke { (4, 25) } else { (8, 150) };

    let dir = std::env::temp_dir().join(format!("bolt-online-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("autotune.tune");

    println!("cold start: no compiled engines, empty autotune cache");
    let cold_s = serve_stream(&registry(&cache), clients, per_client);

    println!("\nwarm restart: fresh server, persisted autotune cache");
    let warm_s = serve_stream(&registry(&cache), clients, per_client);
    println!("\nsimulated tuning: cold {cold_s:.1} s -> warm {warm_s:.1} s");
    println!(
        "every bucket the cold run tuned recompiled from the persisted \
         cache without measuring a single candidate; any warm tuning \
         time above comes from buckets the cold run never served."
    );
    let _ = std::fs::remove_dir_all(&dir);
}
