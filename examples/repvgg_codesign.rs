//! The system-model codesign case study (paper Section 4.3): augment
//! RepVGG-A0 with a better activation and 1×1 deepening, and watch what
//! Bolt's epilogue fusion + persistent kernels make of it.
//!
//! Run with: `cargo run --release --example repvgg_codesign`

use bolt::{BoltCompiler, BoltConfig, StepKind};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_models::repvgg::{train_form_blocks, RepVggVariant};
use bolt_models::{AccuracyModel, RepVggSpec, TrainRecipe};
use bolt_tensor::Activation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t4 = GpuArch::tesla_t4();
    let batch = 32;
    let accuracy = AccuracyModel::default();

    // Train-form -> deploy-form re-parameterization on a toy stack.
    let train = train_form_blocks(1, 16, &[16, 16]);
    let deployed = PassManager::deployment().run(&train)?;
    println!(
        "re-parameterization: {} nodes (train, multi-branch) -> {} nodes (deploy)",
        train.len(),
        deployed.len()
    );

    // The three codesign steps on RepVGG-A0.
    let specs = [
        ("original (ReLU)", RepVggSpec::original(RepVggVariant::A0)),
        (
            "+ Hardswish",
            RepVggSpec {
                activation: Activation::Hardswish,
                ..RepVggSpec::original(RepVggVariant::A0)
            },
        ),
        (
            "+ Hardswish + 1x1 deepening",
            RepVggSpec::augmented(RepVggVariant::A0, Activation::Hardswish),
        ),
    ];

    println!("\nRepVGG-A0 codesign ladder (batch {batch}, simulated T4):");
    for (label, spec) in specs {
        let graph = spec.deploy_graph(batch);
        let model = BoltCompiler::new(t4.clone(), BoltConfig::default()).compile(&graph)?;
        let report = model.time();
        let fused = model
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, StepKind::B2bConv { .. }))
            .count();
        let top1 = accuracy.top1(&spec, TrainRecipe::TABLE6);
        println!(
            "  {label:<30} {:>6.0} img/s   top-1 {:.2}% (proxy)   {} persistent kernels",
            report.images_per_sec(batch),
            top1,
            fused
        );
    }
    println!(
        "\npaper: Hardswish buys +0.67% top-1 nearly free; 1x1 deepening adds\n\
         ~+0.8% more at ~15% speed cost because persistent kernels fuse the\n\
         3x3+1x1 pairs into single launches."
    );
    Ok(())
}
