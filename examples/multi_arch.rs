//! Hardware-native templated search across GPU generations: the same
//! workloads profiled on the simulated Tesla T4 (Turing), V100 (Volta),
//! and A100 (Ampere). Shows how the architecture-aware generator adapts —
//! multi-stage cp.async pipelines appear only on Ampere — and checks the
//! paper's claim that Bolt reaches >95% of the A100's theoretic FP16
//! limit (our simulator: ~89%).
//!
//! Run with: `cargo run --release --example multi_arch`

use bolt::BoltProfiler;
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::GpuArch;
use bolt_tensor::DType;

fn main() {
    let workloads = [
        ("square-4096", GemmProblem::fp16(4096, 4096, 4096)),
        ("square-8192", GemmProblem::fp16(8192, 8192, 8192)),
        ("bert-ffn1", GemmProblem::fp16(1280, 3072, 768)),
    ];
    for arch in [GpuArch::tesla_t4(), GpuArch::tesla_v100(), GpuArch::a100()] {
        println!(
            "\n{} (sm_{}{}, {} SMs, {:.0} TFLOPS FP16 tensor-core peak):",
            arch.name,
            arch.compute_capability.0,
            arch.compute_capability.1,
            arch.sm_count,
            arch.fp16_tensor_tflops
        );
        let profiler = BoltProfiler::new(&arch, 40);
        for (label, problem) in &workloads {
            let best = profiler
                .profile_gemm(problem, &Epilogue::linear(DType::F16))
                .expect("profiled");
            let tflops = problem.flops() / (best.time_us * 1e6);
            println!(
                "  {label:<12} -> {:<28} {:>7.0} TFLOPS ({:>3.0}% of peak)",
                best.config.tag(),
                tflops,
                100.0 * tflops / arch.fp16_tensor_tflops
            );
        }
    }
    println!(
        "\nnote: Ampere winners use stages >= 3 (cp.async multi-stage pipelines),\n\
         which Turing kernels cannot (compute capability < 8.0) — the same\n\
         architecture-specific tuning guidelines Section 3.2.2 describes."
    );
}
