//! Hardware-native templated search on the BERT GEMM workloads: what the
//! light-weight profiler measures, what it picks, and how long the search
//! takes compared to an auto-tuner.
//!
//! Run with: `cargo run --release --example bert_gemm_tuning`

use bolt::BoltProfiler;
use bolt_ansor::{AnsorTuner, SECONDS_PER_TRIAL};
use bolt_cutlass::{emit, Epilogue, GemmKernel};
use bolt_gpu_sim::GpuArch;
use bolt_models::bert::{gemm_workloads, tuner_workload};
use bolt_tensor::DType;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);
    let ep = Epilogue::linear(DType::F16);

    println!("profiling the Figure 1 GEMM set on the simulated T4:\n");
    for (label, problem) in gemm_workloads() {
        let best = profiler.profile_gemm(&problem, &ep).expect("profiled");
        let tflops = problem.flops() / (best.time_us * 1e6);
        println!(
            "{label:<18} {problem:<24} -> {:<28} {:.1} us  {tflops:.1} TFLOPS ({} candidates)",
            best.config.tag(),
            best.time_us,
            best.candidates
        );
    }

    let stats = profiler.stats();
    println!(
        "\nBolt profiling: {} workloads x ~{} configs = {} measurements -> {:.1} min simulated",
        stats.workloads,
        stats.measurements / stats.workloads.max(1),
        stats.measurements,
        stats.tuning_minutes()
    );
    let ansor_trials = 2000 * stats.workloads;
    println!(
        "Ansor at 2000 trials/workload would spend {} trials -> {:.1} h simulated",
        ansor_trials,
        ansor_trials as f64 * SECONDS_PER_TRIAL / 3600.0
    );

    // Show a small real search for one workload.
    let (_, ffn1) = gemm_workloads()[2];
    let tuner = AnsorTuner::with_trials(&t4, 256);
    let workload = tuner_workload(&ffn1);
    let report = tuner.tune_workloads(&[workload]);
    println!(
        "\nquick Ansor search on bert-ffn1 (256 trials): best {:.1} us vs Bolt {:.1} us",
        report.best_time_us(&workload).unwrap(),
        profiler.profile_gemm(&ffn1, &ep).unwrap().time_us
    );

    // And the code Bolt generates for the winner.
    let best = profiler.profile_gemm(&ffn1, &ep).unwrap();
    let kernel = GemmKernel::new(ffn1, best.config, ep);
    let cuda = emit::emit_gemm(&kernel, t4.compute_capability);
    println!("\ngenerated CUTLASS instantiation:\n{cuda}");
}
