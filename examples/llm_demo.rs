//! Autoregressive LLM serving demo (ISSUE 9, governor from ISSUE 10):
//! the `tiny-lm` decoder zoo model served through the continuous
//! batcher vs. the legacy pad-to-bucket static cohort, on the
//! simulated-GPU clock — then re-run under a squeezed KV block budget
//! to show the memory governor preempting and recomputing without
//! touching the streams.
//!
//! Prints tokens/sec, time-to-first-token, `padding_fraction`, and the
//! KV governor's health, and checks all streams are bit-identical.
//!
//! Run with: `cargo run --release --example llm_demo`
//! CI smoke mode (small load, fast): `... --example llm_demo -- --smoke`

use bolt::BoltConfig;
use bolt_gpu_sim::GpuArch;
use bolt_models::{sample_prompts, PromptLengths};
use bolt_serve::{
    BatchMode, ContinuousBatcher, KvGovernorSnapshot, LlmServeConfig, SequenceRequest,
    SequenceResult,
};

#[allow(clippy::type_complexity)]
fn run_mode(
    mode: BatchMode,
    prompts: &[Vec<u32>],
    max_new: &[usize],
    max_slots: usize,
    kv_budget_blocks: Option<usize>,
) -> (
    Vec<SequenceResult>,
    bolt_serve::LlmStats,
    f64,
    f64,
    KvGovernorSnapshot,
) {
    let mut batcher = ContinuousBatcher::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
        LlmServeConfig {
            mode,
            max_slots,
            kv_budget_blocks,
            // When squeezed, admit optimistically and let the governor
            // preempt — the point of the pressure leg of the demo.
            kv_reserve_blocks: if kv_budget_blocks.is_some() { 0 } else { 1 },
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm engines");
    for (prompt, &new) in prompts.iter().zip(max_new) {
        batcher
            .submit(SequenceRequest {
                prompt: prompt.clone(),
                max_new_tokens: new,
                deadline_us: None,
            })
            .expect("valid request");
    }
    let mut results = batcher.run_to_completion();
    // Preemption replays reorder completion; compare streams by id.
    results.sort_by_key(|r| r.id);
    let metrics = batcher.metrics();
    let stats = batcher.stats();
    (
        results,
        stats,
        metrics.padding_fraction,
        batcher.sim_now_us(),
        batcher.kv_governor(),
    )
}

fn ttft_p99(results: &[SequenceResult]) -> f64 {
    let mut ttfts: Vec<f64> = results.iter().filter_map(|r| r.ttft_us).collect();
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite ttft"));
    if ttfts.is_empty() {
        return 0.0;
    }
    let idx = ((ttfts.len() as f64 * 0.99).ceil() as usize).clamp(1, ttfts.len());
    ttfts[idx - 1]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Oversubscribed on purpose: continuous batching backfills freed
    // slots mid-cohort, the static path waits for the whole cohort.
    let (sequences, base_new, max_slots) = if smoke { (12, 4, 4) } else { (32, 8, 8) };
    let prompts = sample_prompts(
        "tiny-lm",
        sequences,
        PromptLengths::uniform(4, if smoke { 16 } else { 48 }),
        42,
    )
    .expect("tiny-lm in the zoo");
    // Ragged generation lengths: real decode traffic retires sequences
    // at different steps, which is exactly where pad-to-bucket wastes
    // flops keeping dead rows resident until the cohort drains.
    let max_new: Vec<usize> = (0..sequences).map(|i| base_new + i % 5).collect();
    let total_new: u64 = max_new.iter().map(|&n| n as u64).sum();

    println!(
        "llm_demo: {sequences} sequences x {base_new}..{} new tokens on tiny-lm, {max_slots} slots\n",
        base_new + 4
    );
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>10}",
        "mode", "tokens/sec", "ttft p99 (us)", "padding", "steps"
    );

    let mut streams = Vec::new();
    for (label, mode) in [
        ("continuous", BatchMode::Continuous),
        ("static-cohort", BatchMode::StaticCohort),
    ] {
        let (results, stats, padding, sim_us, _) =
            run_mode(mode, &prompts, &max_new, max_slots, None);
        let tokens_per_sec = stats.generated_tokens as f64 * 1e6 / sim_us.max(1.0);
        println!(
            "{label:<14} {tokens_per_sec:>12.0} {:>14.1} {:>13.1}% {:>10}",
            ttft_p99(&results),
            padding * 100.0,
            stats.steps
        );
        assert_eq!(
            stats.generated_tokens, total_new,
            "{label}: every sequence generates exactly max_new tokens"
        );
        streams.push(results.iter().map(|r| r.tokens.clone()).collect::<Vec<_>>());
    }

    assert_eq!(
        streams[0], streams[1],
        "continuous and static-cohort streams must be bit-identical"
    );
    println!("\nstreams bit-identical across modes: ok");

    // Now squeeze the KV block pool and let the governor earn its keep:
    // preempt the cheapest-to-recompute sequence when decode growth
    // drains the pool, replay it later, change nothing in the streams.
    let budget = if smoke { 12 } else { 14 };
    let (results, stats, _, sim_us, gov) = run_mode(
        BatchMode::Continuous,
        &prompts,
        &max_new,
        max_slots,
        Some(budget),
    );
    let tokens_per_sec = stats.generated_tokens as f64 * 1e6 / sim_us.max(1.0);
    println!(
        "\nKV governor at a squeezed budget ({budget} blocks of {} rows):",
        gov.kv_block_rows
    );
    println!("  tokens/sec        {tokens_per_sec:.0}");
    println!("  preemptions       {}", stats.preemptions);
    println!("  recompute tokens  {}", stats.recompute_tokens);
    println!(
        "  blocks in use     {} (free {}, budget {})",
        gov.kv_blocks_in_use, gov.kv_blocks_free, gov.kv_budget_blocks
    );
    println!(
        "  fresh block allocs {} (pool reuses the rest)",
        gov.kv_fresh_allocations
    );
    println!("  kv resident bytes {}", gov.kv_resident_bytes);
    assert_eq!(
        stats.generated_tokens, total_new,
        "governor: exactly-once token accounting under preemption"
    );
    let squeezed: Vec<Vec<u32>> = results.iter().map(|r| r.tokens.clone()).collect();
    assert_eq!(
        streams[0], squeezed,
        "preemption and replay must never change a token"
    );
    assert!(
        gov.kv_fresh_allocations as usize <= budget,
        "the arena never materializes more blocks than its budget"
    );
    println!("\nstreams bit-identical under KV pressure: ok");
}
