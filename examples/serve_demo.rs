//! Multi-model dynamic-batching inference serving on compiled Bolt
//! engines: register two MLPs from the zoo, flood the server from
//! concurrent client threads, and watch batching, deadline shedding, and
//! the metrics snapshot.
//!
//! Run with: `cargo run --release --example serve_demo`
//! CI smoke mode (small load, fast): `... --example serve_demo -- --smoke`

use std::sync::Arc;
use std::time::Duration;

use bolt::BoltConfig;
use bolt_gpu_sim::GpuArch;
use bolt_serve::{BoltServer, EngineRegistry, Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

const MODELS: [&str; 2] = ["mlp-small", "mlp-large"];

fn sample(model: &str, seed: u64) -> Vec<Tensor> {
    let width = if model == "mlp-small" { 128 } else { 256 };
    vec![Tensor::randn(&[1, width], DType::F16, seed)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, per_client) = if smoke { (4, 25) } else { (8, 250) };

    // 1. Compile each model once through the shared compiler, one engine
    //    per power-of-two batch bucket. Every server/request shares these
    //    immutable engines.
    println!("compiling serving engines (buckets 1/2/4/8, shared tuning cache)...");
    let registry = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
    ));
    for model in MODELS {
        let engines = registry
            .register_zoo(model, &[1, 2, 4, 8])
            .expect("zoo model registers");
        println!(
            "  {model:<10} input {:?}, buckets {:?}",
            engines.sample_dims(),
            engines.bucket_sizes()
        );
    }

    // 2. Serve: 4 simulated GPU streams, batches close at 8 requests or
    //    after 2 ms, everyone gets a 500 ms deadline.
    let server = Arc::new(
        BoltServer::start(
            Arc::clone(&registry),
            ServeConfig {
                workers: 4,
                max_batch: 8,
                batch_timeout: Duration::from_millis(2),
                queue_capacity: 1024,
                default_deadline: Some(Duration::from_millis(500)),
                ..Default::default()
            },
        )
        .expect("valid serve config"),
    );

    // 3. Flood it from concurrent clients.
    println!(
        "\nsubmitting {} requests from {clients} client threads...",
        clients * per_client
    );
    std::thread::scope(|scope| {
        for t in 0..clients {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                for i in 0..per_client {
                    let model = MODELS[(t + i) % MODELS.len()];
                    let seed = (t * per_client + i) as u64;
                    match server.submit(model, sample(model, seed), None) {
                        Ok(handle) => {
                            if let Outcome::Completed(response) = handle.wait() {
                                if t == 0 && i == 0 {
                                    let out = &response.outputs.expect("functional")[0];
                                    println!(
                                        "  first response: {} logits {:?}, batch {} on bucket {}, {:.1} us end-to-end",
                                        response.model,
                                        out.shape().dims(),
                                        response.batch_size,
                                        response.bucket,
                                        response.latency.total_us
                                    );
                                }
                            }
                        }
                        Err(e) => println!("  rejected: {e}"),
                    }
                }
            });
        }
    });

    // 4. Graceful drain, then the snapshot.
    let stats = Arc::try_unwrap(server).expect("clients joined").shutdown();
    println!("\n=== metrics snapshot ===");
    println!(
        "submitted {}, accepted {}, completed {}",
        stats.submitted, stats.accepted, stats.completed
    );
    println!(
        "rejected {} (queue-full {}), deadline-shed {}",
        stats.rejected, stats.rejected_queue_full, stats.deadline_shed
    );
    println!(
        "batches {}, mean batch {:.2}, histogram {:?}",
        stats.batches, stats.mean_batch, stats.batch_hist
    );
    println!(
        "latency p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        stats.latency_p50_us / 1e3,
        stats.latency_p95_us / 1e3,
        stats.latency_p99_us / 1e3
    );
    println!(
        "throughput {:.0} req/s wall, simulated {:.0} images/s",
        stats.throughput_rps, stats.sim_images_per_sec
    );
    println!("\nper-kernel latency attribution (top 5, simulated µs):");
    for stat in stats.kernel_stats.iter().take(5) {
        println!(
            "  {:<55} {:>4} launches, {:>10.1} µs total, {:>7.1} µs mean",
            stat.name, stat.launches, stat.total_us, stat.mean_us
        );
    }
    println!("planned workspace per model:");
    for (model, bytes) in &stats.model_workspace {
        println!("  {model:<12} {bytes} B peak intermediate memory");
    }

    assert_eq!(stats.resolved(), stats.accepted, "every request terminal");
    println!("\nall accepted requests reached a terminal outcome.");
}
