//! The cluster layer end to end: consistent-hash routing with failover
//! past a killed replica, then an autoscaler riding a load storm — scale
//! up under simulated-GPU backlog, scale back down to the floor once the
//! storm passes — with the exactly-once invariant checked at every
//! shutdown.
//!
//! Run with: `cargo run --release --example cluster_demo`
//! CI smoke mode (smaller storm, fast): `... --example cluster_demo -- --smoke`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::BoltConfig;
use bolt_cluster::{
    Autoscaler, AutoscalerConfig, Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementPolicy,
    ReplicaSpec, ScaleDecision,
};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

/// The storm model: a deep, wide FFN stack, shapes-only — workers price
/// it on the simulated GPU instead of computing it, so a request storm
/// builds *simulated* stream backlog the autoscaler can see without the
/// host needing real GPU-sized compute.
fn dense_deep() -> ModelSpec {
    ModelSpec::Custom {
        name: "dense-deep".into(),
        build: Arc::new(|batch| {
            let mut b = bolt_graph::GraphBuilder::shapes_only(DType::F16);
            let mut h = b.input(&[batch, 1024]);
            for layer in 0..5 {
                h = b.dense_bias(h, 8192, &format!("ffn{layer}"));
            }
            let out = b.dense_bias(h, 1024, "head");
            b.finish(&[out])
        }),
        tuned: false,
    }
}

fn spec(models: Vec<ModelSpec>) -> ReplicaSpec {
    ReplicaSpec {
        arch: GpuArch::tesla_t4(),
        bolt: BoltConfig::default(),
        serve: ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(3),
            queue_capacity: 4096,
            ..ServeConfig::default()
        },
        models,
    }
}

fn sample(seed: u64) -> Vec<Tensor> {
    vec![Tensor::randn(&[1, 128], DType::F16, seed)]
}

/// Consistent-hash placement pins a model to one ring owner; killing the
/// owner re-routes its traffic to a survivor without losing a request.
fn routing_and_failover() {
    println!("== routing & failover (consistent hashing, 3 replicas) ==");
    let cluster = Cluster::new(ClusterConfig::homogeneous(
        spec(vec![ModelSpec::Zoo {
            name: "mlp-small".into(),
            tuned: false,
        }]),
        3,
        PlacementPolicy::default(),
    ))
    .expect("cluster comes up");

    for i in 0..9 {
        let outcome = cluster.infer("mlp-small", sample(i)).expect("routed");
        assert!(matches!(outcome, Outcome::Completed(_)));
    }
    let owner = cluster
        .snapshot()
        .live
        .iter()
        .find(|(_, stats)| stats.accepted > 0)
        .map(|(id, _)| *id)
        .expect("one replica owns the model");
    println!("  9 requests for mlp-small all landed on ring owner: replica {owner}");

    cluster.kill_replica(owner).expect("kill the owner");
    println!("  killed replica {owner}; router re-routes to a survivor");
    for i in 9..18 {
        let outcome = cluster.infer("mlp-small", sample(i)).expect("rerouted");
        assert!(matches!(outcome, Outcome::Completed(_)));
    }

    let end = cluster.shutdown();
    let survivor = end
        .retired
        .iter()
        .find(|r| r.graceful && r.stats.accepted > 0)
        .expect("a survivor served the re-routed traffic");
    println!(
        "  replica {} took over: {} completed there; cluster totals {} accepted / {} resolved",
        survivor.id, survivor.stats.completed, end.totals.accepted, end.totals.resolved
    );
    assert_eq!(end.totals.unresolved(), 0, "no request silently dropped");
}

/// A storm past one replica's simulated capacity drives the windowed p99
/// over threshold; the autoscaler grows the set, then drains back to the
/// floor once a light trickle shows the cluster cold again.
fn autoscale_under_storm(smoke: bool) {
    println!("\n== autoscaler (1..4 replicas, least-loaded routing) ==");
    let mut config =
        ClusterConfig::homogeneous(spec(vec![dense_deep()]), 1, PlacementPolicy::LeastLoaded);
    config.classes[0].min_replicas = 1;
    config.classes[0].max_replicas = 4;
    let cluster = Cluster::new(config).expect("cluster comes up");

    let scaler = Autoscaler::new(
        Arc::clone(&cluster),
        AutoscalerConfig {
            // The trickle keeps a couple of requests queued per replica
            // while partial batches wait out the batch timeout; "cold"
            // must sit above that floor or it never fires.
            queue_depth_low: 4.0,
            // Bracket the two regimes: the storm's windowed p99 is
            // hundreds of ms of simulated backlog, the trickle's is
            // ~15 ms (batch-timeout waits plus single-core scheduling
            // jitter — these latencies include real queue time).
            p99_high_us: 60_000.0,
            p99_low_us: 22_000.0,
            scale_up_after: 2,
            scale_down_after: 3,
            cooldown_ticks: 2,
            ..AutoscalerConfig::default()
        },
    );
    let handle = scaler.spawn(Duration::from_millis(30));

    // Storm: ~3x one replica's simulated capacity (open-loop pacer, so
    // late service cannot slow the arrivals down).
    let (requests, rate) = if smoke {
        (1600, 16_000.0)
    } else {
        (4800, 16_000.0)
    };
    println!("  storm: {requests} requests at {rate:.0} rps against 1 replica...");
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / rate);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match cluster.submit(
            "dense-deep",
            vec![Tensor::randn(&[1, 1024], DType::F16, i as u64)],
            None,
        ) {
            Ok(handle) => handles.push(handle),
            Err(ClusterError::AllBackpressured { .. }) => {}
            Err(other) => panic!("unexpected cluster error: {other}"),
        }
    }
    for handle in &handles {
        handle.wait();
    }
    let grown = cluster.replica_count();
    println!("  storm over: cluster grew to {grown} replicas");

    // Trickle: light traffic in full batches (8 at once, so a batch
    // forms immediately and completes fast). Each replica's windowed p99
    // is over its last 256 completions, so the trickle must roll the
    // storm-era latencies out of every window before the autoscaler sees
    // the cluster cold and starts draining.
    let rounds = if smoke { 300 } else { 600 };
    for round in 0..rounds {
        let burst: Vec<_> = (0..8)
            .filter_map(|i| {
                cluster
                    .submit(
                        "dense-deep",
                        vec![Tensor::randn(&[1, 1024], DType::F16, round * 8 + i)],
                        None,
                    )
                    .ok()
            })
            .collect();
        for handle in &burst {
            handle.wait();
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let decisions = handle.stop();
    for decision in &decisions {
        match decision {
            ScaleDecision::ScaledUp { class, added } => {
                println!("  decision: scaled up class {class} (replica {added})")
            }
            ScaleDecision::ScaledDown { class, drained } => {
                println!("  decision: scaled down class {class} (drained replica {drained})")
            }
            ScaleDecision::Failed { error } => println!("  decision: failed ({error})"),
            ScaleDecision::Hold => {}
        }
    }
    let ups = decisions
        .iter()
        .filter(|d| matches!(d, ScaleDecision::ScaledUp { .. }))
        .count();
    let downs = decisions
        .iter()
        .filter(|d| matches!(d, ScaleDecision::ScaledDown { .. }))
        .count();
    assert!(ups >= 1, "the storm must trigger at least one scale-up");
    assert!(
        downs >= 1,
        "the trickle must let the autoscaler drain back down"
    );
    let settled = cluster.replica_count();
    println!("  settled at {settled} replica(s) after the trickle");
    assert!(
        settled < 1 + ups,
        "scale-down shrank the cluster below its peak"
    );

    let end = cluster.shutdown();
    println!(
        "  totals: {} accepted, {} completed, {} resolved, {} unresolved",
        end.totals.accepted,
        end.totals.completed,
        end.totals.resolved,
        end.totals.unresolved()
    );
    assert_eq!(
        end.totals.unresolved(),
        0,
        "exactly-once held through scale-up, drain, and shutdown"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    routing_and_failover();
    autoscale_under_storm(smoke);
    println!("\nok: routing, failover, and autoscaling all preserved exactly-once");
}
