//! End-to-end ResNet-50 inference on the simulated Tesla T4: compile with
//! Bolt, inspect the kernel timeline, and compare against a quickly-tuned
//! Ansor baseline (reduced trial budget so the example runs in seconds).
//!
//! Run with: `cargo run --release --example resnet50_inference`

use bolt::{AnsorBackend, BoltCompiler, BoltConfig};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_models::model_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t4 = GpuArch::tesla_t4();
    let batch = 32;
    let info = model_by_name("resnet-50", batch);
    let graph = PassManager::deployment().run(&info.graph)?;
    println!(
        "ResNet-50: {} nodes, {:.1} M params",
        graph.len(),
        info.params_m
    );

    // Bolt compilation.
    let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
    let model = compiler.compile(&graph)?;
    let bolt = model.time();
    println!(
        "\nBolt: {:.2} ms / batch ({:.0} img/s), {} kernels, tuned in {:.1} min (simulated)",
        bolt.total_us / 1e3,
        bolt.images_per_sec(batch),
        model.kernel_count(),
        model.tuning.tuning_seconds / 60.0
    );
    println!("hottest kernels:");
    for e in bolt.timeline.hottest(5) {
        println!("  {:>9.1} us  {}", e.duration_us, e.name);
    }

    // Ansor baseline with a small budget (use 900 trials/task for the
    // paper-faithful Figure 10 numbers — see the bench).
    let ansor = AnsorBackend::with_trials(&t4, 128);
    let (ansor_time, tuning) = ansor.evaluate(&graph)?;
    println!(
        "\nAnsor (128 trials/task): {:.2} ms / batch ({:.0} img/s), {} tasks, {:.1} h tuning",
        ansor_time.total_us / 1e3,
        batch as f64 / (ansor_time.total_us / 1e6),
        tuning.tasks.len(),
        tuning.tuning_hours()
    );
    println!(
        "\nBolt speedup: {:.1}x (paper Figure 10: 1.5x on ResNet with full 900-trial tuning)",
        ansor_time.total_us / bolt.total_us
    );
    Ok(())
}
