//! Quickstart: compile a small model with Bolt, execute it functionally,
//! inspect the simulated timing, and look at the generated CUDA.
//!
//! Run with: `cargo run --release --example quickstart`

use bolt::{BoltCompiler, BoltConfig};
use bolt_gpu_sim::GpuArch;
use bolt_graph::GraphBuilder;
use bolt_tensor::{Activation, DType, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a model: GEMM -> bias -> GELU -> GEMM -> bias (a BERT-style
    //    feed-forward block at 64 tokens).
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[64, 256]);
    let h = b.dense_bias(x, 512, "ffn.fc1");
    let a = b.activation(h, Activation::Gelu, "ffn.gelu");
    let o = b.dense_bias(a, 256, "ffn.fc2");
    let graph = b.finish(&[o]);
    println!("input graph:\n{graph}");

    // 2. Compile with Bolt for a (simulated) Tesla T4.
    let compiler = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::default());
    let model = compiler.compile(&graph)?;
    println!(
        "compiled to {} steps ({} device kernels) — epilogues fused into the GEMMs",
        model.steps().len(),
        model.kernel_count()
    );
    for step in model.steps() {
        println!("  step: {}", step.name);
    }

    // 3. Execute functionally on real data.
    let input = Tensor::randn(&[64, 256], DType::F16, 42);
    let outputs = model.run(&[input])?;
    println!(
        "functional run: output shape {}, first value {:.4}",
        outputs[0].shape(),
        outputs[0].get2(0, 0)
    );

    // 4. Simulated timing on the T4 model.
    let report = model.time();
    println!("\nsimulated timing:\n{}", report.timeline);
    println!(
        "profiling effort: {} workloads, {} candidate measurements, {:.1} min simulated tuning",
        model.tuning.workloads,
        model.tuning.measurements,
        model.tuning.tuning_seconds / 60.0
    );

    // 5. The CUDA the code generator would hand to NVCC.
    let cuda = model.emit_cuda();
    let preview: String = cuda.lines().take(18).collect::<Vec<_>>().join("\n");
    println!("\ngenerated CUDA (first lines):\n{preview}\n...");
    Ok(())
}
