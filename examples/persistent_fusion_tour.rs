//! A tour of persistent kernels (paper Section 3.1.1): legality rules,
//! RF- vs shared-memory residence, numerical equivalence with sequential
//! execution, and when fusion pays.
//!
//! Run with: `cargo run --release --example persistent_fusion_tour`

use bolt_cutlass::{B2bGemmKernel, BiasMode, Epilogue, GemmProblem, Residence};
use bolt_gpu_sim::GpuArch;
use bolt_tensor::gemm_ref::b2b_gemm_ref;
use bolt_tensor::{Activation, DType, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t4 = GpuArch::tesla_t4();
    let relu = Epilogue {
        beta: 0.0,
        bias: BiasMode::None,
        ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
    };

    // --- 1. Numerical equivalence ---------------------------------------
    let g0 = GemmProblem::fp16(64, 16, 24);
    let g1 = GemmProblem::fp16(64, 8, 16);
    let kernel = B2bGemmKernel::with_residence(g0, g1, relu, relu, Residence::RegisterFile);
    kernel.validate(&t4)?;
    let a = Tensor::randn(&[64, 24], DType::F16, 1);
    let w0 = Tensor::randn(&[24, 16], DType::F16, 2);
    let w1 = Tensor::randn(&[16, 8], DType::F16, 3);
    let fused = kernel.run(&a, &w0, None, &w1, None)?;
    let sequential = b2b_gemm_ref(
        &a,
        &w0,
        None,
        1.0,
        0.0,
        Activation::ReLU,
        &w1,
        None,
        1.0,
        0.0,
        Activation::ReLU,
    )?;
    println!(
        "1. fused == sequential: max |diff| = {} (bit-identical FP16 rounding)",
        fused.max_abs_diff(&sequential)?
    );

    // --- 2. Threadblock residence legality --------------------------------
    let mut broken = kernel.clone();
    broken.config0.threadblock.n = 8; // violate ThreadBlock0_N == GEMM0_N
    println!(
        "2. residence violation -> {}",
        broken.validate(&t4).unwrap_err()
    );

    // --- 3. RF pressure forces the smem design ----------------------------
    let big0 = GemmProblem::fp16(16384, 256, 64);
    let big1 = GemmProblem::fp16(16384, 128, 256);
    let auto = B2bGemmKernel::auto(&t4, big0, big1, relu, relu)?;
    println!("3. GEMM_N=256 chain auto-selects: {}", auto.residence);
    let small = B2bGemmKernel::auto(
        &t4,
        GemmProblem::fp16(16384, 64, 256),
        GemmProblem::fp16(16384, 16, 64),
        relu,
        relu,
    )?;
    println!("   GEMM_N=64 chain auto-selects:  {}", small.residence);

    // --- 4. When fusion pays ----------------------------------------------
    println!("4. profit across shapes (fused vs two epilogue-fused kernels):");
    for (label, g0, g1) in [
        (
            "tall-skinny (memory-bound)",
            GemmProblem::fp16(65536, 32, 96),
            GemmProblem::fp16(65536, 96, 32),
        ),
        (
            "mid",
            GemmProblem::fp16(16384, 64, 256),
            GemmProblem::fp16(16384, 16, 64),
        ),
        (
            "square-ish (compute-bound)",
            GemmProblem::fp16(2048, 64, 2048),
            GemmProblem::fp16(2048, 64, 64),
        ),
    ] {
        let k = B2bGemmKernel::auto(&t4, g0, g1, relu, relu)?;
        let fused_us = k.time(&t4).total_us;
        let unfused_us = k.unfused_time_us(&t4);
        println!(
            "   {label:<28} {:.2}x ({:.0} -> {:.0} us) [{}]",
            unfused_us / fused_us,
            unfused_us,
            fused_us,
            k.residence
        );
    }
    println!(
        "\npaper: memory-bound chains gain 1.2-1.5x; compute-bound fusion can\n\
         lose because threadblock residence constrains the tiling — which is\n\
         why Bolt's compiler checks profit before fusing."
    );
    Ok(())
}
