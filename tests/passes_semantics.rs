//! Semantic-preservation tests: graph passes and compiler optimizations
//! must not change what a model computes, only how fast it runs.

use bolt::{BoltCompiler, BoltConfig, StepKind};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_graph::GraphBuilder;
use bolt_models::repvgg::train_form_blocks;
use bolt_tensor::{Activation, DType, Tensor};

fn t4() -> GpuArch {
    GpuArch::tesla_t4()
}

#[test]
fn repvgg_reparameterization_preserves_semantics() {
    // Train-form (3x3+1x1+identity branches with BN) and deploy-form
    // (single 3x3) must compute the same function. This is RepVGG's core
    // mathematical identity, exercised through the whole stack: graph
    // passes -> Bolt compilation -> functional kernel execution.
    let train = train_form_blocks(1, 8, &[4, 4]);
    let deployed = PassManager::deployment().run(&train).unwrap();

    let input = Tensor::randn(&[1, 4, 8, 8], DType::F32, 42);
    // The train form executes through host BN/Add ops (no fusion changes
    // numerics there); deploy form through the templated conv kernels.
    let train_model = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
        .compile(&train)
        .unwrap();
    let deploy_model = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
        .compile(&deployed)
        .unwrap();
    let a = train_model.run(std::slice::from_ref(&input)).unwrap();
    let b = deploy_model.run(&[input]).unwrap();
    let diff = a[0].max_abs_diff(&b[0]).unwrap();
    assert!(
        diff < 1e-3,
        "re-parameterization changed the function by {diff}"
    );
}

#[test]
fn deployment_passes_preserve_output_shapes() {
    let train = train_form_blocks(2, 6, &[3, 3, 3]);
    let deployed = PassManager::deployment().run(&train).unwrap();
    assert_eq!(train.outputs().len(), deployed.outputs().len());
    for (a, b) in train.outputs().iter().zip(deployed.outputs()) {
        assert_eq!(train.node(*a).shape, deployed.node(*b).shape);
    }
    // Deployment must strictly shrink the graph.
    assert!(deployed.len() < train.len());
}

#[test]
fn padded_persistent_conv_chain_matches_unoptimized() {
    // conv3x3 (IC=3 -> padded to 8) -> relu -> conv1x1 -> relu, which the
    // compiler both pads AND fuses into a persistent kernel. The fully
    // optimized model must compute the same values as the unoptimized one.
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[1, 3, 12, 12]);
    let c1 = b.conv2d_bias(x, 8, 3, (1, 1), (1, 1), "c3x3");
    let r1 = b.activation(c1, Activation::ReLU, "r1");
    let c2 = b.conv2d_bias(r1, 8, 1, (1, 1), (0, 0), "c1x1");
    let r2 = b.activation(c2, Activation::ReLU, "r2");
    let graph = b.finish(&[r2]);

    let optimized = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let plain = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
        .compile(&graph)
        .unwrap();

    // The optimized model really did pad + fuse.
    let has_padded_b2b = optimized.steps().iter().any(|s| {
        matches!(
            s.kind,
            StepKind::B2bConv {
                pad_to: Some(8),
                ..
            }
        )
    });
    let has_padded_conv = optimized.steps().iter().any(|s| {
        matches!(
            s.kind,
            StepKind::Conv2d {
                pad_to: Some(8),
                ..
            }
        )
    });
    assert!(
        has_padded_b2b || has_padded_conv,
        "expected padding in: {:?}",
        optimized
            .steps()
            .iter()
            .map(|s| &s.name)
            .collect::<Vec<_>>()
    );

    let input = Tensor::randn(&[1, 3, 12, 12], DType::F16, 9);
    let a = optimized.run(std::slice::from_ref(&input)).unwrap();
    let c = plain.run(&[input]).unwrap();
    let diff = a[0].max_abs_diff(&c[0]).unwrap();
    assert!(diff < 3e-2, "padding+fusion changed numerics by {diff}");
}

#[test]
fn epilogue_fusion_is_numerically_transparent_for_all_activations() {
    for act in Activation::REPVGG_SWEEP {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let h = b.dense_bias(x, 12, "fc");
        let r = b.activation(h, act, "act");
        let graph = b.finish(&[r]);

        let fused = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&graph)
            .unwrap();
        let plain = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
            .compile(&graph)
            .unwrap();
        assert!(fused.kernel_count() < plain.kernel_count() + plain.steps().len());

        let input = Tensor::randn(&[8, 16], DType::F16, 3);
        let a = fused.run(std::slice::from_ref(&input)).unwrap();
        let c = plain.run(&[input]).unwrap();
        let diff = a[0].max_abs_diff(&c[0]).unwrap();
        assert!(
            diff < 5e-3,
            "{act}: epilogue fusion changed numerics by {diff}"
        );
    }
}

#[test]
fn residual_fusion_matches_host_add() {
    // dense -> add(residual) -> relu absorbed into the GEMM epilogue
    // (BiasMode::Full) must equal the host-executed version.
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[8, 8]);
    let d = b.dense(x, 8, "fc"); // no bias so the Add can fuse
    let sum = b.add(d, x, "residual");
    let r = b.activation(sum, Activation::ReLU, "relu");
    let graph = b.finish(&[r]);

    let fused = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    // The add is absorbed: only one kernel step (+ host steps absent).
    let gemm_with_residual = fused.steps().iter().any(|s| {
        matches!(
            s.kind,
            StepKind::Gemm {
                residual: Some(_),
                ..
            }
        )
    });
    assert!(
        gemm_with_residual,
        "residual Add should fuse into the GEMM epilogue"
    );

    let plain = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
        .compile(&graph)
        .unwrap();
    let input = Tensor::randn(&[8, 8], DType::F16, 4);
    let a = fused.run(std::slice::from_ref(&input)).unwrap();
    let c = plain.run(&[input]).unwrap();
    assert!(a[0].max_abs_diff(&c[0]).unwrap() < 5e-3);
}
