//! Property-based numerical tests: the templated kernel executors must
//! agree with the naive references for arbitrary shapes, configurations,
//! and data.

use proptest::prelude::*;

use bolt_cutlass::{
    B2bGemmKernel, BiasMode, Conv2dConfig, Conv2dKernel, Epilogue, GemmConfig, GemmKernel,
    GemmProblem, Residence, TileShape,
};
use bolt_tensor::conv_ref::{conv2d_ref, random_filter, random_input, Conv2dProblem};
use bolt_tensor::gemm_ref::{b2b_gemm_ref, gemm_with_epilogue};
use bolt_tensor::{Activation, DType, Tensor, F16};

fn small_tiles() -> impl Strategy<Value = (usize, usize, usize)> {
    // (tb_m, tb_n, tb_k) — small power-of-two tiles for fast tests.
    (0usize..3, 0usize..3, 0usize..2).prop_map(|(a, b, c)| (8 << a, 8 << b, 8 << c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_gemm_matches_reference(
        m in 1usize..48,
        n in 1usize..40,
        k in 1usize..32,
        (tb_m, tb_n, tb_k) in small_tiles(),
        seed in 0u64..1000,
    ) {
        let mut config = GemmConfig::turing_default();
        config.threadblock = TileShape::new(tb_m, tb_n, tb_k);
        config.warp = TileShape::new(tb_m.min(8), tb_n.min(8), tb_k);
        let kernel = GemmKernel::new(GemmProblem::fp16(m, n, k), config, Epilogue::linear(DType::F16));
        let a = Tensor::randn(&[m, k], DType::F16, seed);
        let b = Tensor::randn(&[k, n], DType::F16, seed + 1);
        let (d, _) = kernel.run(&a, &b, None).unwrap();
        let expect = gemm_with_epilogue(&a, &b, None, 1.0, 0.0, Activation::Identity, DType::F16).unwrap();
        // Same k-accumulation order => exactly equal after f16 rounding.
        prop_assert_eq!(d.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn epilogue_activations_match_reference(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..16,
        act_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let act = Activation::REPVGG_SWEEP[act_idx];
        let mut config = GemmConfig::turing_default();
        config.threadblock = TileShape::new(16, 16, 8);
        config.warp = TileShape::new(8, 8, 8);
        let kernel = GemmKernel::new(
            GemmProblem::fp16(m, n, k),
            config,
            Epilogue::bias_activation(act, DType::F16),
        );
        let a = Tensor::randn(&[m, k], DType::F16, seed);
        let b = Tensor::randn(&[k, n], DType::F16, seed + 1);
        let bias = Tensor::randn(&[n], DType::F16, seed + 2);
        let (d, _) = kernel.run(&a, &b, Some(&bias)).unwrap();
        let expect = gemm_with_epilogue(&a, &b, Some(&bias), 1.0, 1.0, act, DType::F16).unwrap();
        // Activations involve transcendental math evaluated in the same
        // f32 path — still exact.
        prop_assert!(d.max_abs_diff(&expect).unwrap() < 1e-3);
    }

    #[test]
    fn b2b_fusion_is_numerically_transparent(
        m in 1usize..40,
        n0 in 1usize..16,
        k0 in 1usize..16,
        n1 in 1usize..12,
        rf in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let relu = Epilogue { beta: 0.0, bias: BiasMode::None, ..Epilogue::bias_activation(Activation::ReLU, DType::F16) };
        let residence = if rf { Residence::RegisterFile } else { Residence::SharedMemory };
        let kernel = B2bGemmKernel::with_residence(
            GemmProblem::fp16(m, n0, k0),
            GemmProblem::fp16(m, n1, n0),
            relu,
            relu,
            residence,
        );
        let a = Tensor::randn(&[m, k0], DType::F16, seed);
        let w0 = Tensor::randn(&[k0, n0], DType::F16, seed + 1);
        let w1 = Tensor::randn(&[n0, n1], DType::F16, seed + 2);
        let fused = kernel.run(&a, &w0, None, &w1, None).unwrap();
        let expect = b2b_gemm_ref(
            &a, &w0, None, 1.0, 0.0, Activation::ReLU, &w1, None, 1.0, 0.0, Activation::ReLU,
        ).unwrap();
        prop_assert_eq!(fused.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn conv_kernel_matches_direct_reference(
        n in 1usize..3,
        hw in 3usize..8,
        c in 1usize..6,
        k in 1usize..6,
        stride in 1usize..3,
        seed in 0u64..500,
    ) {
        let problem = Conv2dProblem::new(n, hw, hw, c, k, 3, 3, (stride, stride), (1, 1));
        let mut config = Conv2dConfig::turing_default();
        config.gemm.threadblock = TileShape::new(16, 16, 8);
        config.gemm.warp = TileShape::new(8, 8, 8);
        let kernel = Conv2dKernel::new(problem, config, Epilogue::linear(DType::F16), DType::F16);
        let x = random_input(&problem, DType::F16, seed);
        let f = random_filter(&problem, DType::F16, seed + 1);
        let got = kernel.run(&x, &f, None).unwrap();
        let expect = conv2d_ref(&problem, &x, &f, None, Activation::Identity).unwrap();
        // Different summation order over (r,s,c) taps: a few f16 ULP.
        prop_assert!(got.max_abs_diff(&expect).unwrap() < 3e-2);
    }

    #[test]
    fn f16_quantization_is_idempotent_and_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let qa = F16::from_f32(a).to_f32();
        prop_assert_eq!(F16::from_f32(qa).to_f32(), qa);
        if a <= b {
            prop_assert!(F16::from_f32(a).to_f32() <= F16::from_f32(b).to_f32());
        }
    }

    #[test]
    fn layout_round_trip_preserves_tensors(
        n in 1usize..3, c in 1usize..5, h in 1usize..6, w in 1usize..6, seed in 0u64..500,
    ) {
        let t = Tensor::randn(&[n, c, h, w], DType::F16, seed);
        let back = t
            .to_activation_layout(bolt_tensor::Layout::Nhwc).unwrap()
            .to_activation_layout(bolt_tensor::Layout::Nchw).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn channel_padding_never_changes_conv_results(
        c in 1usize..7,
        seed in 0u64..500,
    ) {
        // Padding input channels with zeros (and the filter to match) must
        // not change the convolution output — the correctness property
        // behind Bolt's automated padding.
        let problem = Conv2dProblem::new(1, 5, 5, c, 4, 3, 3, (1, 1), (1, 1));
        let x = random_input(&problem, DType::F16, seed);
        let f = random_filter(&problem, DType::F16, seed + 1);
        let base = conv2d_ref(&problem, &x, &f, None, Activation::Identity).unwrap();

        let pc = c.div_ceil(8) * 8;
        let padded_problem = Conv2dProblem { c: pc, ..problem };
        let xp = x.pad_channels_nhwc(pc).unwrap();
        // Pad the filter's C dimension (KRSC layout).
        let mut fp = Tensor::zeros(&[4, 3, 3, pc], DType::F16);
        for ki in 0..4 {
            for ri in 0..3 {
                for si in 0..3 {
                    for ci in 0..c {
                        let src = ((ki * 3 + ri) * 3 + si) * c + ci;
                        let dst = ((ki * 3 + ri) * 3 + si) * pc + ci;
                        fp.data_mut()[dst] = f.data()[src];
                    }
                }
            }
        }
        let padded = conv2d_ref(&padded_problem, &xp, &fp, None, Activation::Identity).unwrap();
        prop_assert_eq!(base.max_abs_diff(&padded).unwrap(), 0.0);
    }
}
