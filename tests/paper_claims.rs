//! Fast executable checks of the paper's headline claims — the *shapes*
//! the benches reproduce in full, asserted here with reduced budgets so
//! `cargo test` guards them.

use bolt::{AnsorBackend, BoltCompiler, BoltConfig, BoltProfiler};
use bolt_ansor::AnsorTuner;
use bolt_cutlass::{B2bGemmKernel, BiasMode, Epilogue, GemmProblem, VendorLibrary};
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile};
use bolt_graph::{GraphBuilder, Workload};
use bolt_models::mlp::table1_gemm_pairs;
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

fn t4() -> GpuArch {
    GpuArch::tesla_t4()
}

#[test]
fn figure1_ansor_is_a_fraction_of_cublas_on_compute_bound_fp16() {
    let problem = GemmProblem::fp16(2048, 2048, 2048);
    let vendor = VendorLibrary::new(&t4());
    let cublas_us = vendor.gemm_time_us(&problem);

    let workload = Workload::Gemm {
        m: 2048,
        n: 2048,
        k: 2048,
    };
    let tuner = AnsorTuner::with_trials(&t4(), 256);
    let ansor_us = tuner
        .tune_workloads(&[workload])
        .best_time_us(&workload)
        .unwrap();

    let slowdown = ansor_us / cublas_us;
    assert!(
        (4.0..14.0).contains(&slowdown),
        "Ansor should land at ~10-20% of cuBLAS speed (paper Figure 1); slowdown {slowdown:.1}x"
    );
}

#[test]
fn figure8a_bolt_beats_ansor_on_gemms() {
    let problem = GemmProblem::fp16(1280, 3072, 768);
    let profiler = BoltProfiler::new(&t4(), 30);
    let bolt_us = profiler
        .profile_gemm(&problem, &Epilogue::linear(DType::F16))
        .unwrap()
        .time_us;
    let workload = Workload::Gemm {
        m: 1280,
        n: 3072,
        k: 768,
    };
    let ansor_us = AnsorTuner::with_trials(&t4(), 256)
        .tune_workloads(&[workload])
        .best_time_us(&workload)
        .unwrap();
    let speedup = ansor_us / bolt_us;
    assert!(
        (4.0..12.0).contains(&speedup),
        "paper band 6.1-9.5x on compute-intensive GEMMs; got {speedup:.1}x"
    );
}

#[test]
fn figure9_epilogue_fusion_band() {
    let problem = GemmProblem::fp16(1280, 3072, 768);
    let profiler = BoltProfiler::new(&t4(), 30);
    let fused = profiler
        .profile_gemm(
            &problem,
            &Epilogue::bias_activation(Activation::Gelu, DType::F16),
        )
        .unwrap()
        .time_us;
    let plain = profiler
        .profile_gemm(&problem, &Epilogue::linear(DType::F16))
        .unwrap()
        .time_us;
    // TVM-style separate bias+activation elementwise kernel.
    let elems = (problem.m * problem.n) as f64;
    let eltwise = simulate_kernel(
        &t4(),
        &KernelProfile::memory_only("eltwise", 2.0 * elems * 2.0),
    )
    .total_us;
    let speedup = (plain + eltwise) / fused;
    assert!(
        (1.2..1.9).contains(&speedup),
        "paper: ~1.45x average epilogue-fusion speedup on GEMMs; got {speedup:.2}x"
    );
}

#[test]
fn table1_persistent_gemm_fusion_band() {
    let relu = Epilogue {
        beta: 0.0,
        bias: BiasMode::None,
        ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
    };
    // Skip the first (launch-dominated) pair: its ratio is sensitive to
    // the launch-overhead constant; the benches report it.
    for (g0, g1) in table1_gemm_pairs().into_iter().skip(1) {
        let k = B2bGemmKernel::auto(&t4(), g0, g1, relu, relu).unwrap();
        let speedup = k.unfused_time_us(&t4()) / k.time(&t4()).total_us;
        assert!(
            (1.1..1.8).contains(&speedup),
            "paper band 1.24-1.46x; {g0} -> {g1} got {speedup:.2}x"
        );
    }
}

#[test]
fn table3_padding_band() {
    let profiler = BoltProfiler::new(&t4(), 30);
    let ep = Epilogue::linear(DType::F16);
    let unpadded = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
    let padded = Conv2dProblem::new(32, 20, 26, 48, 32, 3, 3, (1, 1), (1, 1));
    let tu = profiler
        .profile_conv2d(&unpadded, &ep, DType::F16)
        .unwrap()
        .time_us;
    let tp = profiler
        .profile_conv2d(&padded, &ep, DType::F16)
        .unwrap()
        .time_us;
    let speedup = tu / tp;
    assert!(
        (1.4..2.2).contains(&speedup),
        "paper band 1.6-2.0x from padding; got {speedup:.2}x"
    );
}

#[test]
fn figure10_shape_bolt_wins_and_tunes_faster() {
    // A compressed CNN stands in for the Figure 10 set; full models run in
    // the bench.
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let x = b.input(&[32, 3, 56, 56]);
    let c1 = b.conv2d_bias(x, 48, 3, (2, 2), (1, 1), "c1");
    let r1 = b.activation(c1, Activation::ReLU, "r1");
    let c2 = b.conv2d_bias(r1, 48, 3, (1, 1), (1, 1), "c2");
    let r2 = b.activation(c2, Activation::ReLU, "r2");
    let gap = b.global_avg_pool(r2, "gap");
    let fc = b.dense_bias(gap, 100, "fc");
    let graph = b.finish(&[fc]);

    let model = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let backend = AnsorBackend::with_trials(&t4(), 128);
    let (ansor_time, tuning) = backend.evaluate(&graph).unwrap();

    let speedup = ansor_time.total_us / model.time().total_us;
    assert!(
        speedup > 1.5,
        "Bolt must clearly win end-to-end; got {speedup:.2}x"
    );
    // Bolt tunes in minutes; Ansor's budget costs more wall-clock even at
    // this reduced trial count.
    assert!(model.tuning.tuning_seconds < 20.0 * 60.0);
    assert!(tuning.tuning_seconds > model.tuning.tuning_seconds / 4.0);
}

#[test]
fn ampere_a100_approaches_theoretic_peak() {
    // Section 3.2.3: Bolt-generated FP16 GEMMs "reach 300 TFLOPS throughput
    // ... on Ampere A100, which is more than 95% of the hardware theoretic
    // limit" (312 TFLOPS). Our simulator lands at ~89% — the multi-stage
    // cp.async pipeline model is slightly conservative; assert ≥85%.
    let a100 = GpuArch::a100();
    let profiler = BoltProfiler::new(&a100, 40);
    let problem = GemmProblem::fp16(8192, 8192, 8192);
    let best = profiler
        .profile_gemm(&problem, &Epilogue::linear(DType::F16))
        .unwrap();
    let tflops = problem.flops() / (best.time_us * 1e6);
    let frac = tflops / a100.fp16_tensor_tflops;
    assert!(
        frac > 0.85,
        "A100 big GEMM at {:.0} TFLOPS = {:.0}% of peak",
        tflops,
        frac * 100.0
    );
    // Multi-stage (cp.async) configs must be what wins on Ampere.
    assert!(
        best.config.stages >= 3,
        "expected a multi-stage pipeline, got {}",
        best.config
    );
}

#[test]
fn tuning_time_gap_matches_paper_at_full_budget() {
    // At the paper's budgets (900 trials/task vs ~30 profiles/workload),
    // per-task cost differs by ~30x before measurement-cost differences.
    let ansor_seconds_per_task = 900.0 * bolt_ansor::SECONDS_PER_TRIAL;
    let bolt_seconds_per_workload = 30.0 * bolt::profiler::SECONDS_PER_PROFILE;
    let ratio = ansor_seconds_per_task / bolt_seconds_per_workload;
    assert!(
        (20.0..50.0).contains(&ratio),
        "per-task tuning cost ratio should be ~30x; got {ratio:.0}x"
    );
}
