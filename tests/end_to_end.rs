//! Cross-crate integration tests: the full pipeline from graph
//! construction through compilation to execution, for both backends.

use bolt::{BoltCompiler, BoltConfig, StepKind};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_graph::GraphBuilder;
use bolt_models::model_by_name;
use bolt_repro::bolt; // exercise the umbrella re-exports
use bolt_tensor::{Activation, DType, Tensor};

fn t4() -> GpuArch {
    GpuArch::tesla_t4()
}

fn small_cnn(batch: usize) -> bolt_graph::Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[batch, 3, 16, 16]);
    let c1 = b.conv2d_bias(x, 16, 3, (1, 1), (1, 1), "c1");
    let r1 = b.activation(c1, Activation::ReLU, "r1");
    let c2 = b.conv2d_bias(r1, 16, 1, (1, 1), (0, 0), "c2");
    let r2 = b.activation(c2, Activation::ReLU, "r2");
    let p = b.max_pool(r2, 2, 2, "pool");
    let gap = b.global_avg_pool(p, "gap");
    let fc = b.dense_bias(gap, 10, "fc");
    let sm = b.softmax(fc, "softmax");
    b.finish(&[sm])
}

#[test]
fn cnn_compiles_runs_and_times_under_every_config() {
    let graph = small_cnn(2);
    let input = Tensor::randn(&[2, 3, 16, 16], DType::F16, 7);
    let mut reference: Option<Vec<Tensor>> = None;

    for config in [
        BoltConfig::default(),
        BoltConfig::epilogue_only(),
        BoltConfig::no_optimizations(),
    ] {
        let model = BoltCompiler::new(t4(), config.clone())
            .compile(&graph)
            .unwrap();
        let out = model.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(out[0].shape().dims(), &[2, 10]);
        // Softmax rows sum to 1.
        for r in 0..2 {
            let sum: f32 = (0..10).map(|c| out[0].get2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-2, "row {r} sums to {sum}");
        }
        // All configs compute the same function (within FP16 noise from
        // differing fusion boundaries).
        match &reference {
            None => reference = Some(out),
            Some(reference) => {
                let diff = out[0].max_abs_diff(&reference[0]).unwrap();
                assert!(diff < 5e-2, "config {config:?} diverged by {diff}");
            }
        }
        // Timing mode works for every config.
        let report = model.time();
        assert!(report.total_us.is_finite() && report.total_us > 0.0);
    }
}

#[test]
fn persistent_fusion_appears_in_conv_chains() {
    // conv3x3 -> relu -> conv1x1 -> relu at tall spatial dims: exactly the
    // pattern Table 2 fuses.
    let mut b = GraphBuilder::shapes_only(DType::F16);
    let x = b.input(&[32, 48, 56, 56]);
    let c1 = b.conv2d_bias(x, 48, 3, (1, 1), (1, 1), "c3x3");
    let r1 = b.activation(c1, Activation::ReLU, "r1");
    let c2 = b.conv2d_bias(r1, 48, 1, (1, 1), (0, 0), "c1x1");
    let r2 = b.activation(c2, Activation::ReLU, "r2");
    let graph = b.finish(&[r2]);

    let model = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let fused = model
        .steps()
        .iter()
        .any(|s| matches!(s.kind, StepKind::B2bConv { .. }));
    assert!(
        fused,
        "expected a persistent conv kernel: {:?}",
        model.steps().iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    let unfused = BoltCompiler::new(t4(), BoltConfig::epilogue_only())
        .compile(&graph)
        .unwrap();
    assert!(model.time().total_us < unfused.time().total_us);
}

#[test]
fn three_way_gemm_chains_fuse_into_one_persistent_kernel() {
    // dense -> relu -> dense -> relu -> dense -> relu over tall-skinny
    // shapes: all three GEMMs should land in one persistent chain (the
    // paper's "more than two" extension).
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[16384, 256]);
    let d0 = b.dense(x, 64, "g0");
    let r0 = b.activation(d0, Activation::ReLU, "r0");
    let d1 = b.dense(r0, 32, "g1");
    let r1 = b.activation(d1, Activation::ReLU, "r1");
    let d2 = b.dense(r1, 16, "g2");
    let r2 = b.activation(d2, Activation::ReLU, "r2");
    let graph = b.finish(&[r2]);

    let model = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let chain = model.steps().iter().find_map(|s| match &s.kind {
        StepKind::GemmChain { chain, .. } => Some(chain.len()),
        _ => None,
    });
    assert_eq!(
        chain,
        Some(3),
        "expected a 3-stage chain: {:?}",
        model.steps().iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert_eq!(model.kernel_count(), 1);

    // Functionally identical to the unfused model (small replica).
    let mut b2 = GraphBuilder::new(DType::F16);
    let x2 = b2.input(&[64, 32]);
    let e0 = b2.dense(x2, 16, "g0");
    let f0 = b2.activation(e0, Activation::ReLU, "r0");
    let e1 = b2.dense(f0, 8, "g1");
    let f1 = b2.activation(e1, Activation::ReLU, "r1");
    let e2 = b2.dense(f1, 4, "g2");
    let f2 = b2.activation(e2, Activation::ReLU, "r2");
    let small = b2.finish(&[f2]);
    let fused = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&small)
        .unwrap();
    let plain = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
        .compile(&small)
        .unwrap();
    let input = Tensor::randn(&[64, 32], DType::F16, 21);
    let a = fused.run(std::slice::from_ref(&input)).unwrap();
    let c = plain.run(&[input]).unwrap();
    assert!(a[0].max_abs_diff(&c[0]).unwrap() < 5e-3);
}

#[test]
fn every_non_data_node_is_covered_exactly_once() {
    for name in ["repvgg-a0", "resnet-18"] {
        let graph = PassManager::deployment()
            .run(&model_by_name(name, 8).graph)
            .unwrap();
        let model = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&graph)
            .unwrap();
        let mut covered = std::collections::HashSet::new();
        for step in model.steps() {
            for node in &step.covered {
                assert!(covered.insert(*node), "{name}: node {node} covered twice");
            }
        }
        for node in model.graph().nodes() {
            if !node.kind.is_data() {
                assert!(
                    covered.contains(&node.id),
                    "{name}: node {} uncovered",
                    node.name
                );
            }
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let graph = small_cnn(4);
    let a = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let b = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    assert_eq!(a.steps().len(), b.steps().len());
    for (sa, sb) in a.steps().iter().zip(b.steps()) {
        assert_eq!(sa.name, sb.name);
    }
    assert_eq!(a.time().total_us, b.time().total_us);
}

#[test]
fn emitted_cuda_covers_all_kernels() {
    let graph = small_cnn(2);
    let model = BoltCompiler::new(t4(), BoltConfig::default())
        .compile(&graph)
        .unwrap();
    let cuda = model.emit_cuda();
    assert!(cuda.contains("Bolt generated runtime module"));
    for step in model.steps() {
        assert!(cuda.contains(&step.name), "missing step {}", step.name);
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    // bolt_repro::bolt is the same crate as bolt.
    let _compiler = bolt::BoltCompiler::new(t4(), bolt::BoltConfig::default());
    let arch = bolt_repro::gpu_sim::GpuArch::tesla_t4();
    assert_eq!(arch.sm_count, 40);
}
