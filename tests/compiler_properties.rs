//! Property tests over the whole compiler: for randomly generated small
//! models, every optimization level must (a) compile, (b) cover every
//! node exactly once, (c) produce finite timing, and (d) compute the same
//! function as the unoptimized build.

use proptest::prelude::*;

use bolt::{BoltCompiler, BoltConfig};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, GraphBuilder, NodeId};
use bolt_tensor::{Activation, DType, Tensor};

#[derive(Debug, Clone, Copy)]
enum Layer {
    Conv { ch_idx: usize, pointwise: bool },
    Act(usize),
    Residual,
    Pool,
}

const CHANNELS: [usize; 3] = [3, 6, 8];
const ACTS: [Activation; 4] = [
    Activation::ReLU,
    Activation::Gelu,
    Activation::Hardswish,
    Activation::Softplus,
];

fn layers() -> impl Strategy<Value = Vec<Layer>> {
    let layer = prop_oneof![
        (0usize..3, any::<bool>()).prop_map(|(c, p)| Layer::Conv {
            ch_idx: c,
            pointwise: p
        }),
        (0usize..4).prop_map(Layer::Act),
        Just(Layer::Residual),
        Just(Layer::Pool),
    ];
    prop::collection::vec(layer, 1..7)
}

fn build(layers: &[Layer]) -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[1, 3, 8, 8]);
    let mut cur = x;
    let mut prev = x;
    for (i, layer) in layers.iter().enumerate() {
        let next = match *layer {
            Layer::Conv { ch_idx, pointwise } => {
                let (k, pad) = if pointwise { (1, (0, 0)) } else { (3, (1, 1)) };
                b.conv2d_bias(cur, CHANNELS[ch_idx], k, (1, 1), pad, &format!("conv{i}"))
            }
            Layer::Act(a) => b.activation(cur, ACTS[a], &format!("act{i}")),
            Layer::Residual => {
                let shape_cur = b.graph().node(cur).shape.clone();
                if b.graph().node(prev).shape == shape_cur && prev != cur {
                    b.add(cur, prev, &format!("res{i}"))
                } else {
                    b.activation(cur, Activation::ReLU, &format!("resact{i}"))
                }
            }
            Layer::Pool => {
                if b.graph().node(cur).shape.dim(2) >= 4 {
                    b.max_pool(cur, 2, 2, &format!("pool{i}"))
                } else {
                    b.activation(cur, Activation::ReLU, &format!("poolact{i}"))
                }
            }
        };
        prev = cur;
        cur = next;
    }
    let gap = b.global_avg_pool(cur, "gap");
    let fc = b.dense_bias(gap, 4, "head");
    b.finish(&[fc])
}

fn coverage_is_exact(model: &bolt::CompiledModel) -> bool {
    let mut covered = std::collections::HashSet::<NodeId>::new();
    for step in model.steps() {
        for node in &step.covered {
            if !covered.insert(*node) {
                return false;
            }
        }
    }
    model
        .graph()
        .nodes()
        .iter()
        .filter(|n| !n.kind.is_data())
        .all(|n| covered.contains(&n.id))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_config_compiles_covers_and_agrees(layers in layers(), seed in 0u64..1000) {
        let graph = build(&layers);
        let input = Tensor::randn(&[1, 3, 8, 8], DType::F16, seed);
        let t4 = GpuArch::tesla_t4();

        let reference = BoltCompiler::new(t4.clone(), BoltConfig::no_optimizations())
            .compile(&graph)
            .unwrap();
        prop_assert!(coverage_is_exact(&reference));
        let expect = reference.run(std::slice::from_ref(&input)).unwrap();

        for config in [BoltConfig::default(), BoltConfig::epilogue_only()] {
            let model = BoltCompiler::new(t4.clone(), config.clone()).compile(&graph).unwrap();
            prop_assert!(coverage_is_exact(&model), "coverage broken under {config:?}");
            let report = model.time();
            prop_assert!(report.total_us.is_finite() && report.total_us > 0.0);
            let out = model.run(std::slice::from_ref(&input)).unwrap();
            let diff = out[0].max_abs_diff(&expect[0]).unwrap();
            prop_assert!(diff < 5e-2, "{config:?} diverged by {diff}");
        }
    }
}
