//! Property tests on the analytic performance model: the simulator must
//! be *monotone* in work (more flops/bytes never runs faster) and
//! well-behaved at extremes — the sanity conditions any cost model used
//! for search must satisfy, or the tuner would exploit its bugs.

use proptest::prelude::*;

use bolt_gpu_sim::{
    roofline_lower_bound_us, simulate_kernel, BlockResources, GpuArch, KernelProfile, Occupancy,
};
use bolt_tensor::DType;

fn arbitrary_profile() -> impl Strategy<Value = KernelProfile> {
    (
        1u64..100_000, // grid blocks
        1u32..9,       // warps per block
        16u32..200,    // regs per thread
        0u32..48,      // smem KiB
        0.0f64..1e12,  // tensor-core flops
        0.0f64..1e11,  // cuda flops
        0.0f64..1e9,   // dram bytes
        prop::sample::select(vec![1usize, 2, 4, 8]),
        0.05f64..1.0, // mainloop efficiency
    )
        .prop_map(
            |(grid, warps, regs, smem_kib, tc, cc, bytes, align, eff)| KernelProfile {
                name: "prop".into(),
                grid_blocks: grid,
                block: BlockResources::new(warps * 32, regs, smem_kib * 1024),
                flops: bolt_gpu_sim::PipelineFlops {
                    tensor_core: tc,
                    cuda_core: cc,
                    sfu: 0.0,
                },
                dram_read_bytes: bytes,
                dram_write_bytes: bytes / 2.0,
                smem_bytes: bytes / 4.0,
                dtype: DType::F16,
                alignment_elems: align,
                bank_conflict_ways: 1.0,
                mainloop_efficiency: eff,
                pipelined_overlap: 0.25,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_is_positive_and_not_nan(profile in arbitrary_profile()) {
        let t = simulate_kernel(&GpuArch::tesla_t4(), &profile);
        prop_assert!(t.total_us > 0.0);
        prop_assert!(!t.total_us.is_nan());
    }

    #[test]
    fn more_flops_never_runs_faster(profile in arbitrary_profile(), scale in 1.0f64..10.0) {
        let t4 = GpuArch::tesla_t4();
        let base = simulate_kernel(&t4, &profile);
        prop_assume!(base.total_us.is_finite());
        let mut heavier = profile.clone();
        heavier.flops.tensor_core *= scale;
        heavier.flops.cuda_core *= scale;
        let t = simulate_kernel(&t4, &heavier);
        prop_assert!(t.total_us >= base.total_us * 0.999);
    }

    #[test]
    fn more_bytes_never_run_faster(profile in arbitrary_profile(), extra in 0.0f64..1e9) {
        let t4 = GpuArch::tesla_t4();
        let base = simulate_kernel(&t4, &profile);
        prop_assume!(base.total_us.is_finite());
        let mut heavier = profile.clone();
        heavier.dram_read_bytes += extra;
        let t = simulate_kernel(&t4, &heavier);
        prop_assert!(t.total_us >= base.total_us * 0.999);
    }

    #[test]
    fn wider_alignment_never_hurts(profile in arbitrary_profile()) {
        let t4 = GpuArch::tesla_t4();
        let mut narrow = profile.clone();
        narrow.alignment_elems = 2;
        let mut wide = profile.clone();
        wide.alignment_elems = 8;
        let tn = simulate_kernel(&t4, &narrow);
        let tw = simulate_kernel(&t4, &wide);
        prop_assume!(tn.total_us.is_finite());
        prop_assert!(tw.total_us <= tn.total_us * 1.001);
    }

    #[test]
    fn better_overlap_never_hurts(profile in arbitrary_profile()) {
        let t4 = GpuArch::tesla_t4();
        let mut poor = profile.clone();
        poor.pipelined_overlap = 0.0;
        let mut good = profile.clone();
        good.pipelined_overlap = 0.9;
        let tp = simulate_kernel(&t4, &poor);
        let tg = simulate_kernel(&t4, &good);
        prop_assume!(tp.total_us.is_finite());
        prop_assert!(tg.total_us <= tp.total_us * 1.001);
    }

    #[test]
    fn occupancy_is_monotone_in_resources(
        threads in prop::sample::select(vec![32u32, 64, 128, 256, 512]),
        regs in 16u32..128,
        smem in 0u32..32,
    ) {
        let t4 = GpuArch::tesla_t4();
        let base = Occupancy::compute(&t4, BlockResources::new(threads, regs, smem * 1024));
        let more_regs = Occupancy::compute(&t4, BlockResources::new(threads, regs + 32, smem * 1024));
        let more_smem = Occupancy::compute(&t4, BlockResources::new(threads, regs, (smem + 8) * 1024));
        prop_assert!(more_regs.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(more_smem.blocks_per_sm <= base.blocks_per_sm);
    }

    #[test]
    fn roofline_bound_is_admissible(profile in arbitrary_profile()) {
        // The pruning bound must NEVER exceed the simulated time on any
        // profile, or candidate pruning could discard the true winner.
        for arch in [GpuArch::tesla_t4(), GpuArch::tesla_v100(), GpuArch::a100()] {
            let bound = roofline_lower_bound_us(&arch, &profile);
            let t = simulate_kernel(&arch, &profile);
            prop_assert!(
                bound <= t.total_us,
                "{}: bound {} exceeds simulated {}", arch.name, bound, t.total_us
            );
        }
    }

    #[test]
    fn faster_archs_are_never_slower_on_compute(profile in arbitrary_profile()) {
        // The A100 dominates the T4 in every datasheet number, so no
        // kernel should run slower there.
        let t4 = GpuArch::tesla_t4();
        let a100 = GpuArch::a100();
        let t = simulate_kernel(&t4, &profile);
        let a = simulate_kernel(&a100, &profile);
        prop_assume!(t.total_us.is_finite() && a.total_us.is_finite());
        prop_assert!(a.total_us <= t.total_us * 1.01, "{} vs {}", a.total_us, t.total_us);
    }
}
