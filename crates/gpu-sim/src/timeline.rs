//! Execution timelines for multi-kernel programs.
//!
//! A compiled model is a sequence of kernel launches; the runtime in
//! `bolt` appends each simulated [`KernelTime`] to a
//! [`Timeline`] to obtain end-to-end latency and a per-kernel breakdown
//! (what Figure 10a reports as inference speed).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::kernel::KernelTime;

/// One kernel execution on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: String,
    /// Start time in microseconds since timeline origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// The dominating resource, as a string (for reports).
    pub bound: String,
}

/// An ordered sequence of kernel executions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<KernelEvent>,
    cursor_us: f64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends a kernel execution at the current cursor.
    pub fn push(&mut self, name: impl Into<String>, time: &KernelTime) {
        let event = KernelEvent {
            name: name.into(),
            start_us: self.cursor_us,
            duration_us: time.total_us,
            bound: time.bound.to_string(),
        };
        self.cursor_us += time.total_us;
        self.events.push(event);
    }

    /// Appends a fixed-duration event (e.g. a host-side pause).
    pub fn push_raw(&mut self, name: impl Into<String>, duration_us: f64, bound: &str) {
        let event = KernelEvent {
            name: name.into(),
            start_us: self.cursor_us,
            duration_us,
            bound: bound.to_string(),
        };
        self.cursor_us += duration_us;
        self.events.push(event);
    }

    /// Total elapsed time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.cursor_us
    }

    /// The recorded events in execution order.
    pub fn events(&self) -> &[KernelEvent] {
        &self.events
    }

    /// Number of kernel launches.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no kernels were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Merges another timeline onto the end of this one.
    pub fn extend(&mut self, other: &Timeline) {
        for e in &other.events {
            let mut e = e.clone();
            e.start_us += self.cursor_us;
            self.events.push(e);
        }
        self.cursor_us += other.cursor_us;
    }

    /// The `n` longest events, for profiling reports.
    pub fn hottest(&self, n: usize) -> Vec<&KernelEvent> {
        let mut sorted: Vec<&KernelEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| b.duration_us.total_cmp(&a.duration_us));
        sorted.truncate(n);
        sorted
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timeline: {} kernels, {:.1} us total",
            self.len(),
            self.total_us()
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  {:>10.1} us  {:>10.1} us  {:<14} {}",
                e.start_us, e.duration_us, e.bound, e.name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::kernel::{simulate_kernel, KernelProfile};

    #[test]
    fn push_accumulates() {
        let t4 = GpuArch::tesla_t4();
        let k = simulate_kernel(&t4, &KernelProfile::memory_only("k", (1 << 20) as f64));
        let mut tl = Timeline::new();
        assert!(tl.is_empty());
        tl.push("k1", &k);
        tl.push("k2", &k);
        assert_eq!(tl.len(), 2);
        assert!((tl.total_us() - 2.0 * k.total_us).abs() < 1e-9);
        assert_eq!(tl.events()[1].start_us, k.total_us);
    }

    #[test]
    fn extend_offsets_events() {
        let mut a = Timeline::new();
        a.push_raw("x", 10.0, "memory-bound");
        let mut b = Timeline::new();
        b.push_raw("y", 5.0, "compute-bound");
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.events()[1].start_us, 10.0);
        assert_eq!(a.total_us(), 15.0);
    }

    #[test]
    fn hottest_sorts_by_duration() {
        let mut tl = Timeline::new();
        tl.push_raw("short", 1.0, "x");
        tl.push_raw("long", 9.0, "x");
        tl.push_raw("mid", 5.0, "x");
        let hot = tl.hottest(2);
        assert_eq!(hot[0].name, "long");
        assert_eq!(hot[1].name, "mid");
    }

    #[test]
    fn display_contains_names() {
        let mut tl = Timeline::new();
        tl.push_raw("gemm_fused", 3.0, "compute-bound");
        let s = tl.to_string();
        assert!(s.contains("gemm_fused"));
        assert!(s.contains("1 kernels"));
    }
}
