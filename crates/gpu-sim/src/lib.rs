#![warn(missing_docs)]
//! # bolt-gpu-sim
//!
//! An analytic, calibrated GPU performance simulator standing in for the
//! NVIDIA Tesla T4 testbed of the Bolt paper (MLSys 2022).
//!
//! The Bolt evaluation rests on a handful of hardware mechanisms:
//!
//! * two compute pipelines with a ~8× FP16 throughput gap — tensor cores
//!   (65 TFLOPS on T4) vs CUDA cores (8.1 TFLOPS FP32 / 16.2 FP16);
//! * DRAM bandwidth whose *effective* value depends on vectorized-access
//!   alignment (the basis of Bolt's kernel padding, Table 3);
//! * shared-memory capacity, bandwidth and bank conflicts (the basis of the
//!   smem-resident persistent kernels, Section 3.1.1);
//! * register-file capacity limiting occupancy (the basis of the
//!   RF-resident persistent kernels and of Ansor's "aggressively consume
//!   all register files" behaviour, Section 4.1.1);
//! * kernel launch latency and wave quantization (the basis of fusion
//!   benefits for short kernels).
//!
//! This crate models those mechanisms and nothing more. Higher layers
//! (`bolt-cutlass`, `bolt-ansor`) translate a concrete kernel — a CUTLASS
//! template instantiation or an auto-tuned tiling — into a
//! [`KernelProfile`]; [`simulate_kernel`] turns the profile into a
//! [`KernelTime`] with a compute/memory/launch breakdown.
//!
//! # Example
//!
//! ```
//! use bolt_gpu_sim::{GpuArch, KernelProfile, simulate_kernel};
//!
//! let t4 = GpuArch::tesla_t4();
//! // A DRAM-bound elementwise kernel moving 64 MiB.
//! let profile = KernelProfile::memory_only("eltwise", 64.0 * (1 << 20) as f64);
//! let time = simulate_kernel(&t4, &profile);
//! assert!(time.total_us > 100.0); // > the pure-bandwidth lower bound
//! ```

pub mod arch;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pipeline;
pub mod timeline;

pub use arch::{GpuArch, ModelParams};
pub use kernel::{
    derated_lower_bound_us, latency_hiding_factor, roofline_lower_bound_us, simulate_kernel,
    sm_utilization_factor, Boundedness, KernelProfile, KernelTime, PipelineFlops,
};
pub use memory::{alignment_efficiency, bank_conflict_slowdown, effective_dram_bandwidth};
pub use occupancy::{BlockResources, Occupancy, OccupancyLimit};
pub use pipeline::Pipeline;
pub use timeline::{KernelEvent, Timeline};
