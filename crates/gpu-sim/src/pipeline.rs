//! Compute pipelines of a streaming multiprocessor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The execution pipeline a kernel's arithmetic runs on.
///
/// The central premise of the Bolt paper is that auto-tuners with opaque
/// device models generate code for [`Pipeline::CudaCore`] while templated
/// vendor libraries target [`Pipeline::TensorCore`], an ~8× FP16 throughput
/// difference on the Tesla T4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pipeline {
    /// Tensor cores (HMMA/IMMA matrix-multiply-accumulate units).
    TensorCore,
    /// Ordinary FP32/FP16 FMA lanes.
    CudaCore,
    /// Special function units (exp, tanh, log, rsqrt) — used by epilogue
    /// activations such as GELU and Softplus.
    Sfu,
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pipeline::TensorCore => f.write_str("tensor-core"),
            Pipeline::CudaCore => f.write_str("cuda-core"),
            Pipeline::Sfu => f.write_str("sfu"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Pipeline::TensorCore.to_string(), "tensor-core");
        assert_eq!(Pipeline::Sfu.to_string(), "sfu");
    }
}
