//! The analytic kernel cost model.
//!
//! A [`KernelProfile`] is the simulator's contract with the kernel
//! libraries: it describes *what a kernel does* — flops per pipeline, DRAM
//! and shared-memory traffic, launch geometry, per-block resources, and the
//! access alignment — without saying how. [`simulate_kernel`] prices the
//! profile on a [`GpuArch`]:
//!
//! 1. each pipeline's busy time at its (occupancy-derated) peak;
//! 2. DRAM time at alignment-derated effective bandwidth;
//! 3. shared-memory time at bank-conflict-derated bandwidth;
//! 4. total = launch overhead + max of the streams + a small leak of the
//!    non-dominant streams (imperfect overlap) + wave-quantization tail.

use serde::{Deserialize, Serialize};
use std::fmt;

use bolt_tensor::DType;

use crate::arch::GpuArch;
use crate::memory::{alignment_efficiency, bank_conflict_slowdown};
use crate::occupancy::{BlockResources, Occupancy};
use crate::pipeline::Pipeline;

/// Floating-point work per pipeline, in raw op counts (1 FMA = 2 flops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineFlops {
    /// Tensor-core flops (HMMA).
    pub tensor_core: f64,
    /// CUDA-core flops (FFMA/HFMA2).
    pub cuda_core: f64,
    /// Special-function operations (exp/tanh/log count as one each).
    pub sfu: f64,
}

impl PipelineFlops {
    /// All-zero work.
    pub fn none() -> Self {
        Self::default()
    }
}

/// A device-independent description of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Human-readable kernel name (shows up in timelines).
    pub name: String,
    /// Number of threadblocks in the grid.
    pub grid_blocks: u64,
    /// Per-block resource usage.
    pub block: BlockResources,
    /// Arithmetic work per pipeline.
    pub flops: PipelineFlops,
    /// Bytes read from DRAM (after modeled cache reuse).
    pub dram_read_bytes: f64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: f64,
    /// Total shared-memory traffic in bytes (read + write).
    pub smem_bytes: f64,
    /// Element type of global-memory accesses (for alignment derating).
    pub dtype: DType,
    /// Vector width of global accesses in elements (1/2/4/8 for FP16).
    pub alignment_elems: usize,
    /// Average ways of shared-memory bank conflict (1.0 = conflict-free).
    pub bank_conflict_ways: f64,
    /// Main-loop efficiency in 0..=1: the fraction of the pipeline peak the
    /// kernel's inner loop can issue (software pipelining quality, stage
    /// count, instruction mix). Supplied by the kernel library.
    pub mainloop_efficiency: f64,
    /// How well the kernel overlaps its memory streams under compute, in
    /// 0..=1. Multi-stage `cp.async` pipelines (Ampere, stages >= 3) keep
    /// loads fully asynchronous and approach 1.0; double-buffered Turing
    /// kernels leave more exposed latency (0.0 = the architecture default
    /// leak applies in full).
    pub pipelined_overlap: f64,
}

impl KernelProfile {
    /// A profile that only moves `bytes` through DRAM (half read, half
    /// write), e.g. an elementwise or data-movement kernel.
    pub fn memory_only(name: &str, bytes: f64) -> Self {
        KernelProfile {
            name: name.into(),
            grid_blocks: 1024,
            block: BlockResources::new(256, 32, 0),
            flops: PipelineFlops::none(),
            dram_read_bytes: bytes / 2.0,
            dram_write_bytes: bytes / 2.0,
            smem_bytes: 0.0,
            dtype: DType::F16,
            alignment_elems: 8,
            bank_conflict_ways: 1.0,
            mainloop_efficiency: 1.0,
            pipelined_overlap: 0.0,
        }
    }
}

/// Which resource a kernel's time was bound by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundedness {
    /// Tensor-core or CUDA-core arithmetic dominated.
    Compute,
    /// DRAM bandwidth dominated.
    Memory,
    /// Shared-memory bandwidth dominated.
    SharedMemory,
    /// Fixed launch overhead dominated (very short kernels).
    Launch,
}

impl fmt::Display for Boundedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Boundedness::Compute => "compute-bound",
            Boundedness::Memory => "memory-bound",
            Boundedness::SharedMemory => "smem-bound",
            Boundedness::Launch => "launch-bound",
        };
        f.write_str(s)
    }
}

/// Simulated execution time of one kernel, with its breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTime {
    /// Arithmetic stream busy time, microseconds.
    pub compute_us: f64,
    /// DRAM stream busy time, microseconds.
    pub dram_us: f64,
    /// Shared-memory stream busy time, microseconds.
    pub smem_us: f64,
    /// Fixed launch overhead, microseconds.
    pub launch_us: f64,
    /// Wave-quantization tail, microseconds.
    pub tail_us: f64,
    /// End-to-end kernel time, microseconds.
    pub total_us: f64,
    /// The dominating resource.
    pub bound: Boundedness,
    /// Occupancy achieved by the launch.
    pub occupancy: Occupancy,
}

impl KernelTime {
    /// Delivered arithmetic throughput in TFLOPS given the profile's total
    /// flop count.
    pub fn tflops(&self, flops: f64) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        flops / (self.total_us * 1e6)
    }
}

/// Prices `profile` on `arch`. See the module docs for the model.
///
/// A profile that is not launchable (occupancy 0) is priced at effectively
/// infinite time (`f64::INFINITY` total), letting search layers discard it
/// without a separate error path.
pub fn simulate_kernel(arch: &GpuArch, profile: &KernelProfile) -> KernelTime {
    let occ = Occupancy::compute(arch, profile.block);
    if occ.blocks_per_sm == 0 {
        return KernelTime {
            compute_us: f64::INFINITY,
            dram_us: 0.0,
            smem_us: 0.0,
            launch_us: arch.params.launch_overhead_us,
            tail_us: 0.0,
            total_us: f64::INFINITY,
            bound: Boundedness::Compute,
            occupancy: occ,
        };
    }

    let latency_factor = latency_hiding_factor(arch, occ.active_warps_per_sm);
    let concurrent_blocks = (occ.blocks_per_sm as u64) * (arch.sm_count as u64);
    let grid = profile.grid_blocks.max(1);
    let waves = grid.div_ceil(concurrent_blocks);
    let sm_utilization = sm_utilization_factor(arch, occ.blocks_per_sm, profile.grid_blocks);

    // --- Compute streams --------------------------------------------------
    let eff = profile.mainloop_efficiency.clamp(0.01, 1.0) * latency_factor * sm_utilization;
    let tc_peak = arch.peak_tflops(Pipeline::TensorCore, profile.dtype) * 1e6; // flops/us
    let cc_peak = arch.peak_tflops(Pipeline::CudaCore, profile.dtype) * 1e6;
    let sfu_peak = arch.peak_tflops(Pipeline::Sfu, profile.dtype) * 1e6;

    let tc_us = if profile.flops.tensor_core > 0.0 {
        profile.flops.tensor_core / (tc_peak * eff)
    } else {
        0.0
    };
    let cc_us = if profile.flops.cuda_core > 0.0 {
        profile.flops.cuda_core / (cc_peak * eff)
    } else {
        0.0
    };
    let sfu_us = if profile.flops.sfu > 0.0 {
        profile.flops.sfu / (sfu_peak * eff)
    } else {
        0.0
    };
    // Tensor cores and CUDA cores dual-issue from different units, but SFU
    // work (transcendental epilogues) runs as a tail after each tile's main
    // loop and its low throughput cannot hide behind it.
    let compute_us = tc_us.max(cc_us) + sfu_us;

    // --- Memory streams ---------------------------------------------------
    let dram_bw = arch.dram_bytes_per_us()
        * alignment_efficiency(profile.dtype, profile.alignment_elems)
        * sm_utilization.max(0.6); // few blocks can still saturate much of DRAM
    let dram_us = (profile.dram_read_bytes + profile.dram_write_bytes) / dram_bw;

    let smem_bw = arch.smem_bytes_per_us() * sm_utilization
        / bank_conflict_slowdown(profile.bank_conflict_ways);
    let smem_us = if profile.smem_bytes > 0.0 {
        profile.smem_bytes / smem_bw
    } else {
        0.0
    };

    // --- Combine -----------------------------------------------------------
    let dominant = compute_us.max(dram_us).max(smem_us);
    let leak = arch.params.overlap_leak
        * (1.0 - profile.pipelined_overlap.clamp(0.0, 1.0))
        * (compute_us + dram_us + smem_us - dominant);
    let tail_us = (waves.saturating_sub(1)) as f64 * arch.params.wave_tail_us;
    let launch_us = arch.params.launch_overhead_us;
    let total_us = launch_us + dominant + leak + tail_us;

    let bound = if dominant <= launch_us {
        Boundedness::Launch
    } else if dominant == compute_us {
        Boundedness::Compute
    } else if dominant == dram_us {
        Boundedness::Memory
    } else {
        Boundedness::SharedMemory
    };

    KernelTime {
        compute_us,
        dram_us,
        smem_us,
        launch_us,
        tail_us,
        total_us,
        bound,
        occupancy: occ,
    }
}

/// Latency-hiding derate from occupancy: below
/// [`ModelParams::latency_hiding_warps`](crate::arch::ModelParams) active
/// warps per SM the SM cannot keep its pipelines fed, and throughput
/// degrades linearly (floored at 0.15).
///
/// Shared by [`simulate_kernel`] and the profiler's candidate lower bound,
/// so the bound's derate is *by construction* the one the simulator will
/// apply.
pub fn latency_hiding_factor(arch: &GpuArch, active_warps_per_sm: u32) -> f64 {
    let hide = arch.params.latency_hiding_warps as f64;
    (active_warps_per_sm as f64 / hide).clamp(0.15, 1.0)
}

/// SM-utilization derate from grid size: small grids leave SMs idle, and
/// the last partial wave leaves block slots empty. `blocks_per_sm` is the
/// occupancy result for the kernel's block shape.
///
/// Shared by [`simulate_kernel`] and the profiler's candidate lower bound.
pub fn sm_utilization_factor(arch: &GpuArch, blocks_per_sm: u32, grid_blocks: u64) -> f64 {
    let concurrent_blocks = (blocks_per_sm as u64) * (arch.sm_count as u64);
    let grid = grid_blocks.max(1);
    if grid >= arch.sm_count as u64 {
        // Fraction of block slots actually used across all waves...
        let waves = grid.div_ceil(concurrent_blocks);
        let slot_utilization = grid as f64 / (waves * concurrent_blocks) as f64;
        slot_utilization.max(0.5)
    } else {
        // ...but SMs can't be more idle than the fraction with zero blocks.
        grid as f64 / arch.sm_count as f64
    }
}

/// A certified analytic lower bound on [`simulate_kernel`]'s `total_us`
/// for `profile` on `arch`: launch overhead plus the roofline
/// `max(compute_us, dram_us, smem_us)` with every stream priced at its
/// *undeterated* datasheet peak.
///
/// Because `simulate_kernel` only ever applies derating factors `<= 1`
/// to those peaks (main-loop efficiency, latency hiding, SM utilization,
/// alignment, bank conflicts, the 88% DRAM peak fraction) and only ever
/// *adds* non-negative terms (overlap leak, wave tail), this bound never
/// exceeds the simulated time. Profilers use it to skip candidates whose
/// bound already exceeds the running best without changing the winner.
pub fn roofline_lower_bound_us(arch: &GpuArch, profile: &KernelProfile) -> f64 {
    let tc_peak = arch.peak_tflops(Pipeline::TensorCore, profile.dtype) * 1e6; // flops/us
    let cc_peak = arch.peak_tflops(Pipeline::CudaCore, profile.dtype) * 1e6;
    let sfu_peak = arch.peak_tflops(Pipeline::Sfu, profile.dtype) * 1e6;

    let tc_us = if profile.flops.tensor_core > 0.0 {
        profile.flops.tensor_core / tc_peak
    } else {
        0.0
    };
    let cc_us = if profile.flops.cuda_core > 0.0 {
        profile.flops.cuda_core / cc_peak
    } else {
        0.0
    };
    let sfu_us = if profile.flops.sfu > 0.0 {
        profile.flops.sfu / sfu_peak
    } else {
        0.0
    };
    let compute_us = tc_us.max(cc_us) + sfu_us;

    // Raw datasheet DRAM bandwidth, NOT dram_bytes_per_us(): the achievable
    // fraction (0.88) is itself a derate the simulator applies.
    let dram_bw = arch.dram_bw_gbps * 1e3; // bytes/us
    let dram_us = (profile.dram_read_bytes + profile.dram_write_bytes) / dram_bw;

    let smem_us = if profile.smem_bytes > 0.0 {
        profile.smem_bytes / arch.smem_bytes_per_us()
    } else {
        0.0
    };

    arch.params.launch_overhead_us + compute_us.max(dram_us).max(smem_us)
}

/// A tighter certified lower bound on [`simulate_kernel`]'s `total_us`:
/// the roofline of [`roofline_lower_bound_us`] with every derate that is
/// a *deterministic function of the profile itself* applied — main-loop
/// efficiency on the compute streams, access-alignment efficiency on
/// DRAM, bank-conflict slowdown on shared memory.
///
/// Admissibility: `simulate_kernel` prices each stream with the same
/// factors *times* additional factors that are all `<= 1` (latency
/// hiding, SM utilization) and then only *adds* non-negative terms
/// (overlap leak, wave-quantization tail). Every stream here is therefore
/// priced at or above the simulator's effective rate, so this bound never
/// exceeds the simulated total — while sitting close enough to it that a
/// profiler can prune most losing candidates instead of simulating them.
pub fn derated_lower_bound_us(arch: &GpuArch, profile: &KernelProfile) -> f64 {
    // Same clamp as the simulator: `eff` there is `mainloop * latency *
    // sm_utilization <= mainloop`, so pricing at `mainloop` alone is an
    // upper bound on the effective rate.
    let eff = profile.mainloop_efficiency.clamp(0.01, 1.0);
    let tc_peak = arch.peak_tflops(Pipeline::TensorCore, profile.dtype) * 1e6; // flops/us
    let cc_peak = arch.peak_tflops(Pipeline::CudaCore, profile.dtype) * 1e6;
    let sfu_peak = arch.peak_tflops(Pipeline::Sfu, profile.dtype) * 1e6;

    let tc_us = if profile.flops.tensor_core > 0.0 {
        profile.flops.tensor_core / (tc_peak * eff)
    } else {
        0.0
    };
    let cc_us = if profile.flops.cuda_core > 0.0 {
        profile.flops.cuda_core / (cc_peak * eff)
    } else {
        0.0
    };
    let sfu_us = if profile.flops.sfu > 0.0 {
        profile.flops.sfu / (sfu_peak * eff)
    } else {
        0.0
    };
    let compute_us = tc_us.max(cc_us) + sfu_us;

    // Simulator DRAM rate is `dram_bytes_per_us * alignment * max(sm_util,
    // 0.6)`; dropping the utilization factor (<= 1) can only raise the rate.
    let dram_bw =
        arch.dram_bytes_per_us() * alignment_efficiency(profile.dtype, profile.alignment_elems);
    let dram_us = (profile.dram_read_bytes + profile.dram_write_bytes) / dram_bw;

    let smem_us = if profile.smem_bytes > 0.0 {
        profile.smem_bytes * bank_conflict_slowdown(profile.bank_conflict_ways)
            / arch.smem_bytes_per_us()
    } else {
        0.0
    };

    arch.params.launch_overhead_us + compute_us.max(dram_us).max(smem_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    /// A well-tuned tensor-core GEMM profile for an M=N=K cube.
    fn big_gemm_profile(mnk: usize) -> KernelProfile {
        let flops = 2.0 * (mnk as f64).powi(3);
        let elt = 2.0;
        let (tb_m, tb_n) = (128.0, 128.0);
        let traffic = (mnk * mnk) as f64 * elt * ((mnk as f64 / tb_n) + (mnk as f64 / tb_m))
            * 0.25 // L2 captures most re-reads
            + (mnk * mnk) as f64 * elt;
        KernelProfile {
            name: format!("gemm{mnk}"),
            grid_blocks: ((mnk / 128) * (mnk / 128)) as u64,
            block: BlockResources::new(256, 160, 48 * 1024),
            flops: PipelineFlops {
                tensor_core: flops,
                cuda_core: 0.0,
                sfu: 0.0,
            },
            dram_read_bytes: traffic,
            dram_write_bytes: (mnk * mnk) as f64 * elt,
            smem_bytes: flops / 2.0 / 8.0, // operand bytes through smem
            dtype: DType::F16,
            alignment_elems: 8,
            bank_conflict_ways: 1.0,
            mainloop_efficiency: 0.95,
            pipelined_overlap: 0.25,
        }
    }

    #[test]
    fn big_fp16_gemm_approaches_tensor_core_peak() {
        let p = big_gemm_profile(4096);
        let t = simulate_kernel(&t4(), &p);
        let tflops = t.tflops(p.flops.tensor_core);
        assert!(
            tflops > 45.0 && tflops <= 65.0,
            "expected near-peak tensor-core throughput, got {tflops:.1} TFLOPS ({t:?})"
        );
        assert_eq!(t.bound, Boundedness::Compute);
    }

    #[test]
    fn cuda_core_gemm_is_many_times_slower() {
        // Same math, CUDA-core pipeline (Ansor-style kernel).
        let mut p = big_gemm_profile(4096);
        p.flops.cuda_core = p.flops.tensor_core;
        p.flops.tensor_core = 0.0;
        p.mainloop_efficiency = 0.85;
        let tc = simulate_kernel(&t4(), &big_gemm_profile(4096));
        let cc = simulate_kernel(&t4(), &p);
        let ratio = cc.total_us / tc.total_us;
        assert!(ratio > 3.0, "tensor cores should win big, ratio {ratio:.2}");
    }

    #[test]
    fn memory_only_kernel_is_memory_bound() {
        let p = KernelProfile::memory_only("copy", 128.0 * 1024.0 * 1024.0);
        let t = simulate_kernel(&t4(), &p);
        assert_eq!(t.bound, Boundedness::Memory);
        // 128 MiB at 281.6 GB/s ≈ 476 us; within 2x including overheads.
        assert!(t.total_us > 400.0 && t.total_us < 1000.0, "{t:?}");
    }

    #[test]
    fn launch_bound_kernel() {
        let p = KernelProfile::memory_only("tiny", 1024.0);
        let t = simulate_kernel(&t4(), &p);
        assert_eq!(t.bound, Boundedness::Launch);
        assert!(t.total_us >= 3.0);
    }

    #[test]
    fn misalignment_slows_memory_bound_kernels() {
        let aligned = KernelProfile::memory_only("a8", 64.0 * 1024.0 * 1024.0);
        let mut misaligned = aligned.clone();
        misaligned.alignment_elems = 2;
        let ta = simulate_kernel(&t4(), &aligned);
        let tm = simulate_kernel(&t4(), &misaligned);
        let ratio = tm.total_us / ta.total_us;
        assert!(
            ratio > 1.5 && ratio < 2.2,
            "padding band from Table 3, got {ratio:.2}"
        );
    }

    #[test]
    fn unlaunchable_profile_is_infinite() {
        let mut p = KernelProfile::memory_only("bad", 1024.0);
        p.block = BlockResources::new(128, 32, 128 * 1024);
        let t = simulate_kernel(&t4(), &p);
        assert!(t.total_us.is_infinite());
    }

    #[test]
    fn low_occupancy_derates_compute() {
        let p = big_gemm_profile(4096);
        let mut starved = p.clone();
        // One 128-thread block per SM: 4 warps < 8 needed for hiding.
        starved.block = BlockResources::new(128, 255, 60 * 1024);
        let fast = simulate_kernel(&t4(), &p);
        let slow = simulate_kernel(&t4(), &starved);
        assert!(
            slow.total_us > fast.total_us * 1.3,
            "{} vs {}",
            slow.total_us,
            fast.total_us
        );
    }

    #[test]
    fn small_grid_underutilizes_sms() {
        let mut p = big_gemm_profile(1024);
        // Pretend only 4 blocks exist for the same work.
        p.grid_blocks = 4;
        let few = simulate_kernel(&t4(), &p);
        let mut full = big_gemm_profile(1024);
        full.grid_blocks = 64;
        let many = simulate_kernel(&t4(), &full);
        assert!(few.total_us > many.total_us * 2.0);
    }

    #[test]
    fn bank_conflicts_hurt_smem_heavy_kernels() {
        let mut p = big_gemm_profile(2048);
        p.smem_bytes *= 8.0; // make smem the bottleneck
        let clean = simulate_kernel(&t4(), &p);
        let mut conflicted = p.clone();
        conflicted.bank_conflict_ways = 8.0;
        let bad = simulate_kernel(&t4(), &conflicted);
        assert!(bad.total_us > clean.total_us * 2.0);
        assert_eq!(bad.bound, Boundedness::SharedMemory);
    }

    #[test]
    fn wave_tail_accumulates() {
        let mut p = KernelProfile::memory_only("waves", 1024.0 * 1024.0);
        p.grid_blocks = 100_000;
        let t = simulate_kernel(&t4(), &p);
        assert!(t.tail_us > 0.0);
    }

    #[test]
    fn roofline_bound_never_exceeds_simulated_time() {
        for mnk in [512, 1024, 2048, 4096] {
            let p = big_gemm_profile(mnk);
            let bound = roofline_lower_bound_us(&t4(), &p);
            let t = simulate_kernel(&t4(), &p);
            assert!(
                bound <= t.total_us,
                "bound {bound} exceeds simulated {} for mnk={mnk}",
                t.total_us
            );
            assert!(bound > 0.0);
        }
        let mem = KernelProfile::memory_only("copy", 64.0 * 1024.0 * 1024.0);
        let bound = roofline_lower_bound_us(&t4(), &mem);
        assert!(bound <= simulate_kernel(&t4(), &mem).total_us);
    }

    #[test]
    fn derated_bound_is_admissible_and_tighter_than_roofline() {
        let mut profiles: Vec<KernelProfile> = [512, 1024, 2048, 4096]
            .iter()
            .map(|&mnk| big_gemm_profile(mnk))
            .collect();
        // Stress the derates the bound is allowed to apply.
        let mut misaligned = big_gemm_profile(1024);
        misaligned.alignment_elems = 2;
        profiles.push(misaligned);
        let mut conflicted = big_gemm_profile(2048);
        conflicted.smem_bytes *= 8.0;
        conflicted.bank_conflict_ways = 4.0;
        profiles.push(conflicted);
        let mut inefficient = big_gemm_profile(512);
        inefficient.mainloop_efficiency = 0.4;
        profiles.push(inefficient);
        profiles.push(KernelProfile::memory_only("copy", 64.0 * 1024.0 * 1024.0));

        for p in &profiles {
            let roofline = roofline_lower_bound_us(&t4(), p);
            let derated = derated_lower_bound_us(&t4(), p);
            let t = simulate_kernel(&t4(), p);
            assert!(
                derated <= t.total_us,
                "{}: derated bound {derated} exceeds simulated {}",
                p.name,
                t.total_us
            );
            assert!(
                derated >= roofline - 1e-12,
                "{}: derated bound {derated} below roofline {roofline}",
                p.name
            );
        }
    }

    #[test]
    fn roofline_bound_is_cheap_and_tracks_work() {
        let small = roofline_lower_bound_us(&t4(), &big_gemm_profile(512));
        let large = roofline_lower_bound_us(&t4(), &big_gemm_profile(4096));
        assert!(large > small * 10.0, "{large} vs {small}");
    }

    #[test]
    fn tflops_helper() {
        let p = big_gemm_profile(4096);
        let t = simulate_kernel(&t4(), &p);
        assert!(t.tflops(p.flops.tensor_core) > 0.0);
        let zero = KernelTime { total_us: 0.0, ..t };
        assert_eq!(zero.tflops(1e9), 0.0);
    }
}
