//! Memory-system models: alignment-dependent DRAM efficiency and
//! shared-memory bank conflicts.
//!
//! The paper's kernel-padding optimization (Section 3.2.3, Table 3) exists
//! because "the largest vectorized load and store supported by NVIDIA GPUs
//! is 128 bits", so FP16 tensors whose contiguous dimension is not a
//! multiple of 8 must fall back to narrower accesses, costing instruction
//! issue slots, predicates, and coalescing. This module is where that
//! effect lives in the simulator.

use bolt_tensor::DType;

use crate::arch::GpuArch;

/// Fraction of peak DRAM bandwidth achievable when the widest legal
/// vectorized access is `alignment_elems` elements of `dtype`.
///
/// Alignment 8 for FP16 corresponds to full 128-bit accesses (factor 1.0);
/// each halving of the access width costs issue bandwidth and coalescing
/// efficiency. The factors are calibrated so that an alignment-2 Conv2D
/// gains ~1.8× from padding to alignment 8, matching Table 3.
///
/// ```
/// use bolt_gpu_sim::alignment_efficiency;
/// use bolt_tensor::DType;
/// let full = alignment_efficiency(DType::F16, 8);
/// let narrow = alignment_efficiency(DType::F16, 2);
/// assert!(full / narrow > 1.5);
/// ```
pub fn alignment_efficiency(dtype: DType, alignment_elems: usize) -> f64 {
    let access_bits = (dtype.size_bits() * alignment_elems.max(1)).min(128);
    match access_bits {
        128 => 1.00,
        64 => 0.82,
        32 => 0.55,
        16 => 0.42,
        _ => 0.35,
    }
}

/// The largest power-of-two vector width (in elements) usable for a
/// contiguous dimension of `extent` elements of `dtype`, capped at the
/// 128-bit hardware maximum.
///
/// ```
/// use bolt_gpu_sim::memory::max_alignment;
/// use bolt_tensor::DType;
/// assert_eq!(max_alignment(DType::F16, 64), 8);
/// assert_eq!(max_alignment(DType::F16, 46), 2);
/// assert_eq!(max_alignment(DType::F16, 3), 1);
/// ```
pub fn max_alignment(dtype: DType, extent: usize) -> usize {
    let cap = dtype.max_vector_elems();
    let mut align = cap;
    while align > 1 && !extent.is_multiple_of(align) {
        align /= 2;
    }
    align
}

/// Effective DRAM bandwidth in bytes/us for accesses of the given
/// alignment.
pub fn effective_dram_bandwidth(arch: &GpuArch, dtype: DType, alignment_elems: usize) -> f64 {
    arch.dram_bytes_per_us() * alignment_efficiency(dtype, alignment_elems)
}

/// Slowdown multiplier (≥ 1) for shared-memory traffic served with an
/// `n`-way bank conflict. A conflict-free layout has `ways = 1`; the
/// paper's smem-resident persistent kernels "carefully design the shared
/// memory layout to avoid any shared memory bank conflict", which is why
/// the fused-kernel profiles in `bolt-cutlass` use `ways = 1` while a naive
/// staging layout would pay 2–8×.
pub fn bank_conflict_slowdown(ways: f64) -> f64 {
    ways.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_efficiency_monotone_in_width() {
        let mut prev = 0.0;
        for align in [1usize, 2, 4, 8] {
            let e = alignment_efficiency(DType::F16, align);
            assert!(e >= prev, "align {align}");
            prev = e;
        }
        assert_eq!(alignment_efficiency(DType::F16, 8), 1.0);
    }

    #[test]
    fn alignment_caps_at_128_bits() {
        // Alignment 16 of f16 is still a 128-bit access.
        assert_eq!(alignment_efficiency(DType::F16, 16), 1.0);
        // f32 with alignment 4 is 128 bits.
        assert_eq!(alignment_efficiency(DType::F32, 4), 1.0);
    }

    #[test]
    fn max_alignment_from_extent() {
        assert_eq!(max_alignment(DType::F16, 64), 8);
        assert_eq!(max_alignment(DType::F16, 48), 8);
        assert_eq!(max_alignment(DType::F16, 46), 2);
        assert_eq!(max_alignment(DType::F16, 174), 2);
        assert_eq!(max_alignment(DType::F16, 3), 1);
        assert_eq!(max_alignment(DType::F32, 6), 2);
        assert_eq!(max_alignment(DType::I8, 32), 16);
    }

    #[test]
    fn padding_gain_matches_table3_band() {
        // Table 3: alignment 2 -> 8 gives 1.6x-2.0x. The raw bandwidth
        // ratio must sit in/above that band (compute overlap brings the
        // end-to-end ratio down into it).
        let gain = alignment_efficiency(DType::F16, 8) / alignment_efficiency(DType::F16, 2);
        assert!(gain > 1.5 && gain < 2.2, "gain {gain}");
    }

    #[test]
    fn effective_bandwidth_scaling() {
        let t4 = GpuArch::tesla_t4();
        let full = effective_dram_bandwidth(&t4, DType::F16, 8);
        let half = effective_dram_bandwidth(&t4, DType::F16, 4);
        assert!(full > half);
        assert!((full - t4.dram_bytes_per_us()).abs() < 1e-9);
    }

    #[test]
    fn bank_conflicts() {
        assert_eq!(bank_conflict_slowdown(0.5), 1.0);
        assert_eq!(bank_conflict_slowdown(4.0), 4.0);
    }
}
