//! GPU architecture descriptions and model calibration parameters.

use serde::{Deserialize, Serialize};

use bolt_tensor::DType;

use crate::pipeline::Pipeline;

/// Static description of a GPU, plus the calibration constants of the
/// analytic model ([`ModelParams`]).
///
/// Presets are provided for the paper's testbed ([`GpuArch::tesla_t4`]) and
/// for Volta/Ampere parts mentioned in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Marketing name, e.g. `"Tesla T4"`.
    pub name: String,
    /// CUDA compute capability `(major, minor)`.
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Sustained boost clock in GHz.
    pub clock_ghz: f64,
    /// FP32 CUDA cores per SM.
    pub cuda_cores_per_sm: u32,
    /// Tensor cores per SM.
    pub tensor_cores_per_sm: u32,
    /// Special-function units per SM (for exp/tanh/log).
    pub sfu_per_sm: u32,
    /// Peak dense FP16 tensor-core throughput, whole chip, in TFLOPS.
    pub fp16_tensor_tflops: f64,
    /// Peak FP32 CUDA-core throughput, whole chip, in TFLOPS.
    pub fp32_cuda_tflops: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Aggregate shared-memory bandwidth in GB/s (32 banks × 4 B × clock ×
    /// SMs).
    pub smem_bw_gbps: f64,
    /// Usable shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Maximum shared memory per threadblock in bytes.
    pub max_smem_per_block: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum registers per thread.
    pub max_regs_per_thread: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Analytic-model calibration constants.
    pub params: ModelParams,
}

/// Calibration constants of the analytic performance model. These are the
/// only "magic numbers" in the simulator; everything else derives from the
/// datasheet fields of [`GpuArch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Fixed kernel launch overhead in microseconds (driver + hardware).
    pub launch_overhead_us: f64,
    /// Fraction of datasheet DRAM bandwidth achievable by a perfectly
    /// coalesced 128-bit streaming kernel (measured ~88% on T4).
    pub dram_peak_fraction: f64,
    /// Minimum active warps per SM needed to fully hide latency; below
    /// this, achievable throughput degrades linearly.
    pub latency_hiding_warps: u32,
    /// Fraction of non-dominant time that still shows up in the total
    /// (imperfect compute/memory overlap), 0..1.
    pub overlap_leak: f64,
    /// Per-wave tail penalty in microseconds (block scheduling gaps).
    pub wave_tail_us: f64,
    /// SFU operations per clock per SM (transcendental throughput).
    pub sfu_ops_per_clock_per_sm: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            launch_overhead_us: 3.0,
            dram_peak_fraction: 0.88,
            latency_hiding_warps: 8,
            overlap_leak: 0.12,
            wave_tail_us: 0.4,
            sfu_ops_per_clock_per_sm: 16.0,
        }
    }
}

impl GpuArch {
    /// NVIDIA Tesla T4 (Turing TU104, compute capability 7.5) — the
    /// testbed of the paper's evaluation.
    pub fn tesla_t4() -> Self {
        GpuArch {
            name: "Tesla T4".into(),
            compute_capability: (7, 5),
            sm_count: 40,
            clock_ghz: 1.59,
            cuda_cores_per_sm: 64,
            tensor_cores_per_sm: 8,
            sfu_per_sm: 16,
            fp16_tensor_tflops: 65.0,
            fp32_cuda_tflops: 8.1,
            dram_bw_gbps: 320.0,
            l2_bytes: 4 * 1024 * 1024,
            // 32 banks * 4 B * 1.59 GHz * 40 SMs ≈ 8.1 TB/s.
            smem_bw_gbps: 8140.0,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 1024,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            warp_size: 32,
            params: ModelParams::default(),
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100, compute capability 7.0).
    pub fn tesla_v100() -> Self {
        GpuArch {
            name: "Tesla V100".into(),
            compute_capability: (7, 0),
            sm_count: 80,
            clock_ghz: 1.53,
            cuda_cores_per_sm: 64,
            tensor_cores_per_sm: 8,
            sfu_per_sm: 16,
            fp16_tensor_tflops: 125.0,
            fp32_cuda_tflops: 15.7,
            dram_bw_gbps: 900.0,
            l2_bytes: 6 * 1024 * 1024,
            smem_bw_gbps: 15700.0,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 96 * 1024,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            params: ModelParams::default(),
        }
    }

    /// NVIDIA A100 (Ampere GA100, compute capability 8.0). The paper cites
    /// ">95% of the hardware theoretic limit" (300 of 312 TFLOPS FP16) for
    /// Bolt-generated GEMMs on this part.
    pub fn a100() -> Self {
        GpuArch {
            name: "A100".into(),
            compute_capability: (8, 0),
            sm_count: 108,
            clock_ghz: 1.41,
            cuda_cores_per_sm: 64,
            tensor_cores_per_sm: 4,
            sfu_per_sm: 16,
            fp16_tensor_tflops: 312.0,
            fp32_cuda_tflops: 19.5,
            dram_bw_gbps: 1555.0,
            l2_bytes: 40 * 1024 * 1024,
            smem_bw_gbps: 19500.0,
            smem_per_sm: 164 * 1024,
            max_smem_per_block: 163 * 1024,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            warp_size: 32,
            params: ModelParams::default(),
        }
    }

    /// Short preset names accepted by [`GpuArch::preset`], in the order
    /// the CLIs list them.
    pub const PRESET_NAMES: [&'static str; 3] = ["t4", "v100", "a100"];

    /// Looks up a preset by short name (`"t4"`, `"v100"`, `"a100"`,
    /// case-insensitive; full marketing names are accepted too). This is
    /// the one place CLI/fleet code maps arch strings to presets, so
    /// every tool spells them the same way.
    pub fn preset(name: &str) -> Option<GpuArch> {
        match name.to_ascii_lowercase().as_str() {
            "t4" | "tesla t4" | "tesla-t4" => Some(GpuArch::tesla_t4()),
            "v100" | "tesla v100" | "tesla-v100" => Some(GpuArch::tesla_v100()),
            "a100" => Some(GpuArch::a100()),
            _ => None,
        }
    }

    /// A filesystem/CLI-safe short name for this architecture: the
    /// preset slug when the name matches one, else the lowercased name
    /// with whitespace collapsed to `-`.
    pub fn slug(&self) -> String {
        match self.name.as_str() {
            "Tesla T4" => "t4".into(),
            "Tesla V100" => "v100".into(),
            "A100" => "a100".into(),
            other => other
                .to_ascii_lowercase()
                .split_whitespace()
                .collect::<Vec<_>>()
                .join("-"),
        }
    }

    /// Peak throughput in TFLOPS (or TOPS for integers) of `pipeline` when
    /// computing on `dtype`.
    ///
    /// Tensor-core throughput scales inversely with operand width (FP16 ×1,
    /// INT8 ×2, INT4 ×4, B1 ×8; TF32 ×½ of FP16). CUDA-core FP16 runs at 2×
    /// FP32 on these parts via `HFMA2`.
    pub fn peak_tflops(&self, pipeline: Pipeline, dtype: DType) -> f64 {
        match pipeline {
            Pipeline::TensorCore => {
                if !dtype.tensor_core_eligible() {
                    return 0.0;
                }
                match dtype {
                    DType::F16 | DType::Bf16 => self.fp16_tensor_tflops,
                    DType::Tf32 => self.fp16_tensor_tflops / 2.0,
                    DType::I8 => self.fp16_tensor_tflops * 2.0,
                    DType::I4 => self.fp16_tensor_tflops * 4.0,
                    DType::B1 => self.fp16_tensor_tflops * 8.0,
                    _ => 0.0,
                }
            }
            Pipeline::CudaCore => match dtype {
                DType::F16 | DType::Bf16 => self.fp32_cuda_tflops * 2.0,
                DType::F32 | DType::Tf32 => self.fp32_cuda_tflops,
                DType::F64 => self.fp32_cuda_tflops / 32.0, // GeForce-class ratio
                DType::I8 | DType::I4 | DType::I32 | DType::B1 => self.fp32_cuda_tflops,
            },
            Pipeline::Sfu => {
                // SFU "flops" are transcendental ops.
                self.params.sfu_ops_per_clock_per_sm * self.sm_count as f64 * self.clock_ghz
                    / 1000.0
            }
        }
    }

    /// Datasheet DRAM bandwidth derated by the achievable fraction, in
    /// bytes per microsecond.
    pub fn dram_bytes_per_us(&self) -> f64 {
        self.dram_bw_gbps * self.params.dram_peak_fraction * 1e9 / 1e6
    }

    /// Aggregate shared-memory bandwidth in bytes per microsecond.
    pub fn smem_bytes_per_us(&self) -> f64 {
        self.smem_bw_gbps * 1e9 / 1e6
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_datasheet() {
        let t4 = GpuArch::tesla_t4();
        assert_eq!(t4.sm_count, 40);
        assert_eq!(t4.max_warps_per_sm(), 32);
        // CUDA-core FP32 peak should be consistent with cores*clock*2.
        let derived =
            t4.sm_count as f64 * t4.cuda_cores_per_sm as f64 * t4.clock_ghz * 2.0 / 1000.0;
        assert!((derived - t4.fp32_cuda_tflops).abs() / t4.fp32_cuda_tflops < 0.02);
    }

    #[test]
    fn pipeline_peaks() {
        let t4 = GpuArch::tesla_t4();
        assert_eq!(t4.peak_tflops(Pipeline::TensorCore, DType::F16), 65.0);
        assert_eq!(t4.peak_tflops(Pipeline::TensorCore, DType::I8), 130.0);
        assert_eq!(t4.peak_tflops(Pipeline::TensorCore, DType::F32), 0.0);
        assert_eq!(t4.peak_tflops(Pipeline::CudaCore, DType::F16), 16.2);
        assert_eq!(t4.peak_tflops(Pipeline::CudaCore, DType::F32), 8.1);
    }

    #[test]
    fn tensor_core_gap_is_large() {
        // The premise of the whole paper: tensor cores are ~8x the FP16
        // CUDA-core path and ~4x on every listed architecture.
        for arch in [GpuArch::tesla_t4(), GpuArch::tesla_v100(), GpuArch::a100()] {
            let tc = arch.peak_tflops(Pipeline::TensorCore, DType::F16);
            let cc = arch.peak_tflops(Pipeline::CudaCore, DType::F16);
            assert!(tc / cc > 3.5, "{}: {tc} vs {cc}", arch.name);
        }
    }

    #[test]
    fn presets_resolve_by_short_and_full_name() {
        for name in GpuArch::PRESET_NAMES {
            let arch = GpuArch::preset(name).expect("preset resolves");
            assert_eq!(arch.slug(), name, "slug round-trips the preset name");
            assert_eq!(
                GpuArch::preset(&arch.name).expect("full name resolves"),
                arch
            );
        }
        assert_eq!(GpuArch::preset("T4"), Some(GpuArch::tesla_t4()));
        assert_eq!(GpuArch::preset("h100"), None);
    }

    #[test]
    fn bandwidth_units() {
        let t4 = GpuArch::tesla_t4();
        // 320 GB/s * 0.88 = 281.6 GB/s = 281600 bytes/us.
        assert!((t4.dram_bytes_per_us() - 281_600.0).abs() < 1.0);
        assert!(t4.smem_bytes_per_us() > t4.dram_bytes_per_us() * 10.0);
    }
}
