//! Threadblock occupancy calculation.
//!
//! Mirrors the CUDA occupancy calculator: given a block's resource usage,
//! compute how many blocks fit on one SM and which resource limits it.
//! Occupancy feeds the latency-hiding derate in the kernel cost model and
//! is what makes register-file pressure (RF-resident persistent kernels,
//! Ansor's register-greedy schedules) visible in simulated performance.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::arch::GpuArch;

/// Per-threadblock resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockResources {
    /// Threads per block (a multiple of the warp size for full warps).
    pub threads: u32,
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub smem_bytes: u32,
}

impl BlockResources {
    /// Convenience constructor.
    pub fn new(threads: u32, regs_per_thread: u32, smem_bytes: u32) -> Self {
        BlockResources {
            threads,
            regs_per_thread,
            smem_bytes,
        }
    }
}

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimit {
    /// Thread count per SM.
    Threads,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// Hardware block-slot limit.
    BlockSlots,
    /// The block is not launchable at all on this architecture.
    NotLaunchable,
}

impl fmt::Display for OccupancyLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OccupancyLimit::Threads => "threads",
            OccupancyLimit::Registers => "registers",
            OccupancyLimit::SharedMemory => "shared memory",
            OccupancyLimit::BlockSlots => "block slots",
            OccupancyLimit::NotLaunchable => "not launchable",
        };
        f.write_str(s)
    }
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM (0 if not launchable).
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps_per_sm: u32,
    /// `active_warps / max_warps`, in 0..=1.
    pub fraction: f64,
    /// The binding resource.
    pub limited_by: OccupancyLimit,
}

impl Occupancy {
    /// Computes occupancy of `block` on `arch`.
    ///
    /// ```
    /// use bolt_gpu_sim::{GpuArch, BlockResources, Occupancy};
    /// let t4 = GpuArch::tesla_t4();
    /// let occ = Occupancy::compute(&t4, BlockResources::new(256, 64, 32 * 1024));
    /// assert_eq!(occ.blocks_per_sm, 2); // smem-limited: 64 KiB / 32 KiB
    /// ```
    pub fn compute(arch: &GpuArch, block: BlockResources) -> Occupancy {
        if block.threads == 0
            || block.threads > arch.max_threads_per_block
            || block.regs_per_thread > arch.max_regs_per_thread
            || block.smem_bytes > arch.max_smem_per_block
        {
            return Occupancy {
                blocks_per_sm: 0,
                active_warps_per_sm: 0,
                fraction: 0.0,
                limited_by: OccupancyLimit::NotLaunchable,
            };
        }

        let warps_per_block = block.threads.div_ceil(arch.warp_size);
        // Registers allocate at warp granularity with 256-register rounding,
        // like the real allocator; we keep the simpler per-block product.
        let regs_per_block = block.threads * block.regs_per_thread.max(16);

        let by_threads = arch.max_threads_per_sm / block.threads;
        let by_regs = arch
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let by_smem = arch
            .smem_per_sm
            .checked_div(block.smem_bytes)
            .unwrap_or(u32::MAX);
        let by_slots = arch.max_blocks_per_sm;

        let blocks = by_threads.min(by_regs).min(by_smem).min(by_slots);
        let limited_by = if blocks == 0 {
            // One of the per-block limits exceeds the SM: distinguish which.
            if by_regs == 0 {
                OccupancyLimit::Registers
            } else if by_smem == 0 {
                OccupancyLimit::SharedMemory
            } else {
                OccupancyLimit::Threads
            }
        } else if blocks == by_threads
            && by_threads <= by_regs
            && by_threads <= by_smem
            && by_threads <= by_slots
        {
            OccupancyLimit::Threads
        } else if blocks == by_regs && by_regs <= by_smem && by_regs <= by_slots {
            OccupancyLimit::Registers
        } else if blocks == by_smem && by_smem <= by_slots {
            OccupancyLimit::SharedMemory
        } else {
            OccupancyLimit::BlockSlots
        };

        let active_warps = blocks * warps_per_block;
        Occupancy {
            blocks_per_sm: blocks,
            active_warps_per_sm: active_warps,
            fraction: active_warps as f64 / arch.max_warps_per_sm() as f64,
            limited_by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn thread_limited() {
        // 256 threads, tiny regs/smem: T4 allows 1024 threads/SM -> 4 blocks.
        let occ = Occupancy::compute(&t4(), BlockResources::new(256, 32, 1024));
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.active_warps_per_sm, 32);
        assert_eq!(occ.fraction, 1.0);
        assert_eq!(occ.limited_by, OccupancyLimit::Threads);
    }

    #[test]
    fn register_limited() {
        // 256 threads * 128 regs = 32768 regs/block; 65536/32768 = 2 blocks.
        let occ = Occupancy::compute(&t4(), BlockResources::new(256, 128, 1024));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
        assert_eq!(occ.fraction, 0.5);
    }

    #[test]
    fn smem_limited() {
        let occ = Occupancy::compute(&t4(), BlockResources::new(128, 32, 48 * 1024));
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn block_slot_limited() {
        // Tiny blocks: 32 threads each; 1024/32 = 32 > 16 slot limit.
        let occ = Occupancy::compute(&t4(), BlockResources::new(32, 16, 0));
        assert_eq!(occ.blocks_per_sm, 16);
        assert_eq!(occ.limited_by, OccupancyLimit::BlockSlots);
    }

    #[test]
    fn not_launchable() {
        let too_many_threads = Occupancy::compute(&t4(), BlockResources::new(2048, 32, 0));
        assert_eq!(too_many_threads.limited_by, OccupancyLimit::NotLaunchable);
        assert_eq!(too_many_threads.blocks_per_sm, 0);
        let too_much_smem = Occupancy::compute(&t4(), BlockResources::new(128, 32, 128 * 1024));
        assert_eq!(too_much_smem.limited_by, OccupancyLimit::NotLaunchable);
        let too_many_regs = Occupancy::compute(&t4(), BlockResources::new(128, 300, 0));
        assert_eq!(too_many_regs.limited_by, OccupancyLimit::NotLaunchable);
    }

    #[test]
    fn register_floor_is_applied() {
        // regs_per_thread below 16 is allocated as 16.
        let a = Occupancy::compute(&t4(), BlockResources::new(1024, 1, 0));
        let b = Occupancy::compute(&t4(), BlockResources::new(1024, 16, 0));
        assert_eq!(a.blocks_per_sm, b.blocks_per_sm);
    }
}
