//! Regression test for the autotune-cache save path: `save_cache` must
//! replace the file atomically (write a sibling temp file, then rename),
//! so a reader that races a writer either sees the previous complete
//! cache or the new complete cache — never a torn, partially-written
//! file that fails to parse.

use bolt::BoltProfiler;
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::GpuArch;
use bolt_tensor::DType;

#[test]
fn concurrent_save_and_load_never_observe_a_torn_cache() {
    let arch = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&arch, 8);
    let ep = Epilogue::linear(DType::F16);
    for i in 0..4 {
        profiler
            .profile_gemm(&GemmProblem::fp16(64 << i, 64, 64), &ep)
            .expect("workload profiles");
    }

    let dir = std::env::temp_dir().join(format!("bolt-cache-race-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.tune");
    profiler.save_cache(&path).unwrap();
    let expected = BoltProfiler::new(&arch, 8).load_cache(&path).unwrap();
    assert_eq!(expected, 4);

    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| {
            for _ in 0..200 {
                profiler.save_cache(&path).unwrap();
            }
        });
        for _ in 0..2 {
            scope.spawn(|_| {
                for _ in 0..200 {
                    let fresh = BoltProfiler::new(&arch, 8);
                    let n = fresh
                        .load_cache(&path)
                        .expect("a racing load must never see a torn file");
                    assert_eq!(n, expected, "load observed a partially-written cache");
                }
            });
        }
    })
    .unwrap();

    // Every staged temp file was renamed into place or cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|name| name != "cache.tune")
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
