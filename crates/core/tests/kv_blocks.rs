//! Deterministic unit tests for the paged block-KV allocator (ISSUE 10
//! tentpole): block-table growth and release, typed capacity errors,
//! budget exhaustion, and memory-pressure withholding. These are the
//! governor's mechanical invariants; the serving-layer policy on top
//! (watermarks, preemption) is tested in `bolt-serve`.

use bolt::{BoltError, KvArena, KvSpec};

fn spec() -> KvSpec {
    KvSpec {
        layers: 2,
        kv_dim: 8,
        max_seq: 64,
        block_rows: 4,
    }
}

#[test]
fn block_table_grows_one_block_at_a_time() {
    let spec = spec();
    let arena = KvArena::new(spec, 16);
    let mut ws = arena.lease();
    assert_eq!(ws.block_count(), 0);
    assert_eq!(ws.reserved_rows(), 0);

    for rows in 1..=13 {
        arena.reserve(&mut ws, rows).expect("under budget");
        assert_eq!(ws.block_count(), spec.blocks_for(rows), "rows {rows}");
        assert_eq!(
            ws.reserved_rows(),
            spec.blocks_for(rows) * spec.block_rows,
            "coverage is block-granular"
        );
    }
    assert_eq!(arena.in_use_blocks(), spec.blocks_for(13));

    // Shrinking requests are no-ops: reserve never gives blocks back.
    arena.reserve(&mut ws, 2).expect("already covered");
    assert_eq!(ws.block_count(), spec.blocks_for(13));
}

#[test]
fn writes_and_reads_land_in_the_right_block() {
    let spec = spec();
    let arena = KvArena::new(spec, 16);
    let mut ws = arena.lease();
    arena.reserve(&mut ws, 11).expect("under budget");

    // Distinct fill per (layer, position) so cross-block reads expose
    // any offset mistake.
    for pos in 0..11 {
        for layer in 0..spec.layers {
            let k = vec![(layer * 100 + pos) as f32; spec.kv_dim];
            let v = vec![-((layer * 100 + pos) as f32); spec.kv_dim];
            ws.write_row(layer, pos, &k, &v).expect("reserved row");
        }
    }
    ws.commit(11).expect("reserved commit");

    for layer in 0..spec.layers {
        let chunks = ws.key_chunks(layer, 11).expect("committed read");
        assert_eq!(chunks.len(), spec.blocks_for(11), "one chunk per block");
        assert_eq!(
            chunks.iter().map(|c| c.len()).sum::<usize>(),
            11 * spec.kv_dim,
            "chunks concatenate to exactly n rows"
        );
        let mut pos = 0;
        for chunk in &chunks {
            for row in chunk.chunks(spec.kv_dim) {
                assert!(row.iter().all(|&x| x == (layer * 100 + pos) as f32));
                pos += 1;
            }
        }
        let vals = ws.value_chunks(layer, 11).expect("committed read");
        let mut pos = 0;
        for chunk in &vals {
            for row in chunk.chunks(spec.kv_dim) {
                assert!(row.iter().all(|&x| x == -((layer * 100 + pos) as f32)));
                pos += 1;
            }
        }
    }
}

#[test]
fn capacity_misuse_is_a_typed_error_not_a_panic() {
    let spec = spec();
    let arena = KvArena::new(spec, 16);
    let mut ws = arena.lease();
    arena.reserve(&mut ws, 4).expect("one block");

    let k = vec![0.0f32; spec.kv_dim];
    // Write past the reserved table.
    match ws.write_row(0, 4, &k, &k) {
        Err(BoltError::KvCapacity {
            pos: 4,
            reserved: 4,
            ..
        }) => {}
        other => panic!("expected KvCapacity, got {other:?}"),
    }
    // Commit past the reserved table.
    assert!(matches!(ws.commit(5), Err(BoltError::KvCapacity { .. })));
    // Read past the reserved table.
    assert!(matches!(
        ws.key_chunks(0, 5),
        Err(BoltError::KvCapacity { .. })
    ));
    // Reserve past the context capacity.
    assert!(matches!(
        arena.reserve(&mut ws, spec.max_seq + 1),
        Err(BoltError::KvCapacity { .. })
    ));
}

#[test]
fn exhaustion_and_release_round_trip() {
    let spec = spec();
    let arena = KvArena::new(spec, 3);
    let mut a = arena.lease();
    let mut b = arena.lease();
    arena.reserve(&mut a, 2 * spec.block_rows).expect("2 of 3");
    arena.reserve(&mut b, spec.block_rows).expect("3 of 3");
    assert_eq!(arena.free_blocks(), 0);

    // Pool dry: the next reservation fails with full accounting, and
    // blocks acquired so far stay attached.
    match arena.reserve(&mut b, 2 * spec.block_rows) {
        Err(BoltError::KvExhausted {
            needed: 1,
            in_use: 3,
            budget: 3,
            withheld: 0,
        }) => {}
        other => panic!("expected KvExhausted, got {other:?}"),
    }
    assert_eq!(b.block_count(), 1, "partial reservations keep their blocks");

    // Releasing the victim frees capacity; the retry takes only the
    // remainder, from the free list.
    arena.release(a);
    assert_eq!(arena.free_blocks(), 2);
    let fresh = arena.fresh_allocations();
    arena
        .reserve(&mut b, 2 * spec.block_rows)
        .expect("freed capacity");
    assert_eq!(
        arena.fresh_allocations(),
        fresh,
        "retry reuses freed blocks"
    );
    assert_eq!(arena.in_use_blocks(), 2);
    arena.release(b);
    assert_eq!(arena.in_use_blocks(), 0);
    assert_eq!(arena.free_list_len(), 3, "every materialized block pooled");
    assert_eq!(
        arena.resident_bytes(),
        3 * spec.block_bytes(),
        "resident bytes track materialized blocks, in use or free"
    );
}

#[test]
fn withheld_blocks_shrink_the_usable_pool_without_touching_live_state() {
    let spec = spec();
    let arena = KvArena::new(spec, 4);
    let mut ws = arena.lease();
    arena.reserve(&mut ws, 2 * spec.block_rows).expect("2 of 4");

    arena.set_withheld(2);
    assert_eq!(arena.free_blocks(), 0, "withheld blocks are unusable");
    assert!(matches!(
        arena.reserve(&mut ws, 3 * spec.block_rows),
        Err(BoltError::KvExhausted { withheld: 2, .. })
    ));
    // Live blocks are untouched: reads still work.
    assert!(ws.key_chunks(0, 2 * spec.block_rows).is_ok());

    // Pressure lifting restores the full budget.
    arena.set_withheld(0);
    arena
        .reserve(&mut ws, 3 * spec.block_rows)
        .expect("pressure lifted");
    arena.release(ws);
}
