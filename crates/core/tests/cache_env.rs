//! The `BOLT_TUNE_CACHE` environment variable.
//!
//! This lives in its own test binary on purpose: `cargo test` runs tests
//! of one binary on parallel threads, and process environment is global —
//! a single-test binary is the only way to mutate an env var without
//! racing unrelated tests.

use bolt::{BoltCompiler, BoltConfig};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType};

fn mlp() -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[64, 128]);
    let h = b.dense_bias(x, 256, "fc1");
    let r = b.activation(h, Activation::ReLU, "relu");
    let o = b.dense_bias(r, 64, "fc2");
    b.finish(&[o])
}

#[test]
fn env_var_cache_gives_second_compiler_zero_measurements() {
    let dir = std::env::temp_dir().join("bolt_cache_env_test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{}.tune", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("BOLT_TUNE_CACHE", &path);

    let graph = mlp();

    // Cold session: no config cache path — the env var alone routes the
    // cache — measurements happen and the file appears.
    let first = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::default());
    assert_eq!(first.tune_cache_path().as_deref(), Some(path.as_path()));
    let cold = first.compile(&graph).unwrap();
    assert!(cold.tuning.measurements > 0);
    assert!(path.exists(), "compile must write the env-var cache");

    // Second session (fresh compiler, nothing shared but the file):
    // zero measurements, zero tuning time, identical kernels.
    let second = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::default());
    let warm = second.compile(&graph).unwrap();
    assert_eq!(
        warm.tuning.measurements, 0,
        "env-var cache must fully warm the profiler"
    );
    assert_eq!(warm.tuning.tuning_seconds, 0.0);
    for (a, b) in cold.steps().iter().zip(warm.steps().iter()) {
        assert_eq!(a.name, b.name);
    }

    // An explicit config path still wins over the env var.
    let override_path = dir.join(format!("{}_override.tune", std::process::id()));
    let config = BoltConfig {
        cache_path: Some(override_path.clone()),
        ..BoltConfig::default()
    };
    let third = BoltCompiler::new(GpuArch::tesla_t4(), config);
    assert_eq!(
        third.tune_cache_path().as_deref(),
        Some(override_path.as_path())
    );

    std::env::remove_var("BOLT_TUNE_CACHE");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&override_path);
}
