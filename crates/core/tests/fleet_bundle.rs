//! Cross-architecture cache behavior: the portable tune-bundle flow a
//! heterogeneous fleet depends on.
//!
//! * A shard tuned for one architecture loaded into another's profiler
//!   is rejected with a **typed** mismatch, not silently ignored.
//! * Packing per-arch shards into a bundle keeps the faster winner when
//!   shards overlap, and the bundle round-trips bit-identically.
//! * A compiler of *any* arch booted from the packed bundle compiles
//!   with zero measurements — `tuning_seconds == 0` — while per-arch
//!   winners differ where the simulator says they should and functional
//!   outputs stay bit-identical across architectures.

use bolt::{arch_fingerprint, BoltCompiler, BoltConfig, BoltError, TuneBundle};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::{Activation, DType, Tensor};

fn mlp() -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[64, 128]);
    let h = b.dense_bias(x, 256, "fc1");
    let r = b.activation(h, Activation::ReLU, "relu");
    let o = b.dense_bias(r, 64, "fc2");
    b.finish(&[o])
}

/// A large-GEMM model where T4 and A100 tuning guidelines genuinely
/// disagree (bigger SM arrays want bigger tiles / more stages).
fn wide_gemm() -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[1024, 1024]);
    let h = b.dense_bias(x, 4096, "ffn");
    let o = b.dense_bias(h, 1024, "head");
    b.finish(&[o])
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bolt_fleet_bundle_test");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{}_{name}", std::process::id()))
}

fn tuned_compiler(arch: GpuArch) -> BoltCompiler {
    BoltCompiler::new(
        arch,
        BoltConfig {
            profiler_candidates: 12,
            ..BoltConfig::default()
        },
    )
}

#[test]
fn wrong_arch_shard_is_rejected_with_typed_mismatch() {
    let shard_path = tmp("v100.tune");
    let v100 = tuned_compiler(GpuArch::tesla_v100());
    v100.compile(&mlp()).unwrap();
    v100.profiler().save_cache(&shard_path).unwrap();

    // Strict single-shard load into a T4 profiler: typed rejection.
    let t4 = tuned_compiler(GpuArch::tesla_t4());
    match t4.profiler().load_shard_strict(&shard_path) {
        Err(BoltError::CacheArchMismatch {
            expected, found, ..
        }) => {
            assert!(
                expected.contains("Tesla T4"),
                "expected names T4: {expected}"
            );
            assert!(found.contains("Tesla V100"), "found names V100: {found}");
        }
        other => panic!("expected CacheArchMismatch, got {other:?}"),
    }
    let after_reject = t4.compile(&mlp()).unwrap();
    assert!(
        after_reject.tuning.measurements > 0,
        "nothing may be merged from a wrong-arch shard: T4 must still tune"
    );

    // A bundle holding only the V100 shard is just as loudly rejected,
    // and the error says what the bundle does contain.
    let bundle_path = tmp("v100_only.bundle");
    let mut bundle = TuneBundle::new();
    bundle.absorb_bundle(TuneBundle::read_any(&shard_path).unwrap());
    bundle.write(&bundle_path).unwrap();
    match t4.profiler().load_bundle(&bundle_path) {
        Err(BoltError::CacheArchMismatch { found, .. }) => {
            assert!(found.contains("Tesla V100"), "{found}");
        }
        other => panic!("expected CacheArchMismatch, got {other:?}"),
    }

    let _ = std::fs::remove_file(&shard_path);
    let _ = std::fs::remove_file(&bundle_path);
}

#[test]
fn missing_bundle_is_a_typed_load_error() {
    let t4 = tuned_compiler(GpuArch::tesla_t4());
    match t4.profiler().load_bundle(&tmp("nonexistent.bundle")) {
        Err(BoltError::CacheLoad { reason, .. }) => {
            assert!(!reason.is_empty());
        }
        other => panic!("expected CacheLoad, got {other:?}"),
    }
}

#[test]
fn packed_bundle_cold_boots_every_arch_with_zero_tuning_seconds() {
    let bundle_path = tmp("fleet.bundle");
    let graph = wide_gemm();

    // Tune once per architecture and pack the shards into one bundle —
    // the `bolt-tune pack` flow, via the library API.
    let mut bundle = TuneBundle::new();
    for arch in [GpuArch::tesla_t4(), GpuArch::tesla_v100(), GpuArch::a100()] {
        let compiler = tuned_compiler(arch);
        let tuned = compiler.compile(&graph).unwrap();
        assert!(tuned.tuning.measurements > 0, "cold tuning really measured");
        bundle.absorb(compiler.profiler().export_shard());
    }
    bundle.write(&bundle_path).unwrap();
    assert_eq!(bundle.shards().len(), 3);

    // Every arch boots warm from the same shipped bundle.
    for arch in [GpuArch::tesla_t4(), GpuArch::tesla_v100(), GpuArch::a100()] {
        let name = arch.name.clone();
        let warm = BoltCompiler::new(
            arch,
            BoltConfig {
                profiler_candidates: 12,
                bundle_path: Some(bundle_path.clone()),
                ..BoltConfig::default()
            },
        );
        let model = warm.compile(&graph).unwrap();
        assert_eq!(
            model.tuning.measurements, 0,
            "{name}: bundle boot must not measure"
        );
        assert_eq!(
            model.tuning.tuning_seconds, 0.0,
            "{name}: bundle boot must report zero tuning seconds"
        );
    }
    let _ = std::fs::remove_file(&bundle_path);
}

/// Parses a saved cache file into `(workload key, winner config)` pairs,
/// dropping the measured time and candidate count so configs can be
/// compared across architectures.
fn winner_configs(path: &std::path::Path) -> std::collections::BTreeMap<String, String> {
    let text = std::fs::read_to_string(path).unwrap();
    text.lines()
        .filter(|l| l.contains(" | "))
        .map(|line| {
            let (key, tail) = line.rsplit_once(" | ").unwrap();
            let fields: Vec<&str> = tail.split_whitespace().collect();
            // last two fields are time-bits and candidate count
            (key.to_string(), fields[..fields.len() - 2].join(" "))
        })
        .collect()
}

#[test]
fn winners_differ_across_arches_but_outputs_are_bit_identical() {
    let graph = wide_gemm();
    let t4 = tuned_compiler(GpuArch::tesla_t4());
    let a100 = tuned_compiler(GpuArch::a100());
    t4.compile(&graph).unwrap();
    a100.compile(&graph).unwrap();

    // The tuned winners are arch-specific where the simulator says they
    // should be: the caches do not carry identical configs for identical
    // workloads across a 40-SM Turing and a 108-SM Ampere.
    let t4_path = tmp("winners_t4.tune");
    let a100_path = tmp("winners_a100.tune");
    t4.profiler().save_cache(&t4_path).unwrap();
    a100.profiler().save_cache(&a100_path).unwrap();
    let t4_winners = winner_configs(&t4_path);
    let a100_winners = winner_configs(&a100_path);
    let t4_keys: Vec<&String> = t4_winners.keys().collect();
    let a100_keys: Vec<&String> = a100_winners.keys().collect();
    assert_eq!(t4_keys, a100_keys, "same workload set on both arches");
    assert!(
        t4_winners.iter().any(|(k, cfg)| &a100_winners[k] != cfg),
        "per-arch tuning must pick different winners on these shapes"
    );
    let _ = std::fs::remove_file(&t4_path);
    let _ = std::fs::remove_file(&a100_path);

    // Functional outputs are independent of the tuned configs: the same
    // input produces bit-identical results on both architectures.
    let real = mlp();
    let t4_model = t4.compile(&real).unwrap();
    let a100_model = a100.compile(&real).unwrap();
    let input = Tensor::randn(&[64, 128], DType::F16, 7);
    let out_t4 = t4_model.run(std::slice::from_ref(&input)).unwrap();
    let out_a100 = a100_model.run(&[input]).unwrap();
    assert_eq!(
        out_t4[0].max_abs_diff(&out_a100[0]).unwrap(),
        0.0,
        "outputs must stay bit-identical across architectures"
    );
}

#[test]
fn pack_merge_prefers_faster_winner_from_overlapping_sessions() {
    // Two T4 sessions tune overlapping workload sets with different
    // candidate budgets; packing both must keep the better (faster)
    // winner per key and the union of keys.
    let narrow = BoltCompiler::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            profiler_candidates: 2,
            ..BoltConfig::default()
        },
    );
    let wide = BoltCompiler::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            profiler_candidates: 24,
            ..BoltConfig::default()
        },
    );
    let graph = wide_gemm();
    narrow.compile(&graph).unwrap();
    wide.compile(&graph).unwrap();
    wide.compile(&mlp()).unwrap(); // extra keys only in `wide`

    let mut packed = TuneBundle::new();
    packed.absorb(narrow.profiler().export_shard());
    packed.absorb(wide.profiler().export_shard());
    assert_eq!(packed.shards().len(), 1, "same arch: one merged shard");
    let merged = packed
        .shard_for(arch_fingerprint(&GpuArch::tesla_t4()))
        .unwrap();
    assert_eq!(
        merged.len(),
        wide.profiler().export_shard().len(),
        "merged shard holds the union of keys"
    );

    // A fresh profiler booted from the merged bundle resolves the wide
    // session's winners (they are at least as fast as the narrow ones).
    let bundle_path = tmp("merged.bundle");
    packed.write(&bundle_path).unwrap();
    let warm = BoltCompiler::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            profiler_candidates: 24,
            bundle_path: Some(bundle_path.clone()),
            ..BoltConfig::default()
        },
    );
    let model = warm.compile(&graph).unwrap();
    assert_eq!(model.tuning.measurements, 0);
    let wide_time: f64 = wide.compile(&graph).unwrap().time().total_us;
    let warm_time: f64 = model.time().total_us;
    assert!(
        warm_time <= wide_time * 1.0001,
        "merge kept winners at least as fast: {warm_time} vs {wide_time}"
    );
    let _ = std::fs::remove_file(&bundle_path);
}
