//! Integration tests for the batched parallel profiling engine: shared
//! profilers under thread contention, pruning/parallelism winner
//! invariance, and the versioned on-disk autotune cache.

use proptest::prelude::*;

use bolt::cache::arch_fingerprint;
use bolt::{BoltCompiler, BoltConfig, BoltProfiler, ProfileTask};
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, GraphBuilder};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

fn t4() -> GpuArch {
    GpuArch::tesla_t4()
}

/// Unique scratch path per test so parallel test threads never collide.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bolt_profiling_engine_tests");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{}_{name}", std::process::id()))
}

fn mlp() -> Graph {
    let mut b = GraphBuilder::new(DType::F16);
    let x = b.input(&[64, 128]);
    let h = b.dense_bias(x, 256, "fc1");
    let r = b.activation(h, Activation::ReLU, "relu");
    let o = b.dense_bias(r, 64, "fc2");
    b.finish(&[o])
}

fn mixed_tasks() -> Vec<ProfileTask> {
    let ep = Epilogue::linear(DType::F16);
    vec![
        ProfileTask::Gemm {
            problem: GemmProblem::fp16(1280, 3072, 768),
            epilogue: ep,
        },
        ProfileTask::Gemm {
            problem: GemmProblem::fp16(512, 512, 512),
            epilogue: ep,
        },
        ProfileTask::Gemm {
            problem: GemmProblem::fp16(128, 768, 3072),
            epilogue: Epilogue::bias_activation(Activation::Gelu, DType::F16),
        },
        ProfileTask::Conv2d {
            problem: Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
            epilogue: ep,
            element: DType::F16,
        },
        ProfileTask::Conv2d {
            problem: Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
            epilogue: ep,
            element: DType::Bf16, // same geometry, distinct dtype => distinct workload
        },
        ProfileTask::Conv2d {
            problem: Conv2dProblem::new(8, 28, 28, 46, 32, 3, 3, (1, 1), (1, 1)),
            epilogue: ep,
            element: DType::F16,
        },
    ]
}

#[test]
fn shared_profiler_under_contention_never_duplicates_measurements() {
    let profiler = BoltProfiler::new(&t4(), 20);
    let tasks = mixed_tasks();

    // Eight threads race over the same overlapping workload set.
    let results: Vec<Vec<_>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let profiler = &profiler;
                let tasks = &tasks;
                s.spawn(move || {
                    tasks
                        .iter()
                        .map(|task| profiler.profile_task(task))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread joins"))
            .collect()
    });

    for later in &results[1..] {
        assert_eq!(
            later, &results[0],
            "all threads must observe identical winners"
        );
    }
    let stats = profiler.stats();
    assert_eq!(
        stats.workloads,
        tasks.len(),
        "each unique workload resolved exactly once"
    );
    let enumerated: usize = results[0]
        .iter()
        .map(|p| p.expect("profiles").candidates)
        .sum();
    assert_eq!(
        stats.measurements + stats.pruned,
        enumerated,
        "duplicate measurements under contention"
    );
    assert_eq!(stats.cache_hits, 8 * tasks.len() - tasks.len());
}

#[test]
fn concurrent_batches_resolve_each_workload_once() {
    let profiler = BoltProfiler::new(&t4(), 20);
    let tasks = mixed_tasks();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let profiler = &profiler;
            let tasks = &tasks;
            s.spawn(move || profiler.profile_batch(tasks));
        }
    });
    assert_eq!(profiler.stats().workloads, tasks.len());
}

fn gemm_task() -> impl Strategy<Value = ProfileTask> {
    (
        prop::sample::select(vec![64usize, 128, 512, 1280, 1536, 4096]),
        prop::sample::select(vec![16usize, 64, 768, 3072]),
        prop::sample::select(vec![64usize, 256, 768, 4096]),
        any::<bool>(),
    )
        .prop_map(|(m, n, k, bias)| ProfileTask::Gemm {
            problem: GemmProblem::fp16(m, n, k),
            epilogue: if bias {
                Epilogue::bias_activation(Activation::ReLU, DType::F16)
            } else {
                Epilogue::linear(DType::F16)
            },
        })
}

fn conv_task() -> impl Strategy<Value = ProfileTask> {
    (
        prop::sample::select(vec![1usize, 8, 32]),
        prop::sample::select(vec![14usize, 28, 56]),
        prop::sample::select(vec![3usize, 46, 64, 128]),
        prop::sample::select(vec![32usize, 64]),
        prop::sample::select(vec![DType::F16, DType::Bf16]),
    )
        .prop_map(|(n, hw, c, k, element)| ProfileTask::Conv2d {
            problem: Conv2dProblem::new(n, hw, hw, c, k, 3, 3, (1, 1), (1, 1)),
            epilogue: Epilogue::linear(DType::F16),
            element,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The engine's core soundness contract: batched parallel profiling
    // with pruning selects bit-identical winners to an exhaustive,
    // sequential, pruning-free search — for any workload mix.
    #[test]
    fn pruned_parallel_matches_exhaustive_sequential(
        tasks in prop::collection::vec(prop_oneof![gemm_task(), conv_task()], 1..6),
    ) {
        let mut exhaustive = BoltProfiler::new(&t4(), 24);
        exhaustive.set_pruning(false);
        let sequential: Vec<_> = tasks.iter().map(|t| exhaustive.profile_task(t)).collect();

        let engine = BoltProfiler::new(&t4(), 24);
        engine.profile_batch(&tasks);
        let batched: Vec<_> = tasks.iter().map(|t| engine.profile_task(t)).collect();

        prop_assert_eq!(&batched, &sequential);
        prop_assert!(
            engine.stats().measurements <= exhaustive.stats().measurements,
            "pruning may only reduce measurements"
        );
    }
}

#[test]
fn corrupt_cache_is_quarantined_and_rebuilt() {
    let path = scratch("corrupt.tune");
    let mut corrupt_name = path.file_name().unwrap().to_os_string();
    corrupt_name.push(".corrupt");
    let corrupt = path.with_file_name(corrupt_name);
    let _ = std::fs::remove_file(&corrupt);
    std::fs::write(&path, "total garbage\nthis is not a cache\n").unwrap();

    // Garbage is quarantined, not propagated: the load reports zero
    // entries, the original path is freed, the evidence moves aside.
    let profiler = BoltProfiler::new(&t4(), 20);
    assert_eq!(profiler.load_cache(&path).unwrap(), 0);
    assert!(!path.exists(), "corrupt file is renamed away");
    assert!(corrupt.exists(), "evidence preserved as *.corrupt");

    // A bad entry under a valid header is also corrupt.
    let header = format!("bolt-tune-cache v2 arch={:016x}\n", arch_fingerprint(&t4()));
    std::fs::write(&path, format!("{header}gemm 1 2 not-a-number\n")).unwrap();
    assert_eq!(profiler.load_cache(&path).unwrap(), 0);
    assert!(!path.exists());

    // A truncated file (torn write: footer missing) is caught too.
    let ep = Epilogue::linear(DType::F16);
    profiler
        .profile_gemm(&GemmProblem::fp16(1280, 3072, 768), &ep)
        .unwrap();
    profiler.save_cache(&path).unwrap();
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert_eq!(
        profiler.load_cache(&path).unwrap(),
        0,
        "torn write detected"
    );
    assert!(!path.exists());

    // The compiler warm-starts through the quarantine, compiles cold,
    // and its save rebuilds a clean cache at the original path.
    std::fs::write(&path, "total garbage\n").unwrap();
    let config = BoltConfig {
        cache_path: Some(path.clone()),
        ..BoltConfig::default()
    };
    let model = BoltCompiler::new(t4(), config).compile(&mlp()).unwrap();
    assert!(model.tuning.measurements > 0, "cold compile must measure");
    assert!(path.exists(), "cache rebuilt on save after quarantine");
    let rebuilt = BoltProfiler::new(&t4(), 20);
    assert!(
        rebuilt.load_cache(&path).unwrap() > 0,
        "rebuilt cache is valid"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&corrupt);
}

#[test]
fn version_mismatched_cache_is_skipped_without_error() {
    let path = scratch("version.tune");
    let header = format!(
        "bolt-tune-cache v999 arch={:016x}\n",
        arch_fingerprint(&t4())
    );
    std::fs::write(&path, header).unwrap();
    let profiler = BoltProfiler::new(&t4(), 20);
    assert_eq!(
        profiler.load_cache(&path).unwrap(),
        0,
        "future schema loads zero entries"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn arch_mismatched_cache_is_skipped_without_error() {
    let path = scratch("arch.tune");
    let ep = Epilogue::linear(DType::F16);
    let problem = GemmProblem::fp16(1280, 3072, 768);

    let on_t4 = BoltProfiler::new(&t4(), 20);
    on_t4.profile_gemm(&problem, &ep).unwrap();
    on_t4.save_cache(&path).unwrap();

    let on_v100 = BoltProfiler::new(&GpuArch::tesla_v100(), 20);
    assert_eq!(
        on_v100.load_cache(&path).unwrap(),
        0,
        "foreign-arch cache must be ignored"
    );
    on_v100.profile_gemm(&problem, &ep).unwrap();
    assert!(
        on_v100.stats().measurements > 0,
        "V100 must re-measure, not reuse T4 configs"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_path_config_warms_a_fresh_compiler_to_zero_measurements() {
    let path = scratch("roundtrip.tune");
    let _ = std::fs::remove_file(&path);
    let config = BoltConfig {
        cache_path: Some(path.clone()),
        ..BoltConfig::default()
    };
    let graph = mlp();

    let first = BoltCompiler::new(t4(), config.clone())
        .compile(&graph)
        .unwrap();
    assert!(first.tuning.measurements > 0);
    assert!(first.tuning.tuning_seconds > 0.0);
    assert!(path.exists(), "compile must persist the cache");

    // A fresh compiler instance (fresh process in spirit: nothing shared
    // but the file) starts fully warm.
    let second = BoltCompiler::new(t4(), config).compile(&graph).unwrap();
    assert_eq!(
        second.tuning.measurements, 0,
        "warm compile must not measure"
    );
    assert_eq!(second.tuning.pruned, 0);
    assert_eq!(
        second.tuning.tuning_seconds, 0.0,
        "warm compile must cost zero tuning time"
    );
    assert_eq!(second.steps().len(), first.steps().len());
    for (a, b) in first.steps().iter().zip(second.steps().iter()) {
        assert_eq!(a.name, b.name, "warm compile must pick identical kernels");
    }
    let _ = std::fs::remove_file(&path);
}
