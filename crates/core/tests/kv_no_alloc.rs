//! The KV-workspace liveness guarantee (ISSUE 9 tentpole): a sequence's
//! attention cache is **one** allocation for its whole lifetime, grown
//! through in-place row writes — never reallocated per decode step —
//! and a warm [`bolt::KvArena`] serves admissions entirely from
//! recycled workspaces.
//!
//! The global [`bolt_tensor::alloc_count`] counter observes every fresh
//! tensor backing-buffer creation; in-place `data_mut` writes are
//! invisible to it. This file deliberately holds a single `#[test]`:
//! the counter is process-global, and a sibling test allocating tensors
//! concurrently would pollute the deltas.

use bolt::{KvArena, KvSpec, KvWorkspace};
use bolt_tensor::alloc_count;

fn deltas_during(f: impl FnOnce()) -> u64 {
    let allocs = alloc_count();
    f();
    alloc_count() - allocs
}

#[test]
fn decode_steps_never_reallocate_kv() {
    let spec = KvSpec {
        layers: 4,
        kv_dim: 32,
        max_seq: 96,
    };

    // One allocation per workspace, at construction, and none after:
    // a full sequence of decode-step appends writes in place.
    let mut ws = KvWorkspace::new(spec);
    let k = vec![0.25f32; spec.kv_dim];
    let v = vec![0.5f32; spec.kv_dim];
    let appends = deltas_during(|| {
        for pos in 0..spec.max_seq {
            for layer in 0..spec.layers {
                ws.write_row(layer, pos, &k, &v);
            }
            ws.commit(pos + 1);
        }
    });
    assert_eq!(appends, 0, "decode-step KV appends must not allocate");
    assert_eq!(ws.len(), spec.max_seq);
    assert_eq!(ws.keys(1, 3).len(), 3 * spec.kv_dim);
    assert!(ws.keys(1, 3).iter().all(|&x| x == 0.25));
    assert!(ws.values(3, spec.max_seq).iter().all(|&x| x == 0.5));

    // A warm arena admits new sequences allocation-free: retire the
    // sequence, lease again, decode again — zero fresh tensors.
    let arena = KvArena::new(spec, 8);
    arena.recycle(ws);
    let steady_state = deltas_during(|| {
        for round in 0..5 {
            let mut ws = arena.lease();
            assert!(ws.is_empty(), "recycled workspaces start blank");
            for pos in 0..8 {
                for layer in 0..spec.layers {
                    ws.write_row(layer, pos, &k, &v);
                }
                ws.commit(pos + 1);
            }
            assert_eq!(ws.len(), 8, "round {round}");
            arena.recycle(ws);
        }
    });
    assert_eq!(steady_state, 0, "warm arena lease/decode/recycle cycles");
    assert_eq!(arena.reuses(), 5);
    assert_eq!(arena.fresh_allocations(), 0, "the pool seeded every lease");
}
