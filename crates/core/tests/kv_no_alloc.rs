//! The KV-allocation guarantee under paging (ISSUE 9 tentpole, paged
//! by ISSUE 10): a sequence's attention cache grows one fixed-size
//! block at a time through in-place row writes — never reallocated per
//! decode step — and a warm [`bolt::KvArena`] block pool serves every
//! reservation from its free list.
//!
//! The global [`bolt_tensor::alloc_count`] counter observes every fresh
//! tensor backing-buffer creation; in-place `data_mut` writes are
//! invisible to it. This file deliberately holds a single `#[test]`:
//! the counter is process-global, and a sibling test allocating tensors
//! concurrently would pollute the deltas.

use bolt::{KvArena, KvSpec};
use bolt_tensor::alloc_count;

fn deltas_during(f: impl FnOnce()) -> u64 {
    let allocs = alloc_count();
    f();
    alloc_count() - allocs
}

#[test]
fn decode_steps_never_reallocate_kv() {
    let spec = KvSpec {
        layers: 4,
        kv_dim: 32,
        max_seq: 96,
        block_rows: 16,
    };
    let budget = spec.blocks_for(spec.max_seq) + 2;
    let arena = KvArena::new(spec, budget);

    // Cold pass: materialize exactly the blocks one full-context
    // sequence needs — one tensor per block, none per decode step.
    let k = vec![0.25f32; spec.kv_dim];
    let v = vec![0.5f32; spec.kv_dim];
    let mut ws = arena.lease();
    let cold = deltas_during(|| {
        for pos in 0..spec.max_seq {
            arena.reserve(&mut ws, pos + 1).expect("under budget");
            for layer in 0..spec.layers {
                ws.write_row(layer, pos, &k, &v).expect("reserved row");
            }
            ws.commit(pos + 1).expect("reserved commit");
        }
    });
    assert_eq!(
        cold,
        spec.blocks_for(spec.max_seq) as u64,
        "cold growth allocates exactly one tensor per block"
    );
    assert_eq!(ws.len(), spec.max_seq);
    let keys = ws.key_chunks(1, 3).expect("committed read");
    assert_eq!(keys.iter().map(|c| c.len()).sum::<usize>(), 3 * spec.kv_dim);
    assert!(keys.iter().all(|c| c.iter().all(|&x| x == 0.25)));
    let values = ws.value_chunks(3, spec.max_seq).expect("committed read");
    assert!(values.iter().all(|c| c.iter().all(|&x| x == 0.5)));

    // A warm pool admits new sequences allocation-free: release the
    // sequence's blocks, lease again, decode again — zero fresh
    // tensors, every reservation served from the free list.
    arena.release(ws);
    assert_eq!(arena.in_use_blocks(), 0, "release returns every block");
    let fresh_after_cold = arena.fresh_allocations();
    let steady_state = deltas_during(|| {
        for round in 0..5 {
            let mut ws = arena.lease();
            assert!(ws.is_empty(), "leased workspaces start blank");
            for pos in 0..40 {
                arena.reserve(&mut ws, pos + 1).expect("warm pool");
                for layer in 0..spec.layers {
                    ws.write_row(layer, pos, &k, &v).expect("reserved row");
                }
                ws.commit(pos + 1).expect("reserved commit");
            }
            assert_eq!(ws.len(), 40, "round {round}");
            arena.release(ws);
        }
    });
    assert_eq!(steady_state, 0, "warm pool lease/decode/release cycles");
    assert_eq!(
        arena.fresh_allocations(),
        fresh_after_cold,
        "the free list seeded every steady-state reservation"
    );
    assert_eq!(arena.reuses(), 5 * spec.blocks_for(40) as u64);
}
