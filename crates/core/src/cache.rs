//! Versioned on-disk autotune cache.
//!
//! Profiled winners survive the process: a compilation session saves its
//! tuning cache to disk and the next session (same architecture, same
//! cache schema) starts with every previously-profiled workload already
//! resolved — zero measurements, zero template generation. This is the
//! persistence half of Bolt's "sample programs are reusable across models
//! and workloads" claim (Section 3.2.2).
//!
//! # Format
//!
//! A plain-text, line-oriented format (no external serialization crates):
//!
//! ```text
//! bolt-tune-cache v2 arch=<fnv1a-64 of the architecture description>
//! gemm <problem> | <epilogue> | <winning config> <time-bits> <candidates>
//! conv <problem> <dtype> | <epilogue> | <winning config> <time-bits> <candidates>
//! checksum <fnv1a-64 of the entry lines> <entry count>
//! ```
//!
//! Floats are encoded as IEEE-754 bit patterns in hex so the round trip
//! is exact. The header carries two invalidation axes:
//!
//! * **Schema version** ([`SCHEMA_VERSION`]) — bumped whenever the entry
//!   layout changes; old files are skipped, not misparsed.
//! * **Architecture fingerprint** ([`arch_fingerprint`]) — a hash of
//!   every datasheet number of the target [`GpuArch`]. A cache tuned for
//!   one GPU (or for a re-calibrated model of the same GPU) is invalid
//!   for another: the winning configs would be stale.
//!
//! A version or architecture mismatch is *not* an error — the cache is
//! an optimization, so [`load`] warns on stderr and reports zero entries,
//! and the session re-measures and overwrites the file on save.
//!
//! # Corruption handling
//!
//! The trailing `checksum` footer covers every entry line, so a torn or
//! bit-flipped file (crash mid-write on a filesystem without atomic
//! rename, disk corruption, a truncated copy) is *detected* rather than
//! misparsed. Structural corruption — missing/mismatched footer, an
//! undecodable entry, a malformed header — does not abort the session:
//! [`load`] **quarantines** the file (renames it to `<name>.corrupt`,
//! preserving the evidence), warns on stderr, and reports zero entries.
//! The session warm-starts empty and the next save rebuilds a clean
//! cache at the original path. Only real I/O failures (permissions,
//! unreadable file) propagate as errors.

use std::io;
use std::path::Path;

use bolt_cutlass::{BiasMode, GemmConfig, GemmProblem, TileShape};
use bolt_gpu_sim::{GpuArch, Pipeline};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType, MatrixLayout};

use crate::profiler::{BoltProfiler, Epilogue2, Key, ProfiledKernel};

/// Cache schema version; bump on any change to the entry layout.
/// v2 added the `checksum` footer line.
pub const SCHEMA_VERSION: u32 = 2;

/// FNV-1a fingerprint of an architecture's full datasheet description.
///
/// Hashes every field of [`GpuArch`] — including the calibrated
/// [`bolt_gpu_sim::ModelParams`] — **by explicit label and value**, with
/// floats encoded as IEEE-754 bit patterns. Editing either the hardware
/// numbers or the model calibration invalidates caches tuned under the
/// old numbers, but a pure refactor of the struct (derive changes, field
/// reordering, a tweaked `Debug` impl) does not: the fingerprint is
/// pinned to this function, not to `#[derive(Debug)]` output. The
/// preset values are locked by a golden test below.
pub fn arch_fingerprint(arch: &GpuArch) -> u64 {
    use std::fmt::Write as _;
    let p = &arch.params;
    let mut d = String::with_capacity(640);
    let _ = write!(
        d,
        "name={};cc={}.{};sm_count={};clock_ghz={:016x};cuda_cores_per_sm={};\
         tensor_cores_per_sm={};sfu_per_sm={};fp16_tensor_tflops={:016x};\
         fp32_cuda_tflops={:016x};dram_bw_gbps={:016x};l2_bytes={};\
         smem_bw_gbps={:016x};smem_per_sm={};max_smem_per_block={};\
         regs_per_sm={};max_regs_per_thread={};max_threads_per_sm={};\
         max_threads_per_block={};max_blocks_per_sm={};warp_size={};\
         launch_overhead_us={:016x};dram_peak_fraction={:016x};\
         latency_hiding_warps={};overlap_leak={:016x};wave_tail_us={:016x};\
         sfu_ops_per_clock_per_sm={:016x}",
        arch.name,
        arch.compute_capability.0,
        arch.compute_capability.1,
        arch.sm_count,
        arch.clock_ghz.to_bits(),
        arch.cuda_cores_per_sm,
        arch.tensor_cores_per_sm,
        arch.sfu_per_sm,
        arch.fp16_tensor_tflops.to_bits(),
        arch.fp32_cuda_tflops.to_bits(),
        arch.dram_bw_gbps.to_bits(),
        arch.l2_bytes,
        arch.smem_bw_gbps.to_bits(),
        arch.smem_per_sm,
        arch.max_smem_per_block,
        arch.regs_per_sm,
        arch.max_regs_per_thread,
        arch.max_threads_per_sm,
        arch.max_threads_per_block,
        arch.max_blocks_per_sm,
        arch.warp_size,
        p.launch_overhead_us.to_bits(),
        p.dram_peak_fraction.to_bits(),
        p.latency_hiding_warps,
        p.overlap_leak.to_bits(),
        p.wave_tail_us.to_bits(),
        p.sfu_ops_per_clock_per_sm.to_bits(),
    );
    fnv1a(d.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn header(arch: &GpuArch) -> String {
    // The trailing `name=` token is advisory (diagnostics for `bolt-tune
    // inspect`); readers key off the fingerprint and ignore unknown
    // header tokens, so adding it did not bump the schema version.
    format!(
        "bolt-tune-cache v{} arch={:016x} name={}",
        SCHEMA_VERSION,
        arch_fingerprint(arch),
        arch.name
    )
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes the profiler's resolved entries to `path`, creating parent
/// directories as needed. Output is sorted, so identical caches produce
/// byte-identical files.
///
/// The write is **atomic**: the cache is staged in a uniquely-named
/// sibling temp file and `rename`d into place, so a reader (or a crash)
/// never observes a torn file — concurrent savers race benignly, with
/// the last complete rename winning. This matters once online tuning
/// saves the cache after every background compile while other
/// processes load it.
pub(crate) fn save(profiler: &BoltProfiler, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut lines: Vec<String> = profiler
        .entries()
        .iter()
        .map(|(key, kernel)| encode_entry(key, kernel))
        .collect();
    lines.sort_unstable();
    let mut out = header(profiler.arch());
    out.push('\n');
    let mut body = String::new();
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    out.push_str(&body);
    out.push_str(&footer(&body, lines.len()));
    out.push('\n');

    // Chaos: simulate a crash mid-write by truncating the staged bytes.
    // The checksum footer is what lets the next load catch this.
    if let Some(keep) = crate::faults::truncate(crate::faults::FaultSite::CacheSave, out.len()) {
        out.truncate(keep);
    }

    atomic_write(path, &out)
}

/// Stages `contents` in a uniquely-named sibling temp file and `rename`s
/// it into place: readers and crashes never observe a torn file, and
/// concurrent writers race benignly with the last complete rename
/// winning.
fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    // Unique per process *and* per call, so concurrent savers never
    // stage into the same temp file.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "bolt-tune-cache".into());
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads entries from `path` into the profiler's cache, returning the
/// number of entries merged.
///
/// * Version or architecture mismatches warn and return `Ok(0)` — the
///   file is left in place (it is valid, just not for us).
/// * Structural corruption (bad header, undecodable entry, missing or
///   mismatched `checksum` footer) **quarantines** the file: it is
///   renamed to `<name>.corrupt`, a warning is printed, and `Ok(0)` is
///   returned so the session warm-starts empty and rebuilds the cache
///   on its next save. Nothing is merged from a corrupt file — entries
///   are only installed after the whole file validates.
/// * Real I/O failures (unreadable file, permissions) propagate.
pub(crate) fn load(profiler: &BoltProfiler, path: &Path) -> io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    match parse(profiler, &text, path) {
        Ok(Parsed::Mismatch) => Ok(0),
        Ok(Parsed::Entries(entries)) => {
            let count = entries.len();
            for (key, kernel) in entries {
                profiler.insert_entry(key, kernel);
            }
            Ok(count)
        }
        Err(reason) => quarantine(path, &reason),
    }
}

enum Parsed {
    /// Valid file for a different schema version or architecture.
    Mismatch,
    /// Fully validated entries, ready to merge.
    Entries(Vec<(Key, ProfiledKernel)>),
}

/// A parsed single-shard cache header: schema version string, arch
/// fingerprint, and the advisory arch name (empty for files written
/// before the `name=` token existed). Unknown trailing tokens are
/// ignored, so the header can grow without a schema bump.
struct CacheHeader {
    version: String,
    arch: u64,
    name: String,
}

fn parse_header(head: &str) -> Result<CacheHeader, io::Error> {
    let mut tokens = head.split_whitespace();
    if tokens.next() != Some("bolt-tune-cache") {
        return Err(invalid("not a bolt tune cache"));
    }
    let version = tokens
        .next()
        .ok_or_else(|| invalid("missing cache version"))?
        .to_string();
    let arch_hex = tokens
        .next()
        .and_then(|t| t.strip_prefix("arch="))
        .ok_or_else(|| invalid("missing arch fingerprint"))?;
    let arch =
        u64::from_str_radix(arch_hex, 16).map_err(|_| invalid("malformed arch fingerprint"))?;
    // The name may contain spaces, so it is everything after `name=`.
    let name = head
        .split_once(" name=")
        .map(|(_, n)| n.trim().to_string())
        .unwrap_or_default();
    Ok(CacheHeader {
        version,
        arch,
        name,
    })
}

/// Walks the entry lines after a header, validating the `checksum`
/// footer; any `Err` means structural corruption.
fn parse_entry_block<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(Key, ProfiledKernel)>, io::Error> {
    let mut entries = Vec::new();
    let mut body = String::new();
    let mut footer_line = None;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if footer_line.is_some() {
            return Err(invalid("entries after checksum footer"));
        }
        if line.starts_with("checksum ") {
            footer_line = Some(line);
            continue;
        }
        let (key, kernel) = decode_entry(line)
            .ok_or_else(|| invalid(format!("corrupt tune cache entry: {line:?}")))?;
        body.push_str(line);
        body.push('\n');
        entries.push((key, kernel));
    }
    let footer_line = footer_line.ok_or_else(|| invalid("missing checksum footer (truncated?)"))?;
    if footer_line != footer(&body, entries.len()) {
        return Err(invalid("checksum footer does not match entries"));
    }
    Ok(entries)
}

/// Validates `text` end to end; any `Err` means structural corruption.
fn parse(profiler: &BoltProfiler, text: &str, path: &Path) -> Result<Parsed, io::Error> {
    let mut lines = text.lines();
    let head = lines.next().ok_or_else(|| invalid("empty tune cache"))?;
    let header = parse_header(head)?;
    if header.version != format!("v{SCHEMA_VERSION}") {
        eprintln!(
            "warning: ignoring tune cache {}: schema {} (expected v{})",
            path.display(),
            header.version,
            SCHEMA_VERSION
        );
        return Ok(Parsed::Mismatch);
    }
    if header.arch != arch_fingerprint(profiler.arch()) {
        eprintln!(
            "warning: ignoring tune cache {}: tuned for a different architecture",
            path.display()
        );
        return Ok(Parsed::Mismatch);
    }
    Ok(Parsed::Entries(parse_entry_block(lines)?))
}

/// The integrity footer covering the newline-joined entry `body`.
fn footer(body: &str, count: usize) -> String {
    format!("checksum {:016x} {count}", fnv1a(body.as_bytes()))
}

/// Renames a structurally corrupt cache aside to `<name>.corrupt` so the
/// evidence survives while the original path is freed for a rebuild.
fn quarantine(path: &Path, reason: &io::Error) -> io::Result<usize> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "bolt-tune-cache".into());
    name.push(".corrupt");
    let target = path.with_file_name(name);
    match std::fs::rename(path, &target) {
        Ok(()) => eprintln!(
            "warning: tune cache {} is corrupt ({reason}); quarantined to {} — \
             continuing with an empty cache, it will be rebuilt on the next save",
            path.display(),
            target.display()
        ),
        Err(rename_err) => eprintln!(
            "warning: tune cache {} is corrupt ({reason}) and could not be quarantined \
             ({rename_err}); continuing with an empty cache",
            path.display()
        ),
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// Shards and bundles: the shippable multi-arch store
// ---------------------------------------------------------------------------

/// One architecture's worth of tuned winners, decoupled from a live
/// profiler — the unit `bolt-tune` packs, merges, and ships. A shard is
/// what [`save`] writes for a single arch; a [`TuneBundle`] holds one
/// shard per architecture fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneShard {
    arch: u64,
    /// Advisory arch name (e.g. `"Tesla T4"`); empty when the source
    /// file predates the `name=` header token.
    name: String,
    entries: Vec<(Key, ProfiledKernel)>,
}

impl TuneShard {
    /// The architecture fingerprint this shard was tuned for.
    pub fn arch_fingerprint(&self) -> u64 {
        self.arch
    }

    /// The advisory architecture name (may be empty for old files).
    pub fn arch_name(&self) -> &str {
        &self.name
    }

    /// Human-readable identity: the name when known, else the
    /// fingerprint in hex.
    pub fn describe(&self) -> String {
        if self.name.is_empty() {
            format!("arch {:016x}", self.arch)
        } else {
            format!("{} ({:016x})", self.name, self.arch)
        }
    }

    /// Number of tuned entries in the shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn from_profiler(profiler: &BoltProfiler) -> TuneShard {
        let mut shard = TuneShard {
            arch: arch_fingerprint(profiler.arch()),
            name: profiler.arch().name.clone(),
            entries: profiler.entries(),
        };
        shard.sort();
        shard
    }

    pub(crate) fn entries(&self) -> &[(Key, ProfiledKernel)] {
        &self.entries
    }

    /// Reads a single-shard cache file **strictly**: a missing file,
    /// wrong schema version, or structural corruption is an error, never
    /// a silent empty result — this is the tooling/shipping path, where
    /// an ignored file would hide a fleet misconfiguration.
    pub fn read(path: &Path) -> io::Result<TuneShard> {
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| invalid("empty tune cache"))?;
        let header = parse_header(head)?;
        if header.version != format!("v{SCHEMA_VERSION}") {
            return Err(invalid(format!(
                "schema {} (this build reads v{SCHEMA_VERSION})",
                header.version
            )));
        }
        let mut shard = TuneShard {
            arch: header.arch,
            name: header.name,
            entries: parse_entry_block(lines)?,
        };
        shard.sort();
        Ok(shard)
    }

    /// Writes the shard as a standalone single-arch cache file — the
    /// inverse of [`TuneShard::read`], used by `bolt-tune extract` to
    /// pull one architecture back out of a packed bundle. The output is
    /// a regular v2 cache any profiler of the matching arch can load.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut canonical = self.clone();
        canonical.sort();
        let mut out = format!(
            "bolt-tune-cache v{SCHEMA_VERSION} arch={:016x} name={}\n",
            canonical.arch, canonical.name
        );
        let mut body = String::new();
        for line in canonical.encoded_lines() {
            body.push_str(&line);
            body.push('\n');
        }
        out.push_str(&body);
        out.push_str(&footer(&body, canonical.len()));
        out.push('\n');
        atomic_write(path, &out)
    }

    /// Merges `other` into this shard, keeping the **faster winner** per
    /// workload key (strictly lower simulated time replaces; ties keep
    /// the incumbent). Entries for new keys are appended. Both shards
    /// must describe the same architecture — merging across arches is a
    /// caller bug, checked by [`TuneBundle::absorb`].
    pub fn merge(&mut self, other: &TuneShard) {
        debug_assert_eq!(self.arch, other.arch, "cross-arch shard merge");
        if self.name.is_empty() && !other.name.is_empty() {
            self.name = other.name.clone();
        }
        for (key, kernel) in &other.entries {
            match self.entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, incumbent)) => {
                    if kernel.time_us < incumbent.time_us {
                        *incumbent = *kernel;
                    }
                }
                None => self.entries.push((*key, *kernel)),
            }
        }
        self.sort();
    }

    /// Canonical entry order (sorted encoded lines), so identical shards
    /// serialize to byte-identical files.
    fn sort(&mut self) {
        self.entries
            .sort_by_cached_key(|(key, kernel)| encode_entry(key, kernel));
    }

    fn encoded_lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|(key, kernel)| encode_entry(key, kernel))
            .collect()
    }
}

/// Bundle schema version; independent of the per-shard entry schema
/// ([`SCHEMA_VERSION`]), which governs the entry lines inside.
pub const BUNDLE_VERSION: u32 = 1;

/// A multi-architecture tune bundle: one [`TuneShard`] per arch
/// fingerprint, packed into a single shippable file.
///
/// # Format
///
/// ```text
/// bolt-tune-bundle v1 entries=v2
/// shard arch=<fnv1a-64> entries=<count> name=<arch name>
/// <entry lines, same codec as the single-shard cache>
/// shard ...
/// checksum <fnv1a-64 of every line above, after the header> <line count>
/// ```
///
/// Writing is deterministic — shards sorted by (name, fingerprint),
/// entries in canonical order — so pack → ship → load → re-pack round
/// trips **bit-identically**, and the trailing checksum covers every
/// shard and entry line so torn copies are detected, not misparsed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneBundle {
    shards: Vec<TuneShard>,
}

impl TuneBundle {
    /// An empty bundle.
    pub fn new() -> TuneBundle {
        TuneBundle::default()
    }

    /// The shards, in canonical (name, fingerprint) order.
    pub fn shards(&self) -> &[TuneShard] {
        &self.shards
    }

    /// The shard tuned for `arch_fingerprint`, if the bundle has one.
    pub fn shard_for(&self, arch_fingerprint: u64) -> Option<&TuneShard> {
        self.shards.iter().find(|s| s.arch == arch_fingerprint)
    }

    /// Total tuned entries across every shard.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(TuneShard::len).sum()
    }

    /// Absorbs a shard: merged into the existing shard of the same
    /// architecture (keeping the faster winner per key,
    /// [`TuneShard::merge`]) or added as a new shard.
    pub fn absorb(&mut self, shard: TuneShard) {
        match self.shards.iter_mut().find(|s| s.arch == shard.arch) {
            Some(existing) => existing.merge(&shard),
            None => self.shards.push(shard),
        }
        self.sort();
    }

    /// Absorbs every shard of another bundle.
    pub fn absorb_bundle(&mut self, other: TuneBundle) {
        for shard in other.shards {
            self.absorb(shard);
        }
    }

    fn sort(&mut self) {
        self.shards
            .sort_by(|a, b| (&a.name, a.arch).cmp(&(&b.name, b.arch)));
    }

    /// Reads a bundle file **strictly** (same rules as
    /// [`TuneShard::read`]: corruption and version skew are errors).
    pub fn read(path: &Path) -> io::Result<TuneBundle> {
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| invalid("empty tune bundle"))?;
        let mut tokens = head.split_whitespace();
        if tokens.next() != Some("bolt-tune-bundle") {
            return Err(invalid("not a bolt tune bundle"));
        }
        match tokens.next() {
            Some(v) if v == format!("v{BUNDLE_VERSION}") => {}
            Some(v) => {
                return Err(invalid(format!(
                    "bundle schema {v} (this build reads v{BUNDLE_VERSION})"
                )))
            }
            None => return Err(invalid("missing bundle version")),
        }

        // Validate the global checksum before interpreting any section.
        let mut body = String::new();
        let mut count = 0usize;
        let mut footer_line = None;
        let mut section_lines = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            if footer_line.is_some() {
                return Err(invalid("lines after bundle checksum footer"));
            }
            if line.starts_with("checksum ") {
                footer_line = Some(line);
                continue;
            }
            body.push_str(line);
            body.push('\n');
            count += 1;
            section_lines.push(line);
        }
        let footer_line =
            footer_line.ok_or_else(|| invalid("missing bundle checksum footer (truncated?)"))?;
        if footer_line != footer(&body, count) {
            return Err(invalid("bundle checksum does not match contents"));
        }

        let mut bundle = TuneBundle::new();
        let mut current: Option<(TuneShard, usize)> = None;
        for line in section_lines {
            if let Some(rest) = line.strip_prefix("shard ") {
                if let Some((shard, expected)) = current.take() {
                    finish_shard(&mut bundle, shard, expected)?;
                }
                let arch_hex = rest
                    .split_whitespace()
                    .find_map(|t| t.strip_prefix("arch="))
                    .ok_or_else(|| invalid("shard line missing arch fingerprint"))?;
                let arch = u64::from_str_radix(arch_hex, 16)
                    .map_err(|_| invalid("malformed shard arch fingerprint"))?;
                let expected = rest
                    .split_whitespace()
                    .find_map(|t| t.strip_prefix("entries="))
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| invalid("shard line missing entry count"))?;
                let name = rest
                    .split_once("name=")
                    .map(|(_, n)| n.trim().to_string())
                    .unwrap_or_default();
                current = Some((
                    TuneShard {
                        arch,
                        name,
                        entries: Vec::with_capacity(expected),
                    },
                    expected,
                ));
            } else {
                let (shard, _) = current
                    .as_mut()
                    .ok_or_else(|| invalid("entry line before any shard header"))?;
                let (key, kernel) = decode_entry(line)
                    .ok_or_else(|| invalid(format!("corrupt bundle entry: {line:?}")))?;
                shard.entries.push((key, kernel));
            }
        }
        if let Some((shard, expected)) = current.take() {
            finish_shard(&mut bundle, shard, expected)?;
        }
        Ok(bundle)
    }

    /// Reads either a bundle **or** a single-shard cache file, wrapping
    /// the latter as a one-shard bundle — so `bolt-tune pack` accepts
    /// both per-arch shards and previously packed bundles as inputs.
    pub fn read_any(path: &Path) -> io::Result<TuneBundle> {
        let first = {
            let text = std::fs::read_to_string(path)?;
            text.lines().next().unwrap_or_default().to_string()
        };
        if first.starts_with("bolt-tune-bundle") {
            TuneBundle::read(path)
        } else {
            let shard = TuneShard::read(path)?;
            let mut bundle = TuneBundle::new();
            bundle.absorb(shard);
            Ok(bundle)
        }
    }

    /// Serializes the bundle to its canonical byte representation.
    pub fn to_string_canonical(&self) -> String {
        let mut canonical = self.clone();
        canonical.sort();
        let mut body = String::new();
        let mut count = 0usize;
        for shard in &canonical.shards {
            body.push_str(&format!(
                "shard arch={:016x} entries={} name={}\n",
                shard.arch,
                shard.len(),
                shard.name
            ));
            count += 1;
            for line in shard.encoded_lines() {
                body.push_str(&line);
                body.push('\n');
                count += 1;
            }
        }
        let mut out = format!("bolt-tune-bundle v{BUNDLE_VERSION} entries=v{SCHEMA_VERSION}\n");
        out.push_str(&body);
        out.push_str(&footer(&body, count));
        out.push('\n');
        out
    }

    /// Writes the bundle atomically (temp file + rename), creating
    /// parent directories as needed. Deterministic: the same shards
    /// always produce byte-identical files.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        atomic_write(path, &self.to_string_canonical())
    }
}

fn finish_shard(bundle: &mut TuneBundle, mut shard: TuneShard, expected: usize) -> io::Result<()> {
    if shard.entries.len() != expected {
        return Err(invalid(format!(
            "shard {} declares {expected} entries but carries {}",
            shard.describe(),
            shard.entries.len()
        )));
    }
    shard.sort();
    bundle.absorb(shard);
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

fn encode_entry(key: &Key, kernel: &ProfiledKernel) -> String {
    let mut s = String::new();
    match key {
        Key::Gemm(p, ep) => {
            s.push_str(&format!(
                "gemm {} {} {} {} {} {} {}",
                p.m,
                p.n,
                p.k,
                p.batch,
                dtype_str(p.element),
                layout_str(p.layout_a),
                layout_str(p.layout_b),
            ));
            push_epilogue(&mut s, ep);
        }
        Key::Conv(p, ep, element) => {
            s.push_str(&format!(
                "conv {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                p.n,
                p.h,
                p.w,
                p.c,
                p.k,
                p.r,
                p.s,
                p.stride.0,
                p.stride.1,
                p.padding.0,
                p.padding.1,
                p.dilation.0,
                p.dilation.1,
                dtype_str(*element),
            ));
            push_epilogue(&mut s, ep);
        }
    }
    let c = &kernel.config;
    s.push_str(&format!(
        " | {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x} {}",
        c.threadblock.m,
        c.threadblock.n,
        c.threadblock.k,
        c.warp.m,
        c.warp.n,
        c.warp.k,
        c.instruction.m,
        c.instruction.n,
        c.instruction.k,
        c.stages,
        c.swizzle,
        c.alignment_a,
        c.alignment_b,
        c.alignment_c,
        pipeline_str(c.pipeline),
        c.split_k,
        kernel.time_us.to_bits(),
        kernel.candidates,
    ));
    s
}

fn push_epilogue(s: &mut String, ep: &Epilogue2) {
    s.push_str(&format!(
        " | {} {} {:08x} {:08x} {}",
        activation_str(ep.activation),
        bias_str(ep.bias),
        ep.alpha,
        ep.beta,
        ep.reduction,
    ));
}

fn decode_entry(line: &str) -> Option<(Key, ProfiledKernel)> {
    let mut t = line.split_whitespace().filter(|tok| *tok != "|");
    let key = match t.next()? {
        "gemm" => {
            let problem = GemmProblem {
                m: next_usize(&mut t)?,
                n: next_usize(&mut t)?,
                k: next_usize(&mut t)?,
                batch: next_usize(&mut t)?,
                element: parse_dtype(t.next()?)?,
                layout_a: parse_layout(t.next()?)?,
                layout_b: parse_layout(t.next()?)?,
            };
            Key::Gemm(problem, parse_epilogue(&mut t)?)
        }
        "conv" => {
            let problem = Conv2dProblem {
                n: next_usize(&mut t)?,
                h: next_usize(&mut t)?,
                w: next_usize(&mut t)?,
                c: next_usize(&mut t)?,
                k: next_usize(&mut t)?,
                r: next_usize(&mut t)?,
                s: next_usize(&mut t)?,
                stride: (next_usize(&mut t)?, next_usize(&mut t)?),
                padding: (next_usize(&mut t)?, next_usize(&mut t)?),
                dilation: (next_usize(&mut t)?, next_usize(&mut t)?),
            };
            let element = parse_dtype(t.next()?)?;
            Key::Conv(problem, parse_epilogue(&mut t)?, element)
        }
        _ => return None,
    };
    let config = GemmConfig {
        threadblock: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        warp: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        instruction: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        stages: next_usize(&mut t)?,
        swizzle: t.next()?.parse().ok()?,
        alignment_a: next_usize(&mut t)?,
        alignment_b: next_usize(&mut t)?,
        alignment_c: next_usize(&mut t)?,
        pipeline: parse_pipeline(t.next()?)?,
        split_k: next_usize(&mut t)?,
    };
    let time_us = f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?);
    let candidates = next_usize(&mut t)?;
    if t.next().is_some() {
        return None; // trailing garbage
    }
    Some((
        key,
        ProfiledKernel {
            config,
            time_us,
            candidates,
        },
    ))
}

fn parse_epilogue<'a>(t: &mut impl Iterator<Item = &'a str>) -> Option<Epilogue2> {
    Some(Epilogue2 {
        activation: parse_activation(t.next()?)?,
        bias: parse_bias(t.next()?)?,
        alpha: u32::from_str_radix(t.next()?, 16).ok()?,
        beta: u32::from_str_radix(t.next()?, 16).ok()?,
        reduction: t.next()?.parse().ok()?,
    })
}

fn next_usize<'a>(t: &mut impl Iterator<Item = &'a str>) -> Option<usize> {
    t.next()?.parse().ok()
}

// Local name<->enum tables: the vendored serde is derive-only (offline
// build), so enum spelling is pinned here and guarded by the schema
// version above.

fn dtype_str(d: DType) -> &'static str {
    match d {
        DType::B1 => "b1",
        DType::I4 => "i4",
        DType::I8 => "i8",
        DType::I32 => "i32",
        DType::F16 => "f16",
        DType::Bf16 => "bf16",
        DType::Tf32 => "tf32",
        DType::F32 => "f32",
        DType::F64 => "f64",
    }
}

fn parse_dtype(s: &str) -> Option<DType> {
    Some(match s {
        "b1" => DType::B1,
        "i4" => DType::I4,
        "i8" => DType::I8,
        "i32" => DType::I32,
        "f16" => DType::F16,
        "bf16" => DType::Bf16,
        "tf32" => DType::Tf32,
        "f32" => DType::F32,
        "f64" => DType::F64,
        _ => return None,
    })
}

fn layout_str(l: MatrixLayout) -> &'static str {
    match l {
        MatrixLayout::RowMajor => "row",
        MatrixLayout::ColMajor => "col",
    }
}

fn parse_layout(s: &str) -> Option<MatrixLayout> {
    Some(match s {
        "row" => MatrixLayout::RowMajor,
        "col" => MatrixLayout::ColMajor,
        _ => return None,
    })
}

fn activation_str(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::ReLU => "relu",
        Activation::Gelu => "gelu",
        Activation::Hardswish => "hardswish",
        Activation::Softplus => "softplus",
        Activation::Sigmoid => "sigmoid",
        Activation::Silu => "silu",
    }
}

fn parse_activation(s: &str) -> Option<Activation> {
    Some(match s {
        "identity" => Activation::Identity,
        "relu" => Activation::ReLU,
        "gelu" => Activation::Gelu,
        "hardswish" => Activation::Hardswish,
        "softplus" => Activation::Softplus,
        "sigmoid" => Activation::Sigmoid,
        "silu" => Activation::Silu,
        _ => return None,
    })
}

fn bias_str(b: BiasMode) -> &'static str {
    match b {
        BiasMode::None => "none",
        BiasMode::PerColumn => "per-column",
        BiasMode::Full => "full",
    }
}

fn parse_bias(s: &str) -> Option<BiasMode> {
    Some(match s {
        "none" => BiasMode::None,
        "per-column" => BiasMode::PerColumn,
        "full" => BiasMode::Full,
        _ => return None,
    })
}

fn pipeline_str(p: Pipeline) -> &'static str {
    match p {
        Pipeline::TensorCore => "tensor-core",
        Pipeline::CudaCore => "cuda-core",
        Pipeline::Sfu => "sfu",
    }
}

fn parse_pipeline(s: &str) -> Option<Pipeline> {
    Some(match s {
        "tensor-core" => Pipeline::TensorCore,
        "cuda-core" => Pipeline::CudaCore,
        "sfu" => Pipeline::Sfu,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_cutlass::Epilogue;
    use bolt_tensor::Activation;

    fn sample_kernel() -> ProfiledKernel {
        ProfiledKernel {
            config: GemmConfig::turing_default(),
            time_us: 123.456_789,
            candidates: 24,
        }
    }

    #[test]
    fn gemm_entry_round_trips_exactly() {
        let ep = Epilogue::bias_activation(Activation::Gelu, DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(1280, 3072, 768), (&ep).into());
        let kernel = sample_kernel();
        let line = encode_entry(&key, &kernel);
        let (k2, p2) = decode_entry(&line).expect("decodes");
        assert_eq!(k2, key);
        assert_eq!(p2, kernel);
    }

    #[test]
    fn conv_entry_round_trips_exactly_with_dtype() {
        let ep = Epilogue::linear(DType::F32);
        let problem = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (2, 2), (1, 1));
        for element in [DType::F16, DType::Bf16] {
            let key = Key::Conv(problem, (&ep).into(), element);
            let line = encode_entry(&key, &sample_kernel());
            let (k2, _) = decode_entry(&line).expect("decodes");
            assert_eq!(k2, key, "conv dtype must survive the round trip");
        }
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        assert!(decode_entry("gemm 1 2 not-a-number").is_none());
        assert!(decode_entry("unknown-kind 1 2 3").is_none());
        let ep = Epilogue::linear(DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(64, 64, 64), (&ep).into());
        let good = encode_entry(&key, &sample_kernel());
        assert!(decode_entry(&format!("{good} trailing")).is_none());
    }

    #[test]
    fn footer_is_deterministic_and_detects_tampering() {
        let ep = Epilogue::linear(DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(64, 64, 64), (&ep).into());
        let line = encode_entry(&key, &sample_kernel());
        let body = format!("{line}\n");
        assert_eq!(footer(&body, 1), footer(&body, 1), "footer is pure");
        let mut flipped = body.clone().into_bytes();
        flipped[10] ^= 1;
        let flipped = String::from_utf8(flipped).unwrap();
        assert_ne!(
            footer(&body, 1),
            footer(&flipped, 1),
            "single-bit flip changes the checksum"
        );
        assert_ne!(footer(&body, 1), footer(&body, 2), "count is covered");
    }

    #[test]
    fn fingerprint_distinguishes_architectures() {
        let t4 = arch_fingerprint(&GpuArch::tesla_t4());
        let v100 = arch_fingerprint(&GpuArch::tesla_v100());
        let a100 = arch_fingerprint(&GpuArch::a100());
        assert_ne!(t4, v100);
        assert_ne!(t4, a100);
        assert_eq!(
            t4,
            arch_fingerprint(&GpuArch::tesla_t4()),
            "fingerprint is stable"
        );
    }

    /// Golden stability values for the three presets. These are pinned
    /// on purpose: the fingerprint keys every on-disk cache and every
    /// bundle shard, so it must only change when the *datasheet or
    /// calibration values* change — never from a refactor of `GpuArch`
    /// (derive changes, field reordering, `Debug` formatting). If this
    /// test fails without a deliberate preset edit, the fingerprint
    /// function regressed; if you did edit a preset, update its golden
    /// value here (old caches for that arch are then correctly invalid).
    #[test]
    fn fingerprint_golden_values_for_presets() {
        let t4 = arch_fingerprint(&GpuArch::tesla_t4());
        let v100 = arch_fingerprint(&GpuArch::tesla_v100());
        let a100 = arch_fingerprint(&GpuArch::a100());
        assert_eq!(t4, GOLD_T4, "Tesla T4 fingerprint drifted: {t4:#018x}");
        assert_eq!(
            v100, GOLD_V100,
            "Tesla V100 fingerprint drifted: {v100:#018x}"
        );
        assert_eq!(a100, GOLD_A100, "A100 fingerprint drifted: {a100:#018x}");
    }

    const GOLD_T4: u64 = 0x7860_d9be_0f74_57ca;
    const GOLD_V100: u64 = 0x3470_eec3_d4d3_0cb1;
    const GOLD_A100: u64 = 0x3e04_fc37_8bea_5dee;

    #[test]
    fn fingerprint_covers_model_params() {
        let base = GpuArch::tesla_t4();
        let mut recalibrated = base.clone();
        recalibrated.params.overlap_leak += 0.01;
        assert_ne!(
            arch_fingerprint(&base),
            arch_fingerprint(&recalibrated),
            "re-calibrating the model must invalidate caches"
        );
    }

    fn shard_with(times: &[(usize, f64)], arch: &GpuArch) -> TuneShard {
        // Distinct keys via the GEMM m dimension; times as given.
        let ep = Epilogue::linear(DType::F16);
        let entries = times
            .iter()
            .map(|&(m, time_us)| {
                (
                    Key::Gemm(GemmProblem::fp16(m, 64, 64), (&ep).into()),
                    ProfiledKernel {
                        config: GemmConfig::turing_default(),
                        time_us,
                        candidates: 4,
                    },
                )
            })
            .collect();
        let mut shard = TuneShard {
            arch: arch_fingerprint(arch),
            name: arch.name.clone(),
            entries,
        };
        shard.sort();
        shard
    }

    #[test]
    fn shard_merge_keeps_the_faster_winner_per_key() {
        let t4 = GpuArch::tesla_t4();
        let mut a = shard_with(&[(64, 10.0), (128, 5.0)], &t4);
        let b = shard_with(&[(64, 7.0), (128, 9.0), (256, 3.0)], &t4);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let time_of = |m: usize| {
            a.entries()
                .iter()
                .find_map(|(k, kernel)| match k {
                    Key::Gemm(p, _) if p.m == m => Some(kernel.time_us),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(time_of(64), 7.0, "other's faster winner replaces");
        assert_eq!(time_of(128), 5.0, "incumbent faster winner survives");
        assert_eq!(time_of(256), 3.0, "new keys are appended");
    }

    #[test]
    fn bundle_round_trips_bit_identically() {
        let dir = std::env::temp_dir().join("bolt_bundle_roundtrip_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("fleet.bundle");

        let mut bundle = TuneBundle::new();
        bundle.absorb(shard_with(&[(64, 10.5), (128, 3.25)], &GpuArch::tesla_t4()));
        bundle.absorb(shard_with(&[(64, 4.125)], &GpuArch::a100()));
        bundle.write(&path).unwrap();

        let shipped = std::fs::read_to_string(&path).unwrap();
        let reloaded = TuneBundle::read(&path).unwrap();
        assert_eq!(reloaded, bundle);
        assert_eq!(
            reloaded.to_string_canonical(),
            shipped,
            "pack -> ship -> load -> re-pack must be bit-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bundle_detects_tampering_and_truncation() {
        let dir = std::env::temp_dir().join("bolt_bundle_tamper_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("fleet.bundle");
        let mut bundle = TuneBundle::new();
        bundle.absorb(shard_with(&[(64, 10.5)], &GpuArch::tesla_t4()));
        bundle.write(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, truncated).unwrap();
        let err = TuneBundle::read(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bundle_absorb_merges_same_arch_shards() {
        let t4 = GpuArch::tesla_t4();
        let mut bundle = TuneBundle::new();
        bundle.absorb(shard_with(&[(64, 10.0)], &t4));
        bundle.absorb(shard_with(&[(64, 6.0), (128, 2.0)], &t4));
        bundle.absorb(shard_with(&[(64, 1.0)], &GpuArch::a100()));
        assert_eq!(bundle.shards().len(), 2, "same-arch shards merge");
        let t4_shard = bundle.shard_for(arch_fingerprint(&t4)).unwrap();
        assert_eq!(t4_shard.len(), 2);
    }
}
