//! Versioned on-disk autotune cache.
//!
//! Profiled winners survive the process: a compilation session saves its
//! tuning cache to disk and the next session (same architecture, same
//! cache schema) starts with every previously-profiled workload already
//! resolved — zero measurements, zero template generation. This is the
//! persistence half of Bolt's "sample programs are reusable across models
//! and workloads" claim (Section 3.2.2).
//!
//! # Format
//!
//! A plain-text, line-oriented format (no external serialization crates):
//!
//! ```text
//! bolt-tune-cache v2 arch=<fnv1a-64 of the architecture description>
//! gemm <problem> | <epilogue> | <winning config> <time-bits> <candidates>
//! conv <problem> <dtype> | <epilogue> | <winning config> <time-bits> <candidates>
//! checksum <fnv1a-64 of the entry lines> <entry count>
//! ```
//!
//! Floats are encoded as IEEE-754 bit patterns in hex so the round trip
//! is exact. The header carries two invalidation axes:
//!
//! * **Schema version** ([`SCHEMA_VERSION`]) — bumped whenever the entry
//!   layout changes; old files are skipped, not misparsed.
//! * **Architecture fingerprint** ([`arch_fingerprint`]) — a hash of
//!   every datasheet number of the target [`GpuArch`]. A cache tuned for
//!   one GPU (or for a re-calibrated model of the same GPU) is invalid
//!   for another: the winning configs would be stale.
//!
//! A version or architecture mismatch is *not* an error — the cache is
//! an optimization, so [`load`] warns on stderr and reports zero entries,
//! and the session re-measures and overwrites the file on save.
//!
//! # Corruption handling
//!
//! The trailing `checksum` footer covers every entry line, so a torn or
//! bit-flipped file (crash mid-write on a filesystem without atomic
//! rename, disk corruption, a truncated copy) is *detected* rather than
//! misparsed. Structural corruption — missing/mismatched footer, an
//! undecodable entry, a malformed header — does not abort the session:
//! [`load`] **quarantines** the file (renames it to `<name>.corrupt`,
//! preserving the evidence), warns on stderr, and reports zero entries.
//! The session warm-starts empty and the next save rebuilds a clean
//! cache at the original path. Only real I/O failures (permissions,
//! unreadable file) propagate as errors.

use std::io;
use std::path::Path;

use bolt_cutlass::{BiasMode, GemmConfig, GemmProblem, TileShape};
use bolt_gpu_sim::{GpuArch, Pipeline};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType, MatrixLayout};

use crate::profiler::{BoltProfiler, Epilogue2, Key, ProfiledKernel};

/// Cache schema version; bump on any change to the entry layout.
/// v2 added the `checksum` footer line.
pub const SCHEMA_VERSION: u32 = 2;

/// FNV-1a fingerprint of an architecture's full datasheet description.
///
/// Hashes the `Debug` rendering of [`GpuArch`], which covers every field
/// including the calibrated [`bolt_gpu_sim::ModelParams`] — so editing
/// either the hardware numbers or the model calibration invalidates
/// caches tuned under the old numbers.
pub fn arch_fingerprint(arch: &GpuArch) -> u64 {
    fnv1a(format!("{arch:?}").as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn header(arch: &GpuArch) -> String {
    format!(
        "bolt-tune-cache v{} arch={:016x}",
        SCHEMA_VERSION,
        arch_fingerprint(arch)
    )
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes the profiler's resolved entries to `path`, creating parent
/// directories as needed. Output is sorted, so identical caches produce
/// byte-identical files.
///
/// The write is **atomic**: the cache is staged in a uniquely-named
/// sibling temp file and `rename`d into place, so a reader (or a crash)
/// never observes a torn file — concurrent savers race benignly, with
/// the last complete rename winning. This matters once online tuning
/// saves the cache after every background compile while other
/// processes load it.
pub(crate) fn save(profiler: &BoltProfiler, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut lines: Vec<String> = profiler
        .entries()
        .iter()
        .map(|(key, kernel)| encode_entry(key, kernel))
        .collect();
    lines.sort_unstable();
    let mut out = header(profiler.arch());
    out.push('\n');
    let mut body = String::new();
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    out.push_str(&body);
    out.push_str(&footer(&body, lines.len()));
    out.push('\n');

    // Chaos: simulate a crash mid-write by truncating the staged bytes.
    // The checksum footer is what lets the next load catch this.
    if let Some(keep) = crate::faults::truncate(crate::faults::FaultSite::CacheSave, out.len()) {
        out.truncate(keep);
    }

    // Unique per process *and* per call, so concurrent savers never
    // stage into the same temp file.
    static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "bolt-tune-cache".into());
    tmp_name.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads entries from `path` into the profiler's cache, returning the
/// number of entries merged.
///
/// * Version or architecture mismatches warn and return `Ok(0)` — the
///   file is left in place (it is valid, just not for us).
/// * Structural corruption (bad header, undecodable entry, missing or
///   mismatched `checksum` footer) **quarantines** the file: it is
///   renamed to `<name>.corrupt`, a warning is printed, and `Ok(0)` is
///   returned so the session warm-starts empty and rebuilds the cache
///   on its next save. Nothing is merged from a corrupt file — entries
///   are only installed after the whole file validates.
/// * Real I/O failures (unreadable file, permissions) propagate.
pub(crate) fn load(profiler: &BoltProfiler, path: &Path) -> io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    match parse(profiler, &text, path) {
        Ok(Parsed::Mismatch) => Ok(0),
        Ok(Parsed::Entries(entries)) => {
            let count = entries.len();
            for (key, kernel) in entries {
                profiler.insert_entry(key, kernel);
            }
            Ok(count)
        }
        Err(reason) => quarantine(path, &reason),
    }
}

enum Parsed {
    /// Valid file for a different schema version or architecture.
    Mismatch,
    /// Fully validated entries, ready to merge.
    Entries(Vec<(Key, ProfiledKernel)>),
}

/// Validates `text` end to end; any `Err` means structural corruption.
fn parse(profiler: &BoltProfiler, text: &str, path: &Path) -> Result<Parsed, io::Error> {
    let mut lines = text.lines();
    let head = lines.next().ok_or_else(|| invalid("empty tune cache"))?;
    let mut tokens = head.split_whitespace();
    if tokens.next() != Some("bolt-tune-cache") {
        return Err(invalid("not a bolt tune cache"));
    }
    let version = tokens
        .next()
        .ok_or_else(|| invalid("missing cache version"))?;
    let arch_hex = tokens
        .next()
        .and_then(|t| t.strip_prefix("arch="))
        .ok_or_else(|| invalid("missing arch fingerprint"))?;
    let arch =
        u64::from_str_radix(arch_hex, 16).map_err(|_| invalid("malformed arch fingerprint"))?;
    if version != format!("v{SCHEMA_VERSION}") {
        eprintln!(
            "warning: ignoring tune cache {}: schema {} (expected v{})",
            path.display(),
            version,
            SCHEMA_VERSION
        );
        return Ok(Parsed::Mismatch);
    }
    if arch != arch_fingerprint(profiler.arch()) {
        eprintln!(
            "warning: ignoring tune cache {}: tuned for a different architecture",
            path.display()
        );
        return Ok(Parsed::Mismatch);
    }
    let mut entries = Vec::new();
    let mut body = String::new();
    let mut footer_line = None;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if footer_line.is_some() {
            return Err(invalid("entries after checksum footer"));
        }
        if line.starts_with("checksum ") {
            footer_line = Some(line);
            continue;
        }
        let (key, kernel) = decode_entry(line)
            .ok_or_else(|| invalid(format!("corrupt tune cache entry: {line:?}")))?;
        body.push_str(line);
        body.push('\n');
        entries.push((key, kernel));
    }
    let footer_line = footer_line.ok_or_else(|| invalid("missing checksum footer (truncated?)"))?;
    if footer_line != footer(&body, entries.len()) {
        return Err(invalid("checksum footer does not match entries"));
    }
    Ok(Parsed::Entries(entries))
}

/// The integrity footer covering the newline-joined entry `body`.
fn footer(body: &str, count: usize) -> String {
    format!("checksum {:016x} {count}", fnv1a(body.as_bytes()))
}

/// Renames a structurally corrupt cache aside to `<name>.corrupt` so the
/// evidence survives while the original path is freed for a rebuild.
fn quarantine(path: &Path, reason: &io::Error) -> io::Result<usize> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "bolt-tune-cache".into());
    name.push(".corrupt");
    let target = path.with_file_name(name);
    match std::fs::rename(path, &target) {
        Ok(()) => eprintln!(
            "warning: tune cache {} is corrupt ({reason}); quarantined to {} — \
             continuing with an empty cache, it will be rebuilt on the next save",
            path.display(),
            target.display()
        ),
        Err(rename_err) => eprintln!(
            "warning: tune cache {} is corrupt ({reason}) and could not be quarantined \
             ({rename_err}); continuing with an empty cache",
            path.display()
        ),
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

fn encode_entry(key: &Key, kernel: &ProfiledKernel) -> String {
    let mut s = String::new();
    match key {
        Key::Gemm(p, ep) => {
            s.push_str(&format!(
                "gemm {} {} {} {} {} {} {}",
                p.m,
                p.n,
                p.k,
                p.batch,
                dtype_str(p.element),
                layout_str(p.layout_a),
                layout_str(p.layout_b),
            ));
            push_epilogue(&mut s, ep);
        }
        Key::Conv(p, ep, element) => {
            s.push_str(&format!(
                "conv {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                p.n,
                p.h,
                p.w,
                p.c,
                p.k,
                p.r,
                p.s,
                p.stride.0,
                p.stride.1,
                p.padding.0,
                p.padding.1,
                p.dilation.0,
                p.dilation.1,
                dtype_str(*element),
            ));
            push_epilogue(&mut s, ep);
        }
    }
    let c = &kernel.config;
    s.push_str(&format!(
        " | {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:016x} {}",
        c.threadblock.m,
        c.threadblock.n,
        c.threadblock.k,
        c.warp.m,
        c.warp.n,
        c.warp.k,
        c.instruction.m,
        c.instruction.n,
        c.instruction.k,
        c.stages,
        c.swizzle,
        c.alignment_a,
        c.alignment_b,
        c.alignment_c,
        pipeline_str(c.pipeline),
        c.split_k,
        kernel.time_us.to_bits(),
        kernel.candidates,
    ));
    s
}

fn push_epilogue(s: &mut String, ep: &Epilogue2) {
    s.push_str(&format!(
        " | {} {} {:08x} {:08x} {}",
        activation_str(ep.activation),
        bias_str(ep.bias),
        ep.alpha,
        ep.beta,
        ep.reduction,
    ));
}

fn decode_entry(line: &str) -> Option<(Key, ProfiledKernel)> {
    let mut t = line.split_whitespace().filter(|tok| *tok != "|");
    let key = match t.next()? {
        "gemm" => {
            let problem = GemmProblem {
                m: next_usize(&mut t)?,
                n: next_usize(&mut t)?,
                k: next_usize(&mut t)?,
                batch: next_usize(&mut t)?,
                element: parse_dtype(t.next()?)?,
                layout_a: parse_layout(t.next()?)?,
                layout_b: parse_layout(t.next()?)?,
            };
            Key::Gemm(problem, parse_epilogue(&mut t)?)
        }
        "conv" => {
            let problem = Conv2dProblem {
                n: next_usize(&mut t)?,
                h: next_usize(&mut t)?,
                w: next_usize(&mut t)?,
                c: next_usize(&mut t)?,
                k: next_usize(&mut t)?,
                r: next_usize(&mut t)?,
                s: next_usize(&mut t)?,
                stride: (next_usize(&mut t)?, next_usize(&mut t)?),
                padding: (next_usize(&mut t)?, next_usize(&mut t)?),
                dilation: (next_usize(&mut t)?, next_usize(&mut t)?),
            };
            let element = parse_dtype(t.next()?)?;
            Key::Conv(problem, parse_epilogue(&mut t)?, element)
        }
        _ => return None,
    };
    let config = GemmConfig {
        threadblock: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        warp: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        instruction: TileShape::new(
            next_usize(&mut t)?,
            next_usize(&mut t)?,
            next_usize(&mut t)?,
        ),
        stages: next_usize(&mut t)?,
        swizzle: t.next()?.parse().ok()?,
        alignment_a: next_usize(&mut t)?,
        alignment_b: next_usize(&mut t)?,
        alignment_c: next_usize(&mut t)?,
        pipeline: parse_pipeline(t.next()?)?,
        split_k: next_usize(&mut t)?,
    };
    let time_us = f64::from_bits(u64::from_str_radix(t.next()?, 16).ok()?);
    let candidates = next_usize(&mut t)?;
    if t.next().is_some() {
        return None; // trailing garbage
    }
    Some((
        key,
        ProfiledKernel {
            config,
            time_us,
            candidates,
        },
    ))
}

fn parse_epilogue<'a>(t: &mut impl Iterator<Item = &'a str>) -> Option<Epilogue2> {
    Some(Epilogue2 {
        activation: parse_activation(t.next()?)?,
        bias: parse_bias(t.next()?)?,
        alpha: u32::from_str_radix(t.next()?, 16).ok()?,
        beta: u32::from_str_radix(t.next()?, 16).ok()?,
        reduction: t.next()?.parse().ok()?,
    })
}

fn next_usize<'a>(t: &mut impl Iterator<Item = &'a str>) -> Option<usize> {
    t.next()?.parse().ok()
}

// Local name<->enum tables: the vendored serde is derive-only (offline
// build), so enum spelling is pinned here and guarded by the schema
// version above.

fn dtype_str(d: DType) -> &'static str {
    match d {
        DType::B1 => "b1",
        DType::I4 => "i4",
        DType::I8 => "i8",
        DType::I32 => "i32",
        DType::F16 => "f16",
        DType::Bf16 => "bf16",
        DType::Tf32 => "tf32",
        DType::F32 => "f32",
        DType::F64 => "f64",
    }
}

fn parse_dtype(s: &str) -> Option<DType> {
    Some(match s {
        "b1" => DType::B1,
        "i4" => DType::I4,
        "i8" => DType::I8,
        "i32" => DType::I32,
        "f16" => DType::F16,
        "bf16" => DType::Bf16,
        "tf32" => DType::Tf32,
        "f32" => DType::F32,
        "f64" => DType::F64,
        _ => return None,
    })
}

fn layout_str(l: MatrixLayout) -> &'static str {
    match l {
        MatrixLayout::RowMajor => "row",
        MatrixLayout::ColMajor => "col",
    }
}

fn parse_layout(s: &str) -> Option<MatrixLayout> {
    Some(match s {
        "row" => MatrixLayout::RowMajor,
        "col" => MatrixLayout::ColMajor,
        _ => return None,
    })
}

fn activation_str(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::ReLU => "relu",
        Activation::Gelu => "gelu",
        Activation::Hardswish => "hardswish",
        Activation::Softplus => "softplus",
        Activation::Sigmoid => "sigmoid",
        Activation::Silu => "silu",
    }
}

fn parse_activation(s: &str) -> Option<Activation> {
    Some(match s {
        "identity" => Activation::Identity,
        "relu" => Activation::ReLU,
        "gelu" => Activation::Gelu,
        "hardswish" => Activation::Hardswish,
        "softplus" => Activation::Softplus,
        "sigmoid" => Activation::Sigmoid,
        "silu" => Activation::Silu,
        _ => return None,
    })
}

fn bias_str(b: BiasMode) -> &'static str {
    match b {
        BiasMode::None => "none",
        BiasMode::PerColumn => "per-column",
        BiasMode::Full => "full",
    }
}

fn parse_bias(s: &str) -> Option<BiasMode> {
    Some(match s {
        "none" => BiasMode::None,
        "per-column" => BiasMode::PerColumn,
        "full" => BiasMode::Full,
        _ => return None,
    })
}

fn pipeline_str(p: Pipeline) -> &'static str {
    match p {
        Pipeline::TensorCore => "tensor-core",
        Pipeline::CudaCore => "cuda-core",
        Pipeline::Sfu => "sfu",
    }
}

fn parse_pipeline(s: &str) -> Option<Pipeline> {
    Some(match s {
        "tensor-core" => Pipeline::TensorCore,
        "cuda-core" => Pipeline::CudaCore,
        "sfu" => Pipeline::Sfu,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_cutlass::Epilogue;
    use bolt_tensor::Activation;

    fn sample_kernel() -> ProfiledKernel {
        ProfiledKernel {
            config: GemmConfig::turing_default(),
            time_us: 123.456_789,
            candidates: 24,
        }
    }

    #[test]
    fn gemm_entry_round_trips_exactly() {
        let ep = Epilogue::bias_activation(Activation::Gelu, DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(1280, 3072, 768), (&ep).into());
        let kernel = sample_kernel();
        let line = encode_entry(&key, &kernel);
        let (k2, p2) = decode_entry(&line).expect("decodes");
        assert_eq!(k2, key);
        assert_eq!(p2, kernel);
    }

    #[test]
    fn conv_entry_round_trips_exactly_with_dtype() {
        let ep = Epilogue::linear(DType::F32);
        let problem = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (2, 2), (1, 1));
        for element in [DType::F16, DType::Bf16] {
            let key = Key::Conv(problem, (&ep).into(), element);
            let line = encode_entry(&key, &sample_kernel());
            let (k2, _) = decode_entry(&line).expect("decodes");
            assert_eq!(k2, key, "conv dtype must survive the round trip");
        }
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        assert!(decode_entry("gemm 1 2 not-a-number").is_none());
        assert!(decode_entry("unknown-kind 1 2 3").is_none());
        let ep = Epilogue::linear(DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(64, 64, 64), (&ep).into());
        let good = encode_entry(&key, &sample_kernel());
        assert!(decode_entry(&format!("{good} trailing")).is_none());
    }

    #[test]
    fn footer_is_deterministic_and_detects_tampering() {
        let ep = Epilogue::linear(DType::F16);
        let key = Key::Gemm(GemmProblem::fp16(64, 64, 64), (&ep).into());
        let line = encode_entry(&key, &sample_kernel());
        let body = format!("{line}\n");
        assert_eq!(footer(&body, 1), footer(&body, 1), "footer is pure");
        let mut flipped = body.clone().into_bytes();
        flipped[10] ^= 1;
        let flipped = String::from_utf8(flipped).unwrap();
        assert_ne!(
            footer(&body, 1),
            footer(&flipped, 1),
            "single-bit flip changes the checksum"
        );
        assert_ne!(footer(&body, 1), footer(&body, 2), "count is covered");
    }

    #[test]
    fn fingerprint_distinguishes_architectures() {
        let t4 = arch_fingerprint(&GpuArch::tesla_t4());
        let v100 = arch_fingerprint(&GpuArch::tesla_v100());
        let a100 = arch_fingerprint(&GpuArch::a100());
        assert_ne!(t4, v100);
        assert_ne!(t4, a100);
        assert_eq!(
            t4,
            arch_fingerprint(&GpuArch::tesla_t4()),
            "fingerprint is stable"
        );
    }
}
