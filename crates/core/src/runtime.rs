//! The compiled-model runtime.
//!
//! A [`CompiledModel`] is a handle to an [`ExecutionPlan`](crate::plan::ExecutionPlan)
//! — the ordered [`Step`] list produced by the lowering pipeline plus its
//! prepacked constants and buffer-slot plan — together with the
//! [`TuningSummary`] of the compilation that built it. It executes in two
//! modes:
//!
//! * **functional** ([`CompiledModel::run`]) — really computes every step
//!   with the templated kernel executors and host reference ops, so fused
//!   and unfused compilations can be compared for numerical equality;
//! * **timing** ([`CompiledModel::time`]) — prices every step on the GPU
//!   simulator and returns a per-kernel [`Timeline`], the measurement
//!   behind Figures 8-10.
//!
//! This module also hosts the step vocabulary ([`Step`], [`StepKind`]),
//! the host (TVM-fallback) operator implementations and their pricing,
//! and the batch stacking/slicing helpers the serving layer uses.

use std::collections::HashMap;
use std::sync::Arc;

use bolt_cutlass::{B2bConvKernel, B2bGemmKernel, Conv2dKernel, GemmKernel, PersistentGemmChain};
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile, KernelTime, Timeline};
use bolt_graph::{Graph, NodeId, OpKind, PoolKind};
use bolt_tensor::{activation::apply_slice, DType, Layout, Tensor};

use crate::config::BoltConfig;
use crate::error::BoltError;
use crate::plan::{ExecutionPlan, StepObserver};
use crate::Result;

/// What one step executes.
#[derive(Debug, Clone)]
pub enum StepKind {
    /// A templated GEMM (dense layer) with fused epilogue.
    Gemm {
        /// The instantiated kernel.
        kernel: GemmKernel,
        /// Weight constant node (`(units, in)` logical).
        weight: NodeId,
        /// Optional bias constant node.
        bias: Option<NodeId>,
        /// Optional residual activation input (fused as the full-C
        /// operand).
        residual: Option<NodeId>,
    },
    /// A templated implicit-GEMM convolution with fused epilogue.
    Conv2d {
        /// The instantiated kernel (problem uses *padded* channels when
        /// `pad_to` is set).
        kernel: Conv2dKernel,
        /// Filter constant node (`(K, C, R, S)` logical).
        filter: NodeId,
        /// Optional per-channel bias constant node.
        bias: Option<NodeId>,
        /// Input channels after automatic padding, if padding applied.
        pad_to: Option<usize>,
        /// True when the pad is folded into the boundary layout-transform
        /// kernel (first layer) instead of a standalone pad kernel.
        pad_fused: bool,
    },
    /// A persistent back-to-back GEMM kernel.
    B2bGemm {
        /// The fused kernel.
        kernel: B2bGemmKernel,
        /// Weights and biases of both main loops.
        w0: NodeId,
        /// First bias, if any.
        b0: Option<NodeId>,
        /// Second weight.
        w1: NodeId,
        /// Second bias, if any.
        b1: Option<NodeId>,
    },
    /// A persistent chain of three or more fused GEMMs (the paper's
    /// "more than two" extension, Section 3.1.1).
    GemmChain {
        /// The fused chain.
        chain: PersistentGemmChain,
        /// Weight constant node per stage.
        weights: Vec<NodeId>,
        /// Optional bias constant node per stage.
        biases: Vec<Option<NodeId>>,
    },
    /// A persistent back-to-back Conv kernel.
    B2bConv {
        /// The fused kernel.
        kernel: B2bConvKernel,
        /// Filters and biases of both main loops.
        f0: NodeId,
        /// First bias, if any.
        b0: Option<NodeId>,
        /// Second filter.
        f1: NodeId,
        /// Second bias, if any.
        b1: Option<NodeId>,
        /// Input channels of the first conv after automatic padding.
        pad_to: Option<usize>,
    },
    /// An NCHW↔NHWC layout transformation at a region boundary. A
    /// functional no-op (the runtime tracks layouts); charged in timing.
    LayoutTransform {
        /// Tensor bytes moved (read + write counted separately).
        bytes: f64,
        /// Folded into the adjacent kernel (no extra launch).
        fused: bool,
    },
    /// A standalone channel-padding kernel (Table 3's overhead).
    PadChannels {
        /// Bytes read + written by the pad kernel.
        bytes: f64,
    },
    /// A host (TVM-fallback) operator executed outside Bolt.
    Host,
}

/// One executable step of a compiled model.
#[derive(Debug, Clone)]
pub struct Step {
    /// Display name.
    pub name: String,
    /// What to execute.
    pub kind: StepKind,
    /// Graph activation inputs, in kernel order.
    pub inputs: Vec<NodeId>,
    /// The graph node whose value this step produces.
    pub output: NodeId,
    /// Every graph node folded into this step (for coverage checks).
    pub covered: Vec<NodeId>,
}

/// Summary of the profiling effort that built a model (Figure 10b).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuningSummary {
    /// Unique workloads profiled.
    pub workloads: usize,
    /// Candidate measurements performed.
    pub measurements: usize,
    /// Candidates skipped by analytic lower-bound pruning.
    pub pruned: usize,
    /// Simulated tuning wall-clock seconds attributable to *this*
    /// compilation (template generation is charged to the first compile
    /// that measures; cache-warm compiles cost zero).
    pub tuning_seconds: f64,
}

/// Timing-mode result.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Per-kernel timeline.
    pub timeline: Timeline,
    /// End-to-end latency in microseconds.
    pub total_us: f64,
}

impl TimingReport {
    /// Throughput in inferences (images) per second for a given batch.
    pub fn images_per_sec(&self, batch: usize) -> f64 {
        batch as f64 / (self.total_us / 1e6)
    }
}

/// A compiled model: a shared handle to the [`ExecutionPlan`] plus the
/// profiling-cost summary of the compilation that built it.
///
/// Cloning is cheap (the plan is behind an `Arc`); the serving layer
/// shares the same plan across batch buckets and worker threads.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    pub(crate) plan: Arc<ExecutionPlan>,
    /// Profiling-cost summary.
    pub tuning: TuningSummary,
}

impl CompiledModel {
    /// The execution plan this model is a handle to.
    pub fn plan(&self) -> &Arc<ExecutionPlan> {
        &self.plan
    }

    /// The executable steps in order.
    pub fn steps(&self) -> &[Step] {
        self.plan.steps()
    }

    /// The optimized graph this model executes.
    pub fn graph(&self) -> &Graph {
        self.plan.graph()
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        self.plan.arch()
    }

    /// The configuration the model was compiled with.
    pub fn compile_config(&self) -> &BoltConfig {
        self.plan.config()
    }

    /// Number of device kernel launches (excludes host steps and fused
    /// transforms) — what persistent fusion and epilogue fusion reduce.
    pub fn kernel_count(&self) -> usize {
        self.plan.kernel_count()
    }

    /// Peak intermediate memory of the planned execution
    /// ([`ExecutionPlan::workspace_bytes`]).
    pub fn workspace_bytes(&self) -> u64 {
        self.plan.workspace_bytes()
    }

    /// Prices every step on the simulator.
    pub fn time(&self) -> TimingReport {
        self.plan.time()
    }

    /// [`CompiledModel::time`], reporting each step to `observer` as it
    /// is priced.
    pub fn time_observed(&self, observer: &mut dyn StepObserver) -> TimingReport {
        self.plan.time_observed(observer)
    }

    /// Executes the model on real inputs (one tensor per graph input, in
    /// `Graph::input_ids` order). Rank-4 inputs may be NCHW (converted
    /// internally) or NHWC.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for arity/rank/shape mismatches
    /// (including a mismatched batch dimension) and missing parameter
    /// data. Malformed inputs never panic: every message spells out the
    /// expected vs. received shape.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.plan.run(inputs)
    }

    /// The batch capacity this model was compiled for
    /// ([`ExecutionPlan::batch_size`]).
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] when the graph has no inputs, an
    /// input is scalar, or the inputs disagree on the batch dimension.
    pub fn batch_size(&self) -> Result<usize> {
        self.plan.batch_size()
    }

    /// Batch-slicing execution for the serving layer
    /// ([`ExecutionPlan::run_batched`]).
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for an empty or oversized sample
    /// list, per-sample arity/shape mismatches, or any error from
    /// [`CompiledModel::run`].
    pub fn run_batched(&self, samples: &[Vec<Tensor>]) -> Result<Vec<Vec<Tensor>>> {
        self.plan.run_batched(samples)
    }
}

/// The tensor's dimensions in the graph's logical convention: rank-4
/// activations report NCHW regardless of storage layout, everything else
/// reports shape order as stored.
pub(crate) fn logical_dims(tensor: &Tensor) -> Vec<usize> {
    if tensor.shape().rank() == 4 {
        let (n, c, h, w) = tensor.dims4();
        vec![n, c, h, w]
    } else {
        tensor.shape().dims().to_vec()
    }
}

/// True when `layout` keeps the batch (dimension 0) outermost in storage,
/// so batch stacking/slicing is a contiguous copy.
fn batch_outermost(layout: Layout) -> bool {
    !matches!(layout, Layout::Matrix(bolt_tensor::MatrixLayout::ColMajor))
}

/// Stacks single-sample tensors along the batch dimension into one tensor
/// of batch `pad_to`, zero-filling any padding rows.
/// Every supported layout (NCHW, NHWC, row-major matrix, contiguous)
/// stores the batch outermost, so stacking is a contiguous copy.
///
/// # Errors
///
/// Returns [`BoltError::BadInput`] when `samples` is empty or larger than
/// `pad_to`, when a sample's batch dimension is not 1, when samples
/// disagree on shape/layout/dtype, or for column-major matrices (batch
/// rows are not contiguous there).
pub fn stack_batch(samples: &[&Tensor], pad_to: usize) -> Result<Tensor> {
    let proto = samples.first().ok_or_else(|| BoltError::BadInput {
        reason: "stack_batch needs at least one sample".into(),
    })?;
    if samples.len() > pad_to {
        return Err(BoltError::BadInput {
            reason: format!(
                "{} samples do not fit in a batch of {pad_to}",
                samples.len()
            ),
        });
    }
    if !batch_outermost(proto.layout()) {
        return Err(BoltError::BadInput {
            reason: "stack_batch requires a batch-outermost layout (got a column-major matrix)"
                .into(),
        });
    }
    if proto.shape().rank() == 0 || proto.shape().dim(0) != 1 {
        return Err(BoltError::BadInput {
            reason: format!(
                "stack_batch samples must have batch dimension 1, got shape {}",
                proto.shape()
            ),
        });
    }
    for (s, t) in samples.iter().enumerate().skip(1) {
        if t.shape() != proto.shape() || t.layout() != proto.layout() || t.dtype() != proto.dtype()
        {
            return Err(BoltError::BadInput {
                reason: format!(
                    "sample {s} disagrees with sample 0: {} {:?} {:?} vs {} {:?} {:?}",
                    t.shape(),
                    t.layout(),
                    t.dtype(),
                    proto.shape(),
                    proto.layout(),
                    proto.dtype()
                ),
            });
        }
    }

    let per = proto.numel();
    let mut data = Vec::with_capacity(per * pad_to);
    for t in samples {
        data.extend_from_slice(t.data());
    }
    // Zero-pad the tail of a partial batch. Replicating the last sample
    // (the old behavior) would leak one request's activations into the
    // padding rows of another's launch and inflate their measured work;
    // zero rows are dead weight the batch slicing drops.
    data.resize(per * pad_to, 0.0);

    if proto.layout() == Layout::Nhwc {
        let (_, c, h, w) = proto.dims4();
        let mut t = Tensor::zeros_nhwc(pad_to, c, h, w, proto.dtype());
        t.data_mut().copy_from_slice(&data);
        Ok(t)
    } else {
        let mut dims = proto.shape().dims().to_vec();
        dims[0] = pad_to;
        Ok(Tensor::from_vec(&dims, proto.dtype(), data)?)
    }
}

/// Extracts sample `index` (batch dimension 1) from a batched tensor —
/// the inverse of [`stack_batch`].
///
/// # Errors
///
/// Returns [`BoltError::BadInput`] for an out-of-range index or a layout
/// whose batch rows are not contiguous (column-major matrices).
pub fn slice_batch(batched: &Tensor, index: usize) -> Result<Tensor> {
    if !batch_outermost(batched.layout()) {
        return Err(BoltError::BadInput {
            reason: "slice_batch requires a batch-outermost layout (got a column-major matrix)"
                .into(),
        });
    }
    if batched.shape().rank() == 0 {
        return Err(BoltError::BadInput {
            reason: "slice_batch requires a batched (non-scalar) tensor".into(),
        });
    }
    let batch = batched.shape().dim(0);
    if index >= batch {
        return Err(BoltError::BadInput {
            reason: format!("sample index {index} out of range for batch {batch}"),
        });
    }
    let per = batched.numel() / batch;
    let data = batched.data()[index * per..(index + 1) * per].to_vec();
    if batched.layout() == Layout::Nhwc {
        let (_, c, h, w) = batched.dims4();
        let mut t = Tensor::zeros_nhwc(1, c, h, w, batched.dtype());
        t.data_mut().copy_from_slice(&data);
        Ok(t)
    } else {
        let mut dims = batched.shape().dims().to_vec();
        dims[0] = 1;
        Ok(Tensor::from_vec(&dims, batched.dtype(), data)?)
    }
}

/// Where a host operator finds its activation inputs. The reference
/// interpreter looks values up in its hash-map environment; the slot
/// executor resolves them through the plan's slot table (plus
/// chain-local values for fused groups).
pub(crate) trait ValueLookup {
    /// The tensor currently bound to `id`, if any.
    fn lookup(&self, id: NodeId) -> Option<&Tensor>;
}

impl ValueLookup for HashMap<NodeId, Tensor> {
    fn lookup(&self, id: NodeId) -> Option<&Tensor> {
        self.get(&id)
    }
}

/// Executes one host (TVM-fallback) operator functionally.
pub(crate) fn run_host_op(graph: &Graph, id: NodeId, env: &impl ValueLookup) -> Result<Tensor> {
    let node = graph.node(id);
    let input = |i: usize| -> Result<&Tensor> {
        let nid = node.inputs[i];
        if let Some(t) = env.lookup(nid) {
            return Ok(t);
        }
        graph.param(nid).ok_or_else(|| BoltError::BadInput {
            reason: format!("host op {} input {nid} unavailable", node.name),
        })
    };
    match &node.kind {
        OpKind::Activation(act) => {
            let mut t = input(0)?.clone();
            apply_slice(*act, t.data_mut());
            let dtype = t.dtype();
            for v in t.data_mut() {
                *v = dtype.quantize(*v);
            }
            Ok(t)
        }
        OpKind::Add => {
            let a = input(0)?;
            let b = input(1)?;
            add_tensors(a, b)
        }
        OpKind::BiasAdd => {
            let x = input(0)?;
            let b = input(1)?;
            bias_add(x, b)
        }
        OpKind::BatchNorm { eps } => {
            let x = input(0)?;
            let gamma = input(1)?.clone();
            let beta = input(2)?.clone();
            let mean = input(3)?.clone();
            let var = input(4)?.clone();
            let (n, c, h, w) = x.dims4();
            let mut out = x.clone();
            for ci in 0..c {
                let scale = gamma.data()[ci] / (var.data()[ci] + eps).sqrt();
                let shift = beta.data()[ci] - mean.data()[ci] * scale;
                for ni in 0..n {
                    for hi in 0..h {
                        for wi in 0..w {
                            out.set4(ni, ci, hi, wi, x.get4(ni, ci, hi, wi) * scale + shift);
                        }
                    }
                }
            }
            Ok(out)
        }
        OpKind::Pool {
            kind,
            window,
            stride,
            padding,
        } => {
            let x = input(0)?;
            pool(x, *kind, *window, *stride, *padding)
        }
        OpKind::GlobalAvgPool => {
            let x = input(0)?;
            let (n, c, h, w) = x.dims4();
            let mut out = Tensor::zeros(&[n, c], x.dtype());
            for ni in 0..n {
                for ci in 0..c {
                    let mut acc = 0.0;
                    for hi in 0..h {
                        for wi in 0..w {
                            acc += x.get4(ni, ci, hi, wi);
                        }
                    }
                    out.set2(ni, ci, acc / (h * w) as f32);
                }
            }
            Ok(out)
        }
        OpKind::Flatten => {
            let x = input(0)?;
            if x.shape().rank() == 4 {
                let (n, c, h, w) = x.dims4();
                let mut out = Tensor::zeros(&[n, c * h * w], x.dtype());
                for ni in 0..n {
                    for ci in 0..c {
                        for hi in 0..h {
                            for wi in 0..w {
                                // NCHW flatten order (the framework view).
                                let col = (ci * h + hi) * w + wi;
                                out.set2(ni, col, x.get4(ni, ci, hi, wi));
                            }
                        }
                    }
                }
                Ok(out)
            } else {
                let numel: usize = x.shape().dims()[1..].iter().product();
                Ok(Tensor::from_vec(
                    &[x.shape().dim(0), numel],
                    x.dtype(),
                    x.data().to_vec(),
                )?)
            }
        }
        OpKind::Softmax => {
            let x = input(0)?;
            let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
            let mut out = Tensor::zeros(&[rows, cols], x.dtype());
            for r in 0..rows {
                let mut max = f32::NEG_INFINITY;
                for c in 0..cols {
                    max = max.max(x.get2(r, c));
                }
                let mut denom = 0.0;
                for c in 0..cols {
                    denom += (x.get2(r, c) - max).exp();
                }
                for c in 0..cols {
                    out.set2(r, c, (x.get2(r, c) - max).exp() / denom);
                }
            }
            Ok(out)
        }
        OpKind::Concat => {
            let parts: Vec<&Tensor> = (0..node.inputs.len()).map(input).collect::<Result<_>>()?;
            let (n, _, h, w) = parts[0].dims4();
            let total_c: usize = parts.iter().map(|p| p.dims4().1).sum();
            let mut out = Tensor::zeros_nhwc(n, total_c, h, w, parts[0].dtype());
            let mut offset = 0;
            for part in parts {
                let (_, c, _, _) = part.dims4();
                for ni in 0..n {
                    for ci in 0..c {
                        for hi in 0..h {
                            for wi in 0..w {
                                out.set4(ni, offset + ci, hi, wi, part.get4(ni, ci, hi, wi));
                            }
                        }
                    }
                }
                offset += c;
            }
            Ok(out)
        }
        other => Err(BoltError::BadInput {
            reason: format!("host execution of {} is not supported", other.name()),
        }),
    }
}

fn add_tensors(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() == 4 {
        let (n, c, h, w) = a.dims4();
        let mut out = a.clone();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        out.set4(
                            ni,
                            ci,
                            hi,
                            wi,
                            a.get4(ni, ci, hi, wi) + b.get4(ni, ci, hi, wi),
                        );
                    }
                }
            }
        }
        Ok(out)
    } else {
        let mut out = a.clone();
        let dtype = out.dtype();
        for (o, bv) in out.data_mut().iter_mut().zip(b.data()) {
            *o = dtype.quantize(*o + bv);
        }
        Ok(out)
    }
}

fn bias_add(x: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = x.clone();
    if x.shape().rank() == 4 {
        let (n, c, h, w) = x.dims4();
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        out.set4(ni, ci, hi, wi, x.get4(ni, ci, hi, wi) + b.data()[ci]);
                    }
                }
            }
        }
    } else {
        let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
        for r in 0..rows {
            for c in 0..cols {
                out.set2(r, c, x.get2(r, c) + b.data()[c]);
            }
        }
    }
    Ok(out)
}

fn pool(
    x: &Tensor,
    kind: PoolKind,
    window: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let (n, c, h, w) = x.dims4();
    let p = (h + 2 * padding - window) / stride + 1;
    let q = (w + 2 * padding - window) / stride + 1;
    let mut out = Tensor::zeros_nhwc(n, c, p, q, x.dtype());
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..p {
                for ox in 0..q {
                    let mut acc = if kind == PoolKind::Max {
                        f32::NEG_INFINITY
                    } else {
                        0.0
                    };
                    let mut count = 0usize;
                    for ky in 0..window {
                        for kx in 0..window {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let v = x.get4(ni, ci, iy as usize, ix as usize);
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    let v = match kind {
                        PoolKind::Max => acc,
                        PoolKind::Avg => acc / count.max(1) as f32,
                    };
                    out.set4(ni, ci, oy, ox, v);
                }
            }
        }
    }
    Ok(out)
}

/// True for operators TVM's injective fusion merges into one elementwise
/// kernel.
pub(crate) fn is_injective(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Activation(_) | OpKind::BiasAdd | OpKind::Add | OpKind::BatchNorm { .. }
    )
}

/// Prices a fused group of host operators as one kernel: external inputs
/// are read once, only group outputs are written, intermediates stay in
/// registers (TVM's injective fusion). A single-node group degenerates to
/// [`host_op_time`].
pub(crate) fn host_group_time(arch: &GpuArch, graph: &Graph, nodes: &[NodeId]) -> KernelTime {
    if nodes.len() <= 1 {
        return host_op_time(arch, graph, nodes[0]);
    }
    let elt = DType::F16.size_bytes() as f64;
    let group: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    let mut in_bytes = 0.0;
    let mut out_bytes = 0.0;
    for &id in nodes {
        let node = graph.node(id);
        for &input in &node.inputs {
            if !group.contains(&input) && !matches!(graph.node(input).kind, OpKind::Constant { .. })
            {
                in_bytes += graph.node(input).shape.numel() as f64 * elt;
            }
        }
        let escapes =
            graph.consumers(id).iter().any(|c| !group.contains(c)) || graph.outputs().contains(&id);
        if escapes {
            out_bytes += node.shape.numel() as f64 * elt;
        }
    }
    let profile = KernelProfile::memory_only("tvm_fused_eltwise", in_bytes + out_bytes);
    simulate_kernel(arch, &profile)
}

/// Prices one host (TVM-fallback) operator: memory-bound elementwise /
/// reduction kernels at full alignment.
pub(crate) fn host_op_time(arch: &GpuArch, graph: &Graph, id: NodeId) -> KernelTime {
    let node = graph.node(id);
    let elt = DType::F16.size_bytes() as f64;
    let out_bytes = node.shape.numel() as f64 * elt;
    let in_bytes: f64 = node
        .inputs
        .iter()
        .map(|&i| graph.node(i).shape.numel() as f64 * elt)
        .sum();
    let bytes = match node.kind {
        OpKind::Flatten => 0.0, // a view, no kernel
        OpKind::Softmax => 3.0 * (in_bytes + out_bytes) / 2.0,
        _ => in_bytes + out_bytes,
    };
    if bytes == 0.0 {
        return KernelTime {
            compute_us: 0.0,
            dram_us: 0.0,
            smem_us: 0.0,
            launch_us: 0.0,
            tail_us: 0.0,
            total_us: 0.0,
            bound: bolt_gpu_sim::Boundedness::Launch,
            occupancy: bolt_gpu_sim::Occupancy {
                blocks_per_sm: 0,
                active_warps_per_sm: 0,
                fraction: 0.0,
                limited_by: bolt_gpu_sim::OccupancyLimit::Threads,
            },
        };
    }
    let profile = KernelProfile::memory_only(node.kind.name(), bytes);
    simulate_kernel(arch, &profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::GraphBuilder;
    use bolt_tensor::Activation;

    #[test]
    fn host_ops_execute() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 2, 4, 4]);
        let p = b.max_pool(x, 2, 2, "pool");
        let g = b.global_avg_pool(p, "gap");
        let graph = b.finish(&[g]);

        let mut env = HashMap::new();
        let input = Tensor::randn(&[1, 2, 4, 4], DType::F32, 1)
            .to_activation_layout(Layout::Nhwc)
            .unwrap();
        env.insert(graph.input_ids()[0], input.clone());
        let pooled = run_host_op(&graph, p, &env).unwrap();
        assert_eq!(pooled.dims4(), (1, 2, 2, 2));
        // Max pool really takes the max.
        let manual = input
            .get4(0, 0, 0, 0)
            .max(input.get4(0, 0, 0, 1))
            .max(input.get4(0, 0, 1, 0))
            .max(input.get4(0, 0, 1, 1));
        assert_eq!(pooled.get4(0, 0, 0, 0), manual);

        env.insert(p, pooled);
        let gap = run_host_op(&graph, g, &env).unwrap();
        assert_eq!(gap.shape().dims(), &[1, 2]);
    }

    #[test]
    fn softmax_normalizes() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[2, 4]);
        let s = b.softmax(x, "sm");
        let graph = b.finish(&[s]);
        let mut env = HashMap::new();
        env.insert(graph.input_ids()[0], Tensor::randn(&[2, 4], DType::F32, 2));
        let out = run_host_op(&graph, s, &env).unwrap();
        for r in 0..2 {
            let sum: f32 = (0..4).map(|c| out.get2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn flatten_uses_nchw_order() {
        let mut b = GraphBuilder::new(DType::F32);
        let x = b.input(&[1, 2, 2, 2]);
        let f = b.flatten(x, "flat");
        let graph = b.finish(&[f]);
        // NHWC-stored input whose logical NCHW values are 0..8.
        let nchw = Tensor::from_vec(
            &[1, 2, 2, 2],
            DType::F32,
            (0..8).map(|v| v as f32).collect(),
        )
        .unwrap();
        let nhwc = nchw.to_activation_layout(Layout::Nhwc).unwrap();
        let mut env = HashMap::new();
        env.insert(graph.input_ids()[0], nhwc);
        let out = run_host_op(&graph, f, &env).unwrap();
        // Flatten must follow NCHW logical order regardless of storage.
        let expect: Vec<f32> = (0..8).map(|v| v as f32).collect();
        assert_eq!(out.data(), &expect[..]);
    }

    #[test]
    fn host_add_and_bias_add_execute() {
        let mut g2 = GraphBuilder::new(DType::F32);
        let x2 = g2.input(&[2, 3]);
        let r = g2.activation(x2, Activation::ReLU, "relu");
        let graph = g2.finish(&[r]);
        let mut env = HashMap::new();
        env.insert(
            graph.input_ids()[0],
            Tensor::from_vec(&[2, 3], DType::F32, vec![-1.0, 2.0, -3.0, 4.0, -5.0, 6.0]).unwrap(),
        );
        let out = run_host_op(&graph, r, &env).unwrap();
        assert_eq!(out.data(), &[0.0, 2.0, 0.0, 4.0, 0.0, 6.0]);
    }

    /// Compile-time proof that compiled artifacts can be shared across
    /// threads behind an `Arc` (the serving layer depends on it): no
    /// interior mutability hides in `Step` or the kernels.
    #[test]
    fn compiled_model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledModel>();
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<Step>();
        assert_send_sync::<StepKind>();
        assert_send_sync::<TimingReport>();
    }

    fn compiled_mlp(batch: usize) -> CompiledModel {
        use bolt_tensor::Activation;
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[batch, 16]);
        let h = b.dense_bias(x, 8, "fc");
        let y = b.activation(h, Activation::ReLU, "relu");
        let graph = b.finish(&[y]);
        crate::BoltCompiler::new(GpuArch::tesla_t4(), crate::BoltConfig::default())
            .compile(&graph)
            .expect("mlp compiles")
    }

    #[test]
    fn run_rejects_wrong_input_count_with_typed_error() {
        let model = compiled_mlp(4);
        let err = model.run(&[]).unwrap_err();
        match &err {
            BoltError::BadInput { reason } => {
                assert!(reason.contains("expected 1 inputs, got 0"), "{reason}");
            }
            other => panic!("expected BadInput, got {other}"),
        }
    }

    #[test]
    fn run_rejects_mismatched_batch_with_expected_vs_got() {
        let model = compiled_mlp(4);
        let bad = Tensor::randn(&[2, 16], DType::F16, 3);
        let err = model.run(&[bad]).unwrap_err();
        match &err {
            BoltError::BadInput { reason } => {
                assert!(reason.contains("batch dimension mismatch"), "{reason}");
                assert!(reason.contains("4") && reason.contains("2"), "{reason}");
            }
            other => panic!("expected BadInput, got {other}"),
        }
    }

    #[test]
    fn run_rejects_wrong_rank_without_panicking() {
        let model = compiled_mlp(4);
        // Rank-4 tensor against a rank-2 input used to panic in
        // `Shape::dim` before validation compared ranks first.
        let bad = Tensor::randn(&[4, 2, 2, 4], DType::F16, 5);
        let err = model.run(&[bad]).unwrap_err();
        match &err {
            BoltError::BadInput { reason } => {
                assert!(reason.contains("rank mismatch"), "{reason}");
            }
            other => panic!("expected BadInput, got {other}"),
        }
    }

    #[test]
    fn run_batched_matches_per_sample_run_and_pads_partial_batches() {
        let model = compiled_mlp(4);
        let samples: Vec<Vec<Tensor>> = (0..3)
            .map(|s| vec![Tensor::randn(&[1, 16], DType::F16, 100 + s)])
            .collect();
        let batched = model.run_batched(&samples).expect("batched run");
        assert_eq!(batched.len(), 3, "padding rows must be dropped");

        let single = compiled_mlp(1);
        for (s, sample) in samples.iter().enumerate() {
            let direct = single.run(sample).expect("single run");
            assert_eq!(batched[s].len(), direct.len());
            for (a, b) in batched[s].iter().zip(&direct) {
                assert_eq!(a.shape(), b.shape());
                assert!(a.allclose(b, 1e-3).unwrap(), "sample {s} diverged");
            }
        }
    }

    #[test]
    fn run_batched_rejects_oversized_and_empty_batches() {
        let model = compiled_mlp(2);
        assert!(matches!(
            model.run_batched(&[]),
            Err(BoltError::BadInput { .. })
        ));
        let samples: Vec<Vec<Tensor>> = (0..3)
            .map(|s| vec![Tensor::randn(&[1, 16], DType::F16, s)])
            .collect();
        assert!(matches!(
            model.run_batched(&samples),
            Err(BoltError::BadInput { .. })
        ));
    }

    #[test]
    fn stack_and_slice_batch_round_trip_nhwc() {
        let samples: Vec<Tensor> = (0..2)
            .map(|s| {
                Tensor::randn(&[1, 3, 4, 4], DType::F32, 7 + s)
                    .to_activation_layout(Layout::Nhwc)
                    .unwrap()
            })
            .collect();
        let refs: Vec<&Tensor> = samples.iter().collect();
        let stacked = stack_batch(&refs, 4).expect("stack");
        assert_eq!(stacked.dims4(), (4, 3, 4, 4));
        assert_eq!(stacked.layout(), Layout::Nhwc);
        for (s, sample) in samples.iter().enumerate() {
            let back = slice_batch(&stacked, s).expect("slice");
            assert_eq!(back.data(), sample.data());
        }
        // Padding rows are zero-filled, not replicas of another sample.
        let pad = slice_batch(&stacked, 3).expect("pad slice");
        assert!(pad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn host_timing_is_positive_for_pool() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[32, 64, 56, 56]);
        let p = b.max_pool(x, 2, 2, "pool");
        let graph = b.finish(&[p]);
        let t = host_op_time(&GpuArch::tesla_t4(), &graph, p);
        assert!(t.total_us > 3.0);
        // Flatten is free.
        let mut b2 = GraphBuilder::new(DType::F16);
        let x2 = b2.input(&[32, 64, 7, 7]);
        let f = b2.flatten(x2, "flat");
        let g2 = b2.finish(&[f]);
        assert_eq!(host_op_time(&GpuArch::tesla_t4(), &g2, f).total_us, 0.0);
    }
}
