//! The Ansor end-to-end baseline backend (Figures 1, 8, 10).
//!
//! Times a whole model the way TVM + Ansor would: anchors run the tuned
//! auto-scheduler kernel (with TVM's injective fusion absorbing the
//! bias/activation/residual epilogue into the generated kernel), other
//! operators run TVM's memory-bound fallback kernels, and the model stays
//! in its native NCHW layout (no transforms, but also no tensor cores).

use std::collections::HashSet;

use bolt_ansor::{AnsorTuner, TuningReport};
use bolt_gpu_sim::{GpuArch, Timeline};
use bolt_graph::workload::node_workload;
use bolt_graph::{Graph, OpKind};

use crate::lower::absorb_epilogue_ext;
use crate::runtime::{host_op_time, TimingReport};
use crate::Result;

/// The Ansor baseline: tune once, then time graphs.
#[derive(Debug)]
pub struct AnsorBackend {
    arch: GpuArch,
    tuner: AnsorTuner,
}

impl AnsorBackend {
    /// Creates the baseline with the paper's recommended 900 trials/task.
    pub fn new(arch: &GpuArch) -> Self {
        AnsorBackend {
            arch: arch.clone(),
            tuner: AnsorTuner::new(arch),
        }
    }

    /// Creates the baseline with a reduced trial budget (tests / quick
    /// runs). Results are slightly worse, tuning proportionally faster —
    /// exactly like cutting `num_measure_trials` in real Ansor.
    pub fn with_trials(arch: &GpuArch, trials_per_task: usize) -> Self {
        AnsorBackend {
            arch: arch.clone(),
            tuner: AnsorTuner::with_trials(arch, trials_per_task),
        }
    }

    /// Tunes all tasks of `graph` (graph passes are assumed already run —
    /// pass the same deployed graph Bolt compiles for a fair comparison).
    pub fn tune(&self, graph: &Graph) -> TuningReport {
        self.tuner.tune_graph(graph)
    }

    /// Times `graph` end to end with tuned kernels.
    ///
    /// # Errors
    ///
    /// Returns an error if an anchor workload was not tuned in `report`.
    pub fn time_graph(&self, graph: &Graph, report: &TuningReport) -> Result<TimingReport> {
        let mut timeline = Timeline::new();
        let mut covered: HashSet<bolt_graph::NodeId> = HashSet::new();

        for node in graph.nodes() {
            if node.kind.is_data() || covered.contains(&node.id) {
                continue;
            }
            match node.kind {
                OpKind::Dense | OpKind::Conv2d { .. } => {
                    let workload = node_workload(graph, node.id).ok_or_else(|| {
                        crate::BoltError::BadInput {
                            reason: format!(
                                "anchor node {} ({}) has no extractable workload",
                                node.id.index(),
                                node.kind.name()
                            ),
                        }
                    })?;
                    let best = report.best_time_us(&workload).ok_or_else(|| {
                        crate::BoltError::BadInput {
                            reason: format!("workload {workload:?} was not tuned"),
                        }
                    })?;
                    // TVM fuses the injective epilogue — including
                    // bias + residual + activation together — into the
                    // generated kernel, so absorbed nodes cost nothing
                    // extra.
                    let absorbed = absorb_epilogue_ext(graph, node, true, true, true);
                    covered.extend(absorbed.covered.iter().copied());
                    timeline.push_raw(
                        format!("ansor_{}_{}", node.kind.name(), node.id.index()),
                        best,
                        "cuda-core",
                    );
                }
                _ if crate::runtime::is_injective(&node.kind) => {
                    // TVM fuses maximal injective chains into one kernel.
                    let mut group = vec![node.id];
                    let mut cur = node.id;
                    while let Some(next) = graph.single_consumer(cur) {
                        if crate::runtime::is_injective(&graph.node(next).kind) {
                            group.push(next);
                            cur = next;
                        } else {
                            break;
                        }
                    }
                    covered.extend(group.iter().copied());
                    let t = crate::runtime::host_group_time(&self.arch, graph, &group);
                    timeline.push(format!("tvm_eltwise_x{}_{}", group.len(), cur.index()), &t);
                }
                _ => {
                    covered.insert(node.id);
                    let t = host_op_time(&self.arch, graph, node.id);
                    timeline.push(format!("tvm_{}_{}", node.kind.name(), node.id.index()), &t);
                }
            }
        }
        Ok(TimingReport {
            total_us: timeline.total_us(),
            timeline,
        })
    }

    /// Convenience: tune + time in one call.
    ///
    /// # Errors
    ///
    /// As for [`AnsorBackend::time_graph`].
    pub fn evaluate(&self, graph: &Graph) -> Result<(TimingReport, TuningReport)> {
        let tuning = self.tune(graph);
        let timing = self.time_graph(graph, &tuning)?;
        Ok((timing, tuning))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoltCompiler, BoltConfig};
    use bolt_graph::GraphBuilder;
    use bolt_tensor::{Activation, DType};

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    fn small_cnn() -> Graph {
        let mut b = GraphBuilder::shapes_only(DType::F16);
        let x = b.input(&[32, 16, 28, 28]);
        let c1 = b.conv2d_bias(x, 32, 3, (1, 1), (1, 1), "c1");
        let r1 = b.activation(c1, Activation::ReLU, "r1");
        let c2 = b.conv2d_bias(r1, 32, 3, (1, 1), (1, 1), "c2");
        let r2 = b.activation(c2, Activation::ReLU, "r2");
        let gap = b.global_avg_pool(r2, "gap");
        let fc = b.dense_bias(gap, 10, "fc");
        b.finish(&[fc])
    }

    #[test]
    fn bolt_beats_ansor_end_to_end() {
        let graph = small_cnn();
        let backend = AnsorBackend::with_trials(&t4(), 96);
        let (ansor_time, tuning) = backend.evaluate(&graph).unwrap();

        let model = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&graph)
            .unwrap();
        let bolt_time = model.time();

        let speedup = ansor_time.total_us / bolt_time.total_us;
        assert!(
            speedup > 1.3 && speedup < 10.0,
            "Bolt should clearly win on FP16 CNNs: speedup {speedup:.2} \
             (bolt {:.0} us vs ansor {:.0} us)",
            bolt_time.total_us,
            ansor_time.total_us
        );

        // Tuning time: Bolt minutes, Ansor much longer per-trial budget.
        let bolt_minutes = model.tuning.tuning_seconds / 60.0;
        let ansor_minutes = tuning.tuning_seconds / 60.0;
        assert!(
            ansor_minutes > bolt_minutes,
            "ansor {ansor_minutes:.1} min vs bolt {bolt_minutes:.1} min"
        );
    }

    #[test]
    fn untuned_workload_is_an_error() {
        let graph = small_cnn();
        let backend = AnsorBackend::with_trials(&t4(), 8);
        let empty = bolt_ansor::AnsorTuner::with_trials(&t4(), 8).tune_workloads(&[]);
        assert!(backend.time_graph(&graph, &empty).is_err());
    }
}
