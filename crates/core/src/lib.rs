#![warn(missing_docs)]
//! # bolt
//!
//! The Bolt compiler (MLSys 2022): *hardware-native templated search*
//! bridging the gap between auto-tuners and vendor-library performance.
//!
//! Bolt sits between a Relay-like graph (`bolt-graph`) and a CUTLASS-like
//! templated kernel library (`bolt-cutlass`), following TVM's BYOC flow
//! (paper Figure 3):
//!
//! 1. **Graph optimizations** — BatchNorm folding / RepVGG
//!    re-parameterization (in `bolt-graph`), then Bolt's own deeper
//!    fusion: epilogue fusion and persistent-kernel fusion ([`lower`]).
//! 2. **Graph partitioning** — the subgraph Bolt supports is carved out;
//!    the rest falls back to the host compiler ([`compile`]).
//! 3. **Hardware-native profiling** — for each workload, the light-weight
//!    profiler measures tens of architecture-guided template
//!    configurations and picks the best ([`profiler`]); minutes, not
//!    hours.
//! 4. **Templated code generation** — kernels are emitted in the CUTLASS
//!    convention with layout transformation folded into the boundary
//!    kernels and automatic padding to alignment 8 ([`codegen`],
//!    [`runtime`]).
//!
//! The compiled artifact ([`CompiledModel`], a handle to an
//! [`ExecutionPlan`] with prepacked constants and liveness-planned
//! buffer slots) executes in two modes: *functional* (really computes,
//! for correctness tests) and *timing* (prices every kernel on the
//! target's `bolt-gpu-sim` architecture model — T4, V100, or A100 —
//! for the paper's performance experiments).
//!
//! # Quickstart
//!
//! ```
//! use bolt::{BoltCompiler, BoltConfig};
//! use bolt_gpu_sim::GpuArch;
//! use bolt_graph::GraphBuilder;
//! use bolt_tensor::{Activation, DType};
//!
//! // A tiny GEMM + bias + GELU model.
//! let mut b = GraphBuilder::new(DType::F16);
//! let x = b.input(&[64, 128]);
//! let h = b.dense_bias(x, 256, "fc");
//! let y = b.activation(h, Activation::Gelu, "gelu");
//! let graph = b.finish(&[y]);
//!
//! let compiler = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::default());
//! let model = compiler.compile(&graph).unwrap();
//! let report = model.time();
//! assert!(report.total_us > 0.0);
//! assert_eq!(model.steps().len(), 1); // dense+bias+gelu fused into one kernel
//! ```

pub mod baseline;
pub mod cache;
pub mod codegen;
pub mod compile;
pub mod config;
pub mod error;
pub mod faults;
pub mod lower;
pub mod plan;
pub mod profiler;
pub mod runtime;

pub use baseline::AnsorBackend;
pub use cache::{arch_fingerprint, TuneBundle, TuneShard};
pub use compile::BoltCompiler;
pub use config::BoltConfig;
pub use error::BoltError;
pub use faults::{ChaosConfig, FaultEvent, FaultSite};
pub use plan::{
    ExecutionPlan, KvArena, KvSpec, KvWorkspace, PackedConsts, StepObserver, StepTiming,
    StepTimings,
};
pub use profiler::{BoltProfiler, ProfileTask, ProfiledKernel, ProfilerStats};
pub use runtime::{slice_batch, stack_batch, CompiledModel, Step, StepKind, TimingReport};

/// Result alias for compiler operations.
pub type Result<T> = std::result::Result<T, BoltError>;
