//! Templated code generation: render the CUDA C++ a compiled model would
//! ship (paper Section 3.2.3).
//!
//! Each kernel step emits its exact CUTLASS instantiation via
//! `bolt_cutlass::emit`; boundary layout transforms and pad kernels emit
//! their raw CUDA; host steps emit a comment marking the TVM fallback.

use crate::runtime::{CompiledModel, StepKind};

/// Renders the full CUDA source bundle of a compiled model.
pub fn emit_model(model: &CompiledModel) -> String {
    let cc = model.arch().compute_capability;
    let mut out = String::new();
    out.push_str(&format!(
        "// ============================================================\n\
         // Bolt generated runtime module\n\
         // target: {} (sm_{}{})\n\
         // kernels: {}\n\
         // ============================================================\n\n",
        model.arch().name,
        cc.0,
        cc.1,
        model.kernel_count()
    ));
    for (i, step) in model.steps().iter().enumerate() {
        out.push_str(&format!("// ---- step {i}: {} ----\n", step.name));
        match &step.kind {
            StepKind::Gemm { kernel, .. } => {
                out.push_str(&bolt_cutlass::emit::emit_gemm(kernel, cc));
            }
            StepKind::Conv2d { kernel, .. } => {
                out.push_str(&bolt_cutlass::emit::emit_conv2d(kernel, cc));
            }
            StepKind::B2bGemm { kernel, .. } => {
                out.push_str(&bolt_cutlass::emit::emit_b2b_gemm(kernel, cc));
            }
            StepKind::GemmChain { chain, .. } => {
                out.push_str(&format!(
                    "// persistent chain: {} fused GEMM stages ({})\n",
                    chain.len(),
                    chain.residence
                ));
                // Emit the equivalent pairwise template for the first two
                // stages; deeper chains duplicate the same pipeline pattern.
                let head = bolt_cutlass::B2bGemmKernel {
                    gemm0: chain.stages[0].problem,
                    gemm1: chain.stages[1].problem,
                    config0: chain.stages[0].config,
                    config1: chain.stages[1].config,
                    epilogue0: chain.stages[0].epilogue,
                    epilogue1: chain.stages[1].epilogue,
                    residence: chain.residence,
                    parallel_m_rows: chain.parallel_m_rows,
                };
                out.push_str(&bolt_cutlass::emit::emit_b2b_gemm(&head, cc));
            }
            StepKind::B2bConv { kernel, .. } => {
                out.push_str(&bolt_cutlass::emit::emit_b2b_gemm(
                    &kernel.as_b2b_gemm(),
                    cc,
                ));
            }
            StepKind::LayoutTransform { bytes, fused } => {
                out.push_str(&format!(
                    "// layout transform ({} bytes, {})\n",
                    *bytes as u64,
                    if *fused {
                        "folded into adjacent kernel"
                    } else {
                        "standalone kernel"
                    }
                ));
                if !fused {
                    out.push_str(&bolt_cutlass::emit::emit_layout_transform(1, 1, 1, 1, 1));
                }
            }
            StepKind::PadChannels { bytes } => {
                out.push_str(&format!(
                    "// channel padding kernel ({} bytes)\n",
                    *bytes as u64
                ));
            }
            StepKind::Host => {
                out.push_str("// host fallback (compiled by TVM)\n");
            }
        }
        out.push('\n');
    }
    out
}

impl CompiledModel {
    /// Renders the CUDA source bundle of this model. See [`emit_model`].
    pub fn emit_cuda(&self) -> String {
        emit_model(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::{BoltCompiler, BoltConfig};
    use bolt_gpu_sim::GpuArch;
    use bolt_graph::GraphBuilder;
    use bolt_tensor::{Activation, DType};

    #[test]
    fn emission_covers_all_kernels() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[2, 3, 16, 16]);
        let c = b.conv2d_bias(x, 8, 3, (1, 1), (1, 1), "c1");
        let r = b.activation(c, Activation::Hardswish, "hsw");
        let g = b.finish(&[r]);
        let model = BoltCompiler::new(GpuArch::tesla_t4(), BoltConfig::default())
            .compile(&g)
            .unwrap();
        let code = model.emit_cuda();
        assert!(code.contains("Bolt generated runtime module"));
        assert!(code.contains("DefaultConv2dFprop"));
        assert!(code.contains("Sm75"));
        assert!(code.contains("HardSwish"));
        assert!(code.contains("layout transform"));
    }
}
