//! The execution plan: the compiled artifact the runtime executes.
//!
//! Bolt's graph-level wins (epilogue fusion, persistent kernels, padding,
//! layout planning — §3.1–3.2) only show up end-to-end when the runtime
//! does not give them back in per-request overhead. The
//! [`ExecutionPlan`] makes the artifact/interpreter split explicit, the
//! same way TVM compiles to a statically planned module:
//!
//! * **Constant prepacking** — every weight is repacked into its
//!   kernel-native layout once at plan-build time (dense `(units, in)` →
//!   GEMM `B` operand `(in, units)`; conv filters KCRS → KRSC with
//!   channel padding folded in) and stored in the plan behind an `Arc`.
//!   Execution never touches the logical parameter again.
//! * **Liveness-planned buffer slots** — a backward liveness pass over
//!   the step list assigns every non-constant value to a reusable buffer
//!   slot; a value's slot is freed at its last use and handed to later
//!   intermediates. Peak memory is [`ExecutionPlan::workspace_bytes`],
//!   bounded by the widest set of simultaneously-live values instead of
//!   the whole graph.
//! * **One step-level executor** — the functional and timing paths drive
//!   the same step walk; a [`StepObserver`] hook sees every step with its
//!   simulated [`KernelTime`], so benches and the serving layer can
//!   attribute latency per kernel without a second interpreter.
//!
//! [`ExecutionPlan::run_reference`] keeps the pre-refactor interpreter
//! (hash-map environment, clone-per-fetch, repack-per-call) alive as a
//! semantic oracle and benchmark baseline.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile, KernelTime, Timeline};
use bolt_graph::{Graph, NodeId, OpKind};
use bolt_tensor::conv_ref::filter_as_matrix;
use bolt_tensor::{DType, Layout, MatrixLayout, Tensor};

use crate::config::BoltConfig;
use crate::error::BoltError;
use crate::runtime::{
    host_group_time, run_host_op, slice_batch, stack_batch, Step, StepKind, TimingReport,
    ValueLookup,
};
use crate::Result;

// ---------------------------------------------------------------------------
// Prepacked constants
// ---------------------------------------------------------------------------

/// A step's constants, repacked once into kernel-native layouts.
///
/// `weights`/`biases` are in kernel-operand order (one entry per GEMM /
/// conv stage for persistent kernels). Steps without constants carry
/// empty vectors.
#[derive(Debug, Clone, Default)]
pub struct PackedConsts {
    /// Prepacked weight operands (dense `(in, units)`, filters KRSC).
    pub weights: Vec<Arc<Tensor>>,
    /// Conv filters additionally prepacked as implicit-GEMM `B` operands
    /// (`(R*S*C, K)` row-major), one per conv stage — the per-call
    /// `filter_as_matrix` repack the old executor paid on every run.
    pub filter_mats: Vec<Arc<Tensor>>,
    /// Per-stage bias vectors, if present.
    pub biases: Vec<Option<Arc<Tensor>>>,
    /// False when the graph carries shapes-only parameters (nothing to
    /// pack); functional execution then fails lazily like the old
    /// interpreter, while timing remains fully usable.
    pub materialized: bool,
}

/// Dense weight `(units, in)` → GEMM `B` operand `(in, units)`.
pub(crate) fn pack_dense_weight(w: &Tensor) -> Tensor {
    let (u, k) = (w.shape().dim(0), w.shape().dim(1));
    let mut b = Tensor::zeros(&[k, u], w.dtype());
    for i in 0..u {
        for j in 0..k {
            b.set2(j, i, w.get2(i, j));
        }
    }
    b
}

/// Conv filter logical `(K, C, R, S)` → physical KRSC, optionally
/// zero-padded to `pad_c` input channels.
pub(crate) fn pack_conv_filter(w: &Tensor, pad_c: Option<usize>) -> Tensor {
    let dims = w.shape().dims();
    let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
    let cc = pad_c.unwrap_or(c);
    let mut out = Tensor::zeros(&[k, r, s, cc], w.dtype());
    let src = w.data();
    let dst = out.data_mut();
    for ki in 0..k {
        for ci in 0..c {
            for ri in 0..r {
                for si in 0..s {
                    let from = ((ki * c + ci) * r + ri) * s + si;
                    let to = ((ki * r + ri) * s + si) * cc + ci;
                    dst[to] = src[from];
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Buffer-slot plan (liveness)
// ---------------------------------------------------------------------------

/// The memory plan: which buffer slot each value lives in and when each
/// slot is released back for reuse.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotPlan {
    /// Value (graph input or step output) → slot index.
    pub(crate) slot_of: HashMap<NodeId, usize>,
    /// Slots whose resident value dies at step `i` (released after the
    /// step's result is computed, before it is stored — so the result may
    /// reuse a dying input's slot).
    pub(crate) release_after: Vec<Vec<usize>>,
    /// Per-slot capacity: the largest value (logical dtype bytes) ever
    /// resident in the slot.
    pub(crate) slot_bytes: Vec<u64>,
    /// Sum of all planned values' bytes — what the old grow-only
    /// environment kept live simultaneously.
    pub(crate) total_value_bytes: u64,
}

impl SlotPlan {
    /// Runs liveness over `steps` and assigns slots first-fit from a
    /// free list (LIFO, so reuse favors the most recently freed — and
    /// therefore similarly sized — buffer).
    fn build(graph: &Graph, steps: &[Step]) -> SlotPlan {
        let is_const = |id: NodeId| matches!(graph.node(id).kind, OpKind::Constant { .. });
        let outputs: HashSet<NodeId> = graph.outputs().iter().copied().collect();

        // Last step (index) that reads each non-constant value. Constants
        // are excluded: they live in the plan (prepacked) or the graph.
        let mut last_use: HashMap<NodeId, usize> = HashMap::new();
        for (i, step) in steps.iter().enumerate() {
            for &input in &step.inputs {
                if !is_const(input) {
                    last_use.insert(input, i);
                }
            }
        }

        let mut plan = SlotPlan {
            release_after: vec![Vec::new(); steps.len()],
            ..SlotPlan::default()
        };
        let mut free: Vec<usize> = Vec::new();

        for id in graph.input_ids() {
            plan.assign(graph, id, &mut free);
        }
        for (i, step) in steps.iter().enumerate() {
            // Free dying inputs before placing the output: the executor
            // computes a step's result while its inputs are still
            // resident, releases, then stores — so the output may land in
            // a slot an input just vacated.
            let mut seen = HashSet::new();
            for &input in &step.inputs {
                if is_const(input)
                    || input == step.output
                    || outputs.contains(&input)
                    || last_use.get(&input) != Some(&i)
                    || !seen.insert(input)
                {
                    continue;
                }
                if let Some(&slot) = plan.slot_of.get(&input) {
                    free.push(slot);
                    plan.release_after[i].push(slot);
                }
            }
            // Pad/layout steps forward their input (`output == input`,
            // already assigned); everything else gets a slot here.
            if !plan.slot_of.contains_key(&step.output) {
                plan.assign(graph, step.output, &mut free);
            }
        }
        plan
    }

    fn assign(&mut self, graph: &Graph, id: NodeId, free: &mut Vec<usize>) {
        let node = graph.node(id);
        let bytes = (node.shape.numel() * node.dtype.size_bytes()) as u64;
        self.total_value_bytes += bytes;
        let slot = free.pop().unwrap_or_else(|| {
            self.slot_bytes.push(0);
            self.slot_bytes.len() - 1
        });
        self.slot_bytes[slot] = self.slot_bytes[slot].max(bytes);
        self.slot_of.insert(id, slot);
    }
}

// ---------------------------------------------------------------------------
// Workspace pool
// ---------------------------------------------------------------------------

/// Reusable scratch memory for one in-flight run.
///
/// A plan keeps a pool of these ([`ExecutionPlan`] `pool` field); `run` /
/// `run_batched` acquire a workspace, thread it through every step, and
/// release it back when done. After a couple of warmup runs the spare
/// stack holds a buffer for every intermediate the plan produces, so the
/// steady-state hot path performs **zero** heap allocations for
/// intermediates (only escaping outputs are freshly allocated).
#[derive(Debug, Default)]
struct Workspace {
    /// Retired intermediate buffers, LIFO. The executor's lease/recycle
    /// sequence is deterministic per plan, so pop-from-the-top hands each
    /// step the same (already right-sized) buffer on every run.
    spare: Vec<Vec<f32>>,
    /// GEMM tile accumulator scratch.
    acc: Vec<f32>,
    /// im2col scratch for conv steps.
    cols: Vec<f32>,
    /// Persistent-kernel intermediate scratch (B2B stage handoff / chain
    /// ping).
    d0: Vec<f32>,
    /// Chain pong scratch.
    d1: Vec<f32>,
}

impl Workspace {
    /// Pops a spare buffer (or allocates on the first runs) and resizes
    /// it to `numel`. Callers overwrite every element.
    fn lease(&mut self, numel: usize) -> Vec<f32> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.resize(numel, 0.0);
        buf
    }

    /// Returns a retired buffer to the spare stack.
    fn recycle(&mut self, buf: Vec<f32>) {
        self.spare.push(buf);
    }
}

/// Upper bound on pooled workspaces (one per concurrently executing
/// run; beyond this, extra workspaces are simply dropped).
const WORKSPACE_POOL_CAP: usize = 8;

// ---------------------------------------------------------------------------
// KV workspaces (autoregressive decode) — paged block allocator
// ---------------------------------------------------------------------------

/// Geometry of a per-sequence attention KV cache: `layers` decoder
/// layers, each holding a key matrix and a value matrix of up to
/// `max_seq` rows of width `kv_dim`, paged into fixed-size blocks of
/// `block_rows` sequence positions each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvSpec {
    /// Decoder layers (each owns one K and one V region).
    pub layers: usize,
    /// Row width: `heads * head_dim`.
    pub kv_dim: usize,
    /// Capacity in sequence positions (prompt + generated tokens).
    pub max_seq: usize,
    /// Sequence positions per block — the paging granularity. One
    /// block extends a sequence's usable context by `block_rows`
    /// positions across the *whole* stack: it holds `block_rows` K
    /// rows and `block_rows` V rows for every layer.
    pub block_rows: usize,
}

impl KvSpec {
    /// Total f32 elements one *full-context* sequence occupies (its
    /// block table grown to cover `max_seq`).
    pub fn numel(&self) -> usize {
        self.blocks_for(self.max_seq) * self.block_numel()
    }

    /// Full-context footprint in bytes (f32 canonical storage).
    pub fn bytes(&self) -> u64 {
        self.numel() as u64 * 4
    }

    /// f32 elements in one block.
    pub fn block_numel(&self) -> usize {
        self.layers * 2 * self.block_rows * self.kv_dim
    }

    /// One block's backing-store footprint in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_numel() as u64 * 4
    }

    /// Blocks needed to cover `rows` sequence positions (ceiling).
    pub fn blocks_for(&self, rows: usize) -> usize {
        rows.div_ceil(self.block_rows.max(1))
    }
}

/// A per-sequence KV cache backed by a **block table**: a list of
/// fixed-size tensors, each covering `block_rows` consecutive sequence
/// positions for every layer and both K/V regions. The table grows one
/// block at a time via [`KvArena::reserve`] as the sequence lengthens,
/// so resident KV memory tracks the *actual* context length instead of
/// `max_seq` — the paged-KV discipline of vLLM-style servers.
///
/// Blocks come from the arena's free list, so steady-state decode
/// performs **zero** tensor allocations: `bolt_tensor::alloc_count()`
/// stays flat across appends — the property the `kv_no_alloc` tier-1
/// test pins.
///
/// Writes and commits are separated so a mid-step failure needs no
/// rollback: rows written past [`KvWorkspace::len`] are invisible
/// until [`KvWorkspace::commit`] publishes them, and a retried step
/// simply overwrites them. Capacity misuse surfaces as typed
/// [`BoltError::KvCapacity`] errors, not panics, so the serving layer
/// can preempt-and-recompute instead of losing a worker.
#[derive(Debug)]
pub struct KvWorkspace {
    spec: KvSpec,
    /// Committed sequence length (rows visible to readers).
    len: usize,
    /// Block table: entry `b` covers positions `[b*block_rows,
    /// (b+1)*block_rows)`. Each block is `[layers * 2 * block_rows,
    /// kv_dim]`: per layer, `block_rows` K rows then `block_rows` V
    /// rows.
    blocks: Vec<Tensor>,
}

impl KvWorkspace {
    /// An empty workspace with no blocks reserved. Rows become
    /// writable only after [`KvArena::reserve`] grows the block table.
    pub fn new(spec: KvSpec) -> Self {
        assert!(
            spec.layers > 0 && spec.kv_dim > 0 && spec.max_seq > 0 && spec.block_rows > 0,
            "degenerate KvSpec {spec:?}"
        );
        KvWorkspace {
            spec,
            len: 0,
            blocks: Vec::new(),
        }
    }

    /// The geometry this workspace pages against.
    pub fn spec(&self) -> KvSpec {
        self.spec
    }

    /// Committed sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first commit.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sequence positions the block table currently covers (writable
    /// without further reservation), capped at `max_seq`.
    pub fn reserved_rows(&self) -> usize {
        (self.blocks.len() * self.spec.block_rows).min(self.spec.max_seq)
    }

    /// Blocks currently in the table.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Writes one K row and one V row for `layer` at position `pos`,
    /// in place. `pos` may lie at or past [`KvWorkspace::len`] (the
    /// rows stay invisible until committed) but must fall inside the
    /// reserved block table — otherwise a recoverable
    /// [`BoltError::KvCapacity`] is returned. Row-width and layer
    /// mismatches remain programmer errors (asserts).
    pub fn write_row(
        &mut self,
        layer: usize,
        pos: usize,
        k_row: &[f32],
        v_row: &[f32],
    ) -> Result<()> {
        let d = self.spec.kv_dim;
        assert!(layer < self.spec.layers, "layer {layer} out of range");
        assert_eq!(k_row.len(), d, "K row width");
        assert_eq!(v_row.len(), d, "V row width");
        if pos >= self.reserved_rows() {
            return Err(BoltError::KvCapacity {
                pos,
                reserved: self.reserved_rows(),
                max_seq: self.spec.max_seq,
            });
        }
        let br = self.spec.block_rows;
        let (block, row) = (pos / br, pos % br);
        let kb = ((layer * 2) * br + row) * d;
        let vb = ((layer * 2 + 1) * br + row) * d;
        let data = self.blocks[block].data_mut();
        data[kb..kb + d].copy_from_slice(k_row);
        data[vb..vb + d].copy_from_slice(v_row);
        Ok(())
    }

    /// Publishes (or rolls back to) a committed length. The single
    /// transaction point: a decode step writes its rows, finishes the
    /// whole layer stack, then commits `len + 1` once. Committing past
    /// the reserved block table is a recoverable
    /// [`BoltError::KvCapacity`].
    pub fn commit(&mut self, len: usize) -> Result<()> {
        if len > self.reserved_rows() {
            return Err(BoltError::KvCapacity {
                pos: len,
                reserved: self.reserved_rows(),
                max_seq: self.spec.max_seq,
            });
        }
        self.len = len;
        Ok(())
    }

    /// The first `n` key rows of `layer` as per-block contiguous
    /// chunks, in position order; the chunks concatenate to exactly
    /// `n * kv_dim` elements. `n` may exceed the committed length (up
    /// to the reserved rows) so a step can read rows it has written
    /// but not yet published. Reading past the reserved block table is
    /// a recoverable [`BoltError::KvCapacity`].
    pub fn key_chunks(&self, layer: usize, n: usize) -> Result<Vec<&[f32]>> {
        self.chunks(layer, 0, n)
    }

    /// The first `n` value rows of `layer`; see
    /// [`KvWorkspace::key_chunks`].
    pub fn value_chunks(&self, layer: usize, n: usize) -> Result<Vec<&[f32]>> {
        self.chunks(layer, 1, n)
    }

    fn chunks(&self, layer: usize, region: usize, n: usize) -> Result<Vec<&[f32]>> {
        assert!(layer < self.spec.layers, "layer {layer} out of range");
        if n > self.reserved_rows() {
            return Err(BoltError::KvCapacity {
                pos: n,
                reserved: self.reserved_rows(),
                max_seq: self.spec.max_seq,
            });
        }
        let br = self.spec.block_rows;
        let d = self.spec.kv_dim;
        let base = (layer * 2 + region) * br * d;
        let mut out = Vec::with_capacity(self.spec.blocks_for(n));
        let mut remaining = n;
        for block in &self.blocks {
            if remaining == 0 {
                break;
            }
            let rows = remaining.min(br);
            out.push(&block.data()[base..base + rows * d]);
            remaining -= rows;
        }
        Ok(out)
    }

    /// Forgets all committed rows (the block table is retained), so a
    /// preempted-and-readmitted sequence can replay its prefill into
    /// already-reserved blocks without touching the pool.
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// Appends one block to the table (arena reserve path).
    fn push_block(&mut self, block: Tensor) {
        self.blocks.push(block);
    }

    /// Detaches the block table (arena release path).
    fn take_blocks(&mut self) -> Vec<Tensor> {
        self.len = 0;
        std::mem::take(&mut self.blocks)
    }
}

/// A budgeted pool of fixed-size KV blocks shared by every sequence in
/// a batcher — the allocation arm of the KV memory governor.
///
/// The pool hands out at most `budget_blocks` blocks at a time.
/// Released blocks return to a free list and are reused LIFO, so a
/// warm pool serves reservations with **zero** fresh tensor
/// allocations ([`KvArena::fresh_allocations`] stops growing).
/// When every block under the budget is in use (or withheld by
/// memory-pressure injection — [`KvArena::set_withheld`]), a
/// reservation fails with a recoverable [`BoltError::KvExhausted`]
/// and the serving layer preempts a victim sequence or queues the
/// admission. Exhaustion is a scheduling event here, never a panic.
#[derive(Debug)]
pub struct KvArena {
    spec: KvSpec,
    budget: usize,
    pool: Mutex<KvPool>,
    fresh: AtomicU64,
    reused: AtomicU64,
}

#[derive(Debug)]
struct KvPool {
    /// Materialized blocks awaiting reuse (LIFO).
    free: Vec<Tensor>,
    /// Blocks currently attached to live workspaces.
    in_use: usize,
    /// Blocks transiently unusable (chaos `KvPressure` or an external
    /// cap). Pure accounting: no specific tensor is marked, the count
    /// just shrinks what reservations may take.
    withheld: usize,
}

impl KvArena {
    /// An arena paging blocks of geometry `spec`, handing out at most
    /// `budget_blocks` at a time.
    pub fn new(spec: KvSpec, budget_blocks: usize) -> Self {
        KvArena {
            spec,
            budget: budget_blocks.max(1),
            pool: Mutex::new(KvPool {
                free: Vec::new(),
                in_use: 0,
                withheld: 0,
            }),
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The geometry every block serves.
    pub fn spec(&self) -> KvSpec {
        self.spec
    }

    /// The hard cap on simultaneously outstanding blocks.
    pub fn budget_blocks(&self) -> usize {
        self.budget
    }

    /// An empty workspace; its block table grows via
    /// [`KvArena::reserve`].
    pub fn lease(&self) -> KvWorkspace {
        KvWorkspace::new(self.spec)
    }

    /// Grows `ws`'s block table until it covers `rows` sequence
    /// positions, taking blocks from the free list (or materializing
    /// fresh ones while the pool is cold). On [`BoltError::KvExhausted`]
    /// the blocks acquired so far stay attached — after the caller
    /// frees capacity (preempting a victim), retrying reserves only the
    /// remainder. `rows > max_seq` is a [`BoltError::KvCapacity`].
    pub fn reserve(&self, ws: &mut KvWorkspace, rows: usize) -> Result<()> {
        assert_eq!(ws.spec(), self.spec, "workspace geometry mismatch");
        if rows > self.spec.max_seq {
            return Err(BoltError::KvCapacity {
                pos: rows,
                reserved: ws.reserved_rows(),
                max_seq: self.spec.max_seq,
            });
        }
        let target = self.spec.blocks_for(rows);
        while ws.block_count() < target {
            let block = {
                let mut pool = self.pool.lock().unwrap();
                if pool.in_use + pool.withheld >= self.budget {
                    return Err(BoltError::KvExhausted {
                        needed: target - ws.block_count(),
                        in_use: pool.in_use,
                        budget: self.budget,
                        withheld: pool.withheld,
                    });
                }
                pool.in_use += 1;
                pool.free.pop()
            };
            let block = match block {
                Some(b) => {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    b
                }
                None => {
                    self.fresh.fetch_add(1, Ordering::Relaxed);
                    Tensor::zeros(
                        &[
                            self.spec.layers * 2 * self.spec.block_rows,
                            self.spec.kv_dim,
                        ],
                        DType::F32,
                    )
                }
            };
            ws.push_block(block);
        }
        Ok(())
    }

    /// Returns every block of a retired (or preempted) workspace to
    /// the free list. Workspaces of mismatched geometry are dropped
    /// whole (their blocks were never this pool's).
    pub fn release(&self, mut ws: KvWorkspace) {
        if ws.spec() != self.spec {
            return;
        }
        let blocks = ws.take_blocks();
        if blocks.is_empty() {
            return;
        }
        let mut pool = self.pool.lock().unwrap();
        pool.in_use = pool.in_use.saturating_sub(blocks.len());
        pool.free.extend(blocks);
    }

    /// Transiently withholds `n` blocks from the usable budget (chaos
    /// `KvPressure`, or an external cap). Accounting only: live
    /// workspaces keep their blocks, but new reservations see a pool
    /// shrunk by `n` until the count is restored to 0. May push
    /// `in_use + withheld` past the budget — reservations then fail
    /// until enough live blocks release.
    pub fn set_withheld(&self, n: usize) {
        self.pool.lock().unwrap().withheld = n.min(self.budget);
    }

    /// Blocks currently withheld from the usable budget.
    pub fn withheld(&self) -> usize {
        self.pool.lock().unwrap().withheld
    }

    /// Blocks attached to live workspaces right now.
    pub fn in_use_blocks(&self) -> usize {
        self.pool.lock().unwrap().in_use
    }

    /// Blocks a reservation could still take: budget minus in-use
    /// minus withheld (saturating at 0).
    pub fn free_blocks(&self) -> usize {
        let pool = self.pool.lock().unwrap();
        self.budget.saturating_sub(pool.in_use + pool.withheld)
    }

    /// Bytes of KV backing store currently materialized (live blocks
    /// plus the warm free list) — the number the online engine
    /// manager charges against its memory budget.
    pub fn resident_bytes(&self) -> u64 {
        let pool = self.pool.lock().unwrap();
        (pool.in_use + pool.free.len()) as u64 * self.spec.block_bytes()
    }

    /// Blocks materialized from scratch (cold-start cost).
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Reservations served from the free list (the steady-state path).
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Currently pooled free blocks (materialized, awaiting reuse).
    pub fn free_list_len(&self) -> usize {
        self.pool.lock().unwrap().free.len()
    }
}

/// A value resident in a buffer slot during one run. Graph inputs that
/// are already in the internal layout are borrowed straight from the
/// caller's slice — the old executor cloned every input up front.
enum Value<'a> {
    /// An intermediate (or converted input) owned by this run; its
    /// backing buffer is recycled into the workspace when it dies.
    Owned(Tensor),
    /// A caller-owned input, borrowed for the duration of the run.
    Borrowed(&'a Tensor),
}

impl Value<'_> {
    fn get(&self) -> &Tensor {
        match self {
            Value::Owned(t) => t,
            Value::Borrowed(t) => t,
        }
    }
}

// ---------------------------------------------------------------------------
// Step observation
// ---------------------------------------------------------------------------

/// Per-step observation hook shared by the functional and timing paths.
///
/// The executor calls [`StepObserver::observe`] once per step, in
/// execution order, with the step's simulated [`KernelTime`] — the hook
/// benches and the serving layer use to attribute latency per kernel.
pub trait StepObserver {
    /// Called after step `index` executes (functional mode) or is priced
    /// (timing mode).
    fn observe(&mut self, index: usize, step: &Step, time: &KernelTime);
}

/// One observed step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Step index in plan order.
    pub index: usize,
    /// The step's display name.
    pub name: String,
    /// Simulated time including launch overhead, µs.
    pub total_us: f64,
    /// Launch overhead portion, µs.
    pub launch_us: f64,
}

/// A [`StepObserver`] that records every step's name and simulated time.
#[derive(Debug, Clone, Default)]
pub struct StepTimings {
    /// Observed steps, in execution order.
    pub steps: Vec<StepTiming>,
}

impl StepTimings {
    /// Scales the compute portion of every step by batch occupancy
    /// (`rows / capacity`), keeping launch overhead intact.
    ///
    /// A partial batch still launches every kernel, but the zero-padded
    /// tail rows are not real work — attributing the full bucket-sized
    /// kernel time to a half-empty launch overstates per-sample cost.
    #[must_use]
    pub fn scaled_occupancy(&self, rows: usize, capacity: usize) -> StepTimings {
        let frac = if capacity == 0 {
            1.0
        } else {
            (rows.min(capacity) as f64) / capacity as f64
        };
        StepTimings {
            steps: self
                .steps
                .iter()
                .map(|s| StepTiming {
                    index: s.index,
                    name: s.name.clone(),
                    total_us: s.launch_us + (s.total_us - s.launch_us) * frac,
                    launch_us: s.launch_us,
                })
                .collect(),
        }
    }
}

impl StepObserver for StepTimings {
    fn observe(&mut self, index: usize, step: &Step, time: &KernelTime) {
        self.steps.push(StepTiming {
            index,
            name: step.name.clone(),
            total_us: time.total_us,
            launch_us: time.launch_us,
        });
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// The compiled artifact: ordered steps, prepacked constants, and a
/// liveness-planned slot table, executable in functional or timing mode.
#[derive(Debug)]
pub struct ExecutionPlan {
    pub(crate) arch: GpuArch,
    pub(crate) graph: Graph,
    pub(crate) steps: Vec<Step>,
    pub(crate) config: BoltConfig,
    /// Per-step prepacked constants (index-aligned with `steps`).
    packed: Vec<PackedConsts>,
    /// The memory plan.
    slots: SlotPlan,
    /// Pool of reusable run workspaces (LIFO).
    pool: Mutex<Vec<Workspace>>,
}

/// Looks up values for host ops during slot execution: fused-chain
/// locals first, then the slot table (params resolve inside
/// `run_host_op` via the graph).
struct HostScope<'a, 'b> {
    plan: &'a ExecutionPlan,
    state: &'a [Option<Value<'b>>],
    locals: &'a HashMap<NodeId, Tensor>,
}

impl ValueLookup for HostScope<'_, '_> {
    fn lookup(&self, id: NodeId) -> Option<&Tensor> {
        self.locals.get(&id).or_else(|| {
            self.plan
                .slots
                .slot_of
                .get(&id)
                .and_then(|&slot| self.state[slot].as_ref().map(Value::get))
        })
    }
}

/// Drops standalone [`StepKind::PadChannels`] steps whose padding a
/// downstream conv step absorbs (fusion-aware plan building).
///
/// A pad step forwards its input unchanged (`output == inputs[0]`) — it
/// exists only to charge the padding kernel Bolt's §3.2.3 transform
/// would launch. The implicit-GEMM lowering reads missing channels as
/// zero directly from the unpadded NHWC activation, so when persistent
/// kernels are enabled the pad is folded into the consuming conv's main
/// loop: the step disappears and the conv is marked `pad_fused`.
fn fold_pad_steps(steps: Vec<Step>, enabled: bool) -> Vec<Step> {
    if !enabled {
        return steps;
    }
    let padded: Vec<NodeId> = steps
        .iter()
        .filter(|s| matches!(s.kind, StepKind::PadChannels { .. }))
        .map(|s| s.output)
        .collect();
    if padded.is_empty() {
        return steps;
    }
    steps
        .into_iter()
        .filter(|s| !matches!(s.kind, StepKind::PadChannels { .. }))
        .map(|mut s| {
            if let StepKind::Conv2d {
                pad_to: Some(_),
                pad_fused,
                ..
            } = &mut s.kind
            {
                if s.inputs.iter().any(|i| padded.contains(i)) {
                    *pad_fused = true;
                }
            }
            s
        })
        .collect()
}

impl ExecutionPlan {
    /// Builds a plan from lowered steps: folds standalone pad steps into
    /// their consuming convs (when persistent kernels are enabled),
    /// prepacks every constant the graph materializes, and runs the
    /// liveness pass. Shapes-only graphs build fine (timing needs no
    /// parameter data); their steps are marked unmaterialized and
    /// functional runs fail lazily.
    pub fn build(arch: GpuArch, graph: Graph, steps: Vec<Step>, config: BoltConfig) -> Self {
        let steps = fold_pad_steps(steps, config.persistent_kernels);
        let slots = SlotPlan::build(&graph, &steps);
        let plan = ExecutionPlan {
            arch,
            graph,
            steps,
            config,
            packed: Vec::new(),
            slots,
            pool: Mutex::new(Vec::new()),
        };
        let packed = plan
            .steps
            .iter()
            .map(|step| plan.pack_step(step).unwrap_or_default())
            .collect();
        ExecutionPlan { packed, ..plan }
    }

    fn acquire_workspace(&self) -> Workspace {
        self.pool.lock().unwrap().pop().unwrap_or_default()
    }

    fn release_workspace(&self, ws: Workspace) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < WORKSPACE_POOL_CAP {
            pool.push(ws);
        }
    }

    /// The executable steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The optimized graph this plan executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The configuration the plan was compiled with.
    pub fn config(&self) -> &BoltConfig {
        &self.config
    }

    /// Number of device kernel launches (excludes host steps and fused
    /// transforms) — what persistent fusion and epilogue fusion reduce.
    pub fn kernel_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                !matches!(
                    s.kind,
                    StepKind::Host | StepKind::LayoutTransform { fused: true, .. }
                )
            })
            .count()
    }

    /// Floating-point work one run of this plan performs across its
    /// compute kernels (host glue and layout transforms are free). Used
    /// by the serving metrics to weight pad rows into the
    /// `padding_fraction` gauge.
    pub fn flops(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match &s.kind {
                StepKind::Gemm { kernel, .. } => kernel.problem.flops(),
                StepKind::Conv2d { kernel, .. } => {
                    let (m, n, k) = kernel.problem.implicit_gemm_mnk();
                    2.0 * (m as f64) * (n as f64) * (k as f64)
                }
                StepKind::B2bGemm { kernel, .. } => kernel.gemm0.flops() + kernel.gemm1.flops(),
                StepKind::GemmChain { chain, .. } => {
                    chain.stages.iter().map(|st| st.problem.flops()).sum()
                }
                StepKind::B2bConv { kernel, .. } => {
                    let b2b = kernel.as_b2b_gemm();
                    b2b.gemm0.flops() + b2b.gemm1.flops()
                }
                _ => 0.0,
            })
            .sum()
    }

    /// Peak intermediate memory of the planned execution: the sum of the
    /// slot capacities. Strictly less than
    /// [`ExecutionPlan::total_value_bytes`] whenever liveness found any
    /// reuse.
    pub fn workspace_bytes(&self) -> u64 {
        self.slots.slot_bytes.iter().sum()
    }

    /// What the pre-refactor grow-only environment held at the end of a
    /// run: every input and intermediate, simultaneously.
    pub fn total_value_bytes(&self) -> u64 {
        self.slots.total_value_bytes
    }

    /// Number of reusable buffer slots the liveness pass allocated.
    pub fn buffer_slots(&self) -> usize {
        self.slots.slot_bytes.len()
    }

    /// Memory this plan keeps resident while loaded: the prepacked
    /// constants plus the planned peak workspace. This is the number an
    /// engine-lifecycle manager accounts (and evicts) engines by.
    pub fn resident_bytes(&self) -> u64 {
        self.packed_const_bytes() + self.workspace_bytes()
    }

    /// Bytes of prepacked constants resident in the plan.
    pub fn packed_const_bytes(&self) -> u64 {
        self.packed
            .iter()
            .flat_map(|p| {
                p.weights
                    .iter()
                    .chain(p.filter_mats.iter())
                    .map(|w| (w.numel() * w.dtype().size_bytes()) as u64)
                    .chain(
                        p.biases
                            .iter()
                            .flatten()
                            .map(|b| (b.numel() * b.dtype().size_bytes()) as u64),
                    )
            })
            .sum()
    }

    /// The prepacked constants of step `index` (for plan inspection and
    /// golden tests).
    pub fn packed_consts(&self, index: usize) -> &PackedConsts {
        &self.packed[index]
    }

    // -----------------------------------------------------------------
    // Timing mode
    // -----------------------------------------------------------------

    /// Prices every step on the simulator.
    pub fn time(&self) -> TimingReport {
        let mut timeline = Timeline::new();
        for step in &self.steps {
            let time = self.step_time(step);
            timeline.push(step.name.clone(), &time);
        }
        TimingReport {
            total_us: timeline.total_us(),
            timeline,
        }
    }

    /// [`ExecutionPlan::time`], reporting each step to `observer` as it
    /// is priced.
    pub fn time_observed(&self, observer: &mut dyn StepObserver) -> TimingReport {
        let mut timeline = Timeline::new();
        for (i, step) in self.steps.iter().enumerate() {
            let time = self.step_time(step);
            observer.observe(i, step, &time);
            timeline.push(step.name.clone(), &time);
        }
        TimingReport {
            total_us: timeline.total_us(),
            timeline,
        }
    }

    pub(crate) fn step_time(&self, step: &Step) -> KernelTime {
        match &step.kind {
            StepKind::Gemm { kernel, .. } => kernel.time(&self.arch),
            StepKind::Conv2d { kernel, .. } => kernel.time(&self.arch),
            StepKind::B2bGemm { kernel, .. } => kernel.time(&self.arch),
            StepKind::GemmChain { chain, .. } => chain.time(&self.arch),
            StepKind::B2bConv { kernel, .. } => kernel.time(&self.arch),
            StepKind::LayoutTransform { bytes, fused } => {
                let mut profile = KernelProfile::memory_only("layout_transform", *bytes * 2.0);
                // NCHW reads are W-contiguous, NHWC writes C-contiguous;
                // one side is strided.
                profile.alignment_elems = 4;
                let mut t = simulate_kernel(&self.arch, &profile);
                if *fused {
                    // Folded into the adjacent kernel: no launch.
                    t.total_us -= t.launch_us;
                    t.launch_us = 0.0;
                }
                t
            }
            StepKind::PadChannels { bytes } => {
                let mut profile = KernelProfile::memory_only("pad_channels", *bytes);
                profile.alignment_elems = 2; // source is the unaligned tensor
                simulate_kernel(&self.arch, &profile)
            }
            StepKind::Host => host_group_time(&self.arch, &self.graph, &step.covered),
        }
    }

    // -----------------------------------------------------------------
    // Functional mode (slot executor)
    // -----------------------------------------------------------------

    /// Executes the plan on real inputs (one tensor per graph input, in
    /// `Graph::input_ids` order). Rank-4 inputs may be NCHW (converted
    /// internally) or NHWC.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for arity/rank/shape mismatches
    /// (including a mismatched batch dimension) and missing parameter
    /// data. Malformed inputs never panic: every message spells out the
    /// expected vs. received shape.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.run_impl(inputs, None)
    }

    /// [`ExecutionPlan::run`], reporting each executed step with its
    /// simulated time to `observer`.
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        observer: &mut dyn StepObserver,
    ) -> Result<Vec<Tensor>> {
        self.run_impl(inputs, Some(observer))
    }

    fn run_impl(
        &self,
        inputs: &[Tensor],
        observer: Option<&mut dyn StepObserver>,
    ) -> Result<Vec<Tensor>> {
        let mut ws = self.acquire_workspace();
        let result = self.run_with_workspace(inputs, &mut ws, observer);
        self.release_workspace(ws);
        result
    }

    fn run_with_workspace<'a>(
        &self,
        inputs: &'a [Tensor],
        ws: &mut Workspace,
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<Vec<Tensor>> {
        let input_ids = self.graph.input_ids();
        self.validate_inputs(inputs, &input_ids)?;

        let mut state: Vec<Option<Value<'a>>> = Vec::with_capacity(self.slots.slot_bytes.len());
        state.resize_with(self.slots.slot_bytes.len(), || None);
        for (&id, tensor) in input_ids.iter().zip(inputs) {
            // Normalize rank-4 activations to NHWC internally (Bolt's
            // layout transform); anything already in the internal layout
            // is borrowed in place, clone-free.
            let value = if tensor.shape().rank() == 4 && tensor.layout() != Layout::Nhwc {
                Value::Owned(tensor.to_activation_layout(Layout::Nhwc)?)
            } else {
                Value::Borrowed(tensor)
            };
            state[self.slots.slot_of[&id]] = Some(value);
        }

        for (i, step) in self.steps.iter().enumerate() {
            let produced = self.execute_step(i, step, &state, ws)?;
            if let Some(obs) = observer.as_deref_mut() {
                let time = self.step_time(step);
                obs.observe(i, step, &time);
            }
            // Release dying inputs, then store: the output may reuse a
            // slot released on this very step. Owned buffers go back to
            // the workspace for the next step (or run) to lease.
            for &slot in &self.slots.release_after[i] {
                if let Some(Value::Owned(t)) = state[slot].take() {
                    ws.recycle(t.into_data());
                }
            }
            if let Some(tensor) = produced {
                state[self.slots.slot_of[&step.output]] = Some(Value::Owned(tensor));
            }
        }

        let outs = self.graph.outputs();
        let mut outputs = Vec::with_capacity(outs.len());
        for (k, &out) in outs.iter().enumerate() {
            let slot = self.slots.slot_of.get(&out).copied();
            // Move the value out of its slot unless a later output reads
            // the same node again.
            let taken = match slot {
                Some(s) if outs[k + 1..].contains(&out) => {
                    state[s].as_ref().map(|v| v.get().clone())
                }
                Some(s) => state[s].take().map(|v| match v {
                    Value::Owned(t) => t,
                    Value::Borrowed(t) => t.clone(),
                }),
                None => None,
            };
            let t = taken.ok_or_else(|| BoltError::BadInput {
                reason: format!("output {out} was never produced"),
            })?;
            // Convert activations back to the framework's NCHW convention.
            let t = if t.shape().rank() == 4 && t.layout() == Layout::Nhwc {
                let nchw = t.to_activation_layout(Layout::Nchw)?;
                ws.recycle(t.into_data());
                nchw
            } else {
                t
            };
            outputs.push(t);
        }
        Ok(outputs)
    }

    fn validate_inputs(&self, inputs: &[Tensor], input_ids: &[NodeId]) -> Result<()> {
        if inputs.len() != input_ids.len() {
            return Err(BoltError::BadInput {
                reason: format!("expected {} inputs, got {}", input_ids.len(), inputs.len()),
            });
        }
        for (pos, (&id, tensor)) in input_ids.iter().zip(inputs).enumerate() {
            let want = &self.graph.node(id).shape;
            let got = crate::runtime::logical_dims(tensor);
            if tensor.shape().rank() != want.rank() {
                return Err(BoltError::BadInput {
                    reason: format!(
                        "input {pos} ({id}) rank mismatch: expected rank {} shape {want}, \
                         got rank {} shape {got:?}",
                        want.rank(),
                        tensor.shape().rank(),
                    ),
                });
            }
            if got != want.dims() {
                let what =
                    if !got.is_empty() && got[0] != want.dim(0) && got[1..] == want.dims()[1..] {
                        "batch dimension mismatch"
                    } else {
                        "shape mismatch"
                    };
                return Err(BoltError::BadInput {
                    reason: format!("input {pos} ({id}) {what}: expected {want}, got {got:?}"),
                });
            }
        }
        Ok(())
    }

    fn value<'a, 'b>(&self, state: &'a [Option<Value<'b>>], id: NodeId) -> Result<&'a Tensor> {
        self.slots
            .slot_of
            .get(&id)
            .and_then(|&slot| state[slot].as_ref().map(Value::get))
            .ok_or_else(|| BoltError::BadInput {
                reason: format!("step input {id} not yet computed"),
            })
    }

    /// True when `t` is a rank-2 matrix whose raw data is row-major
    /// (`row * cols + col`) — the precondition for the allocation-free
    /// GEMM fast path.
    fn row_major_2d(t: &Tensor) -> bool {
        t.shape().rank() == 2
            && matches!(
                t.layout(),
                Layout::Matrix(MatrixLayout::RowMajor) | Layout::Contiguous
            )
    }

    /// Executes one step against the slot table, borrowing inputs in
    /// place (no clones on the hot path), leasing the output buffer from
    /// the workspace, and returning the produced tensor, if the step
    /// produces one.
    ///
    /// Each kernel step first tries the allocation-free `run_into` fast
    /// path (prepacked operands, pooled scratch, direct output write);
    /// inputs in an unexpected layout fall back to the general `run`
    /// entry points, which are bit-identical.
    fn execute_step(
        &self,
        index: usize,
        step: &Step,
        state: &[Option<Value<'_>>],
        ws: &mut Workspace,
    ) -> Result<Option<Tensor>> {
        // Prepacked constants, or a lazy repack for shapes-only graphs
        // (which fails with the same missing-parameter error the old
        // interpreter raised).
        let lazy;
        let packed = if self.packed[index].materialized {
            &self.packed[index]
        } else {
            lazy = self.pack_step(step)?;
            &lazy
        };
        match &step.kind {
            StepKind::Gemm {
                kernel, residual, ..
            } => {
                let a = self.value(state, step.inputs[0])?;
                let c: Option<&Tensor> = match residual {
                    Some(r) => Some(self.value(state, *r)?),
                    None => packed.biases[0].as_deref(),
                };
                if Self::row_major_2d(a) && Self::row_major_2d(&packed.weights[0]) {
                    let p = &kernel.problem;
                    // Tensor stores quantize, so a weight tensor of the
                    // kernel's element dtype holds exactly-representable
                    // values and the per-load rounding can be skipped.
                    let wq = packed.weights[0].dtype() == p.element;
                    let mut buf = ws.lease(p.m * p.n);
                    kernel.run_into(
                        a.data(),
                        packed.weights[0].data(),
                        c,
                        &mut ws.acc,
                        &mut buf,
                        wq,
                    )?;
                    let d =
                        Tensor::from_quantized_vec(&[p.m, p.n], kernel.epilogue.out_dtype, buf)?;
                    return Ok(Some(d));
                }
                let (d, _) = kernel.run(a, &packed.weights[0], c)?;
                Ok(Some(d))
            }
            StepKind::Conv2d { kernel, pad_to, .. } => {
                let x = self.value(state, step.inputs[0])?;
                if x.layout() == Layout::Nhwc {
                    // The implicit-GEMM lowering reads channels past the
                    // activation's physical extent as zero, folding the
                    // channel pad into the main loop — no standalone pad
                    // kernel, no materialized padded copy.
                    let p = &kernel.problem;
                    let in_c = x.dims4().1;
                    let fq = packed.filter_mats[0].dtype() == kernel.element;
                    let mut buf = ws.lease(p.n * p.out_h() * p.out_w() * p.k);
                    kernel.run_into(
                        x.data(),
                        in_c,
                        packed.filter_mats[0].data(),
                        packed.biases[0].as_deref(),
                        &mut ws.cols,
                        &mut ws.acc,
                        &mut buf,
                        fq,
                    )?;
                    let d = Tensor::from_quantized_vec_nhwc(
                        p.n,
                        p.k,
                        p.out_h(),
                        p.out_w(),
                        kernel.epilogue.out_dtype,
                        buf,
                    )?;
                    return Ok(Some(d));
                }
                let padded;
                let x = match pad_to {
                    Some(pc) if x.dims4().1 < *pc => {
                        padded = x.pad_channels_nhwc(*pc)?;
                        &padded
                    }
                    _ => x,
                };
                let d = kernel.run(x, &packed.weights[0], packed.biases[0].as_deref())?;
                Ok(Some(d))
            }
            StepKind::B2bGemm { kernel, .. } => {
                let a = self.value(state, step.inputs[0])?;
                if Self::row_major_2d(a) {
                    let (m, n1) = (kernel.gemm1.m, kernel.gemm1.n);
                    let wq = packed.weights[0].dtype() == kernel.gemm0.element
                        && packed.weights[1].dtype() == kernel.gemm1.element;
                    let mut buf = ws.lease(m * n1);
                    kernel.run_into(
                        a.data(),
                        packed.weights[0].data(),
                        packed.biases[0].as_deref(),
                        packed.weights[1].data(),
                        packed.biases[1].as_deref(),
                        &mut ws.acc,
                        &mut ws.d0,
                        &mut buf,
                        wq,
                    )?;
                    let d = Tensor::from_quantized_vec(&[m, n1], kernel.epilogue1.out_dtype, buf)?;
                    return Ok(Some(d));
                }
                let d = kernel.run(
                    a,
                    &packed.weights[0],
                    packed.biases[0].as_deref(),
                    &packed.weights[1],
                    packed.biases[1].as_deref(),
                )?;
                Ok(Some(d))
            }
            StepKind::GemmChain { chain, .. } => {
                let a = self.value(state, step.inputs[0])?;
                if Self::row_major_2d(a) {
                    let last = chain.stages.last().expect("chain has stages");
                    let (m, n) = (last.problem.m, last.problem.n);
                    let w_slices: Vec<&[f32]> = packed.weights.iter().map(|w| w.data()).collect();
                    let b_refs: Vec<Option<&Tensor>> =
                        packed.biases.iter().map(|b| b.as_deref()).collect();
                    let wq = chain
                        .stages
                        .iter()
                        .zip(packed.weights.iter())
                        .all(|(stage, w)| w.dtype() == stage.problem.element);
                    let mut buf = ws.lease(m * n);
                    chain.run_into(
                        a.data(),
                        &w_slices,
                        &b_refs,
                        &mut ws.acc,
                        &mut ws.d0,
                        &mut ws.d1,
                        &mut buf,
                        wq,
                    )?;
                    let d = Tensor::from_quantized_vec(&[m, n], last.epilogue.out_dtype, buf)?;
                    return Ok(Some(d));
                }
                let w_refs: Vec<&Tensor> = packed.weights.iter().map(|w| w.as_ref()).collect();
                let b_refs: Vec<Option<&Tensor>> =
                    packed.biases.iter().map(|b| b.as_deref()).collect();
                let d = chain.run(a, &w_refs, &b_refs)?;
                Ok(Some(d))
            }
            StepKind::B2bConv { kernel, pad_to, .. } => {
                let x = self.value(state, step.inputs[0])?;
                if x.layout() == Layout::Nhwc {
                    let p1 = &kernel.conv1;
                    let in_c = x.dims4().1;
                    let fq = packed.filter_mats[0].dtype() == kernel.element
                        && packed.filter_mats[1].dtype() == kernel.element;
                    let mut buf = ws.lease(p1.n * p1.out_h() * p1.out_w() * p1.k);
                    kernel.run_into(
                        x.data(),
                        in_c,
                        packed.filter_mats[0].data(),
                        packed.biases[0].as_deref(),
                        packed.filter_mats[1].data(),
                        packed.biases[1].as_deref(),
                        &mut ws.cols,
                        &mut ws.acc,
                        &mut ws.d0,
                        &mut buf,
                        fq,
                    )?;
                    let d = Tensor::from_quantized_vec_nhwc(
                        p1.n,
                        p1.k,
                        p1.out_h(),
                        p1.out_w(),
                        kernel.epilogue1.out_dtype,
                        buf,
                    )?;
                    return Ok(Some(d));
                }
                let padded;
                let x = match pad_to {
                    Some(pc) if x.dims4().1 < *pc => {
                        padded = x.pad_channels_nhwc(*pc)?;
                        &padded
                    }
                    _ => x,
                };
                let d = kernel.run(
                    x,
                    &packed.weights[0],
                    packed.biases[0].as_deref(),
                    &packed.weights[1],
                    packed.biases[1].as_deref(),
                )?;
                Ok(Some(d))
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } => {
                // Functional no-ops: the executor already tracks layouts
                // and padding inside the kernel steps.
                Ok(None)
            }
            StepKind::Host => {
                // A Host step may cover a fused injective chain: execute
                // its nodes in topological order against chain-local
                // values, returning only the step output.
                let mut nodes = step.covered.clone();
                nodes.sort_unstable();
                let mut locals: HashMap<NodeId, Tensor> = HashMap::new();
                for node in nodes {
                    let t = {
                        let scope = HostScope {
                            plan: self,
                            state,
                            locals: &locals,
                        };
                        run_host_op(&self.graph, node, &scope)?
                    };
                    locals.insert(node, t);
                }
                locals
                    .remove(&step.output)
                    .map(Some)
                    .ok_or_else(|| BoltError::BadInput {
                        reason: format!(
                            "host step {} did not produce its output {}",
                            step.name, step.output
                        ),
                    })
            }
        }
    }

    // -----------------------------------------------------------------
    // Batch capacity and serving entry points
    // -----------------------------------------------------------------

    /// The batch capacity this plan was compiled for: dimension 0 shared
    /// by every graph input.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] when the graph has no inputs, an
    /// input is scalar, or the inputs disagree on the batch dimension.
    pub fn batch_size(&self) -> Result<usize> {
        let input_ids = self.graph.input_ids();
        let mut batch = None;
        for &id in &input_ids {
            let shape = &self.graph.node(id).shape;
            if shape.rank() == 0 {
                return Err(BoltError::BadInput {
                    reason: format!("input {id} is scalar; it has no batch dimension"),
                });
            }
            let b = shape.dim(0);
            match batch {
                None => batch = Some(b),
                Some(prev) if prev != b => {
                    return Err(BoltError::BadInput {
                        reason: format!(
                            "inputs disagree on the batch dimension: {prev} vs {b} (input {id})"
                        ),
                    })
                }
                Some(_) => {}
            }
        }
        batch.ok_or_else(|| BoltError::BadInput {
            reason: "model has no inputs".into(),
        })
    }

    /// Batch-native execution for the serving layer: packs per-request
    /// single-sample inputs once into pooled, zero-padded batch buffers
    /// (rank-4 NCHW samples are transposed straight into the NHWC batch
    /// — no intermediate stacked tensor, no layout pass over the whole
    /// batch), runs through the pooled-workspace executor, and slices
    /// the outputs back per sample (padding rows are dropped).
    ///
    /// `samples[s]` holds sample `s`'s inputs in `Graph::input_ids`
    /// order, each with batch dimension 1. At most
    /// [`ExecutionPlan::batch_size`] samples are admitted per call.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for an empty or oversized sample
    /// list, per-sample arity/shape mismatches, or any error from
    /// [`ExecutionPlan::run`].
    pub fn run_batched(&self, samples: &[Vec<Tensor>]) -> Result<Vec<Vec<Tensor>>> {
        let mut ws = self.acquire_workspace();
        let result = self.run_batched_with(samples, &mut ws);
        self.release_workspace(ws);
        result
    }

    fn run_batched_with(
        &self,
        samples: &[Vec<Tensor>],
        ws: &mut Workspace,
    ) -> Result<Vec<Vec<Tensor>>> {
        let capacity = self.batch_size()?;
        self.validate_batch(samples, capacity)?;
        let input_ids = self.graph.input_ids();

        let mut batched = Vec::with_capacity(input_ids.len());
        for (i, &id) in input_ids.iter().enumerate() {
            batched.push(self.pack_batch_column(samples, i, id, capacity, ws)?);
        }
        let outputs = self.run_with_workspace(&batched, ws, None);
        // The packed batch buffers feed the next call.
        for t in batched {
            ws.recycle(t.into_data());
        }
        let outputs = outputs?;

        let mut per_sample = vec![Vec::with_capacity(outputs.len()); samples.len()];
        for output in &outputs {
            for (s, slot) in per_sample.iter_mut().enumerate() {
                slot.push(slice_batch(output, s)?);
            }
        }
        Ok(per_sample)
    }

    fn validate_batch(&self, samples: &[Vec<Tensor>], capacity: usize) -> Result<()> {
        if samples.is_empty() {
            return Err(BoltError::BadInput {
                reason: "run_batched needs at least one sample".into(),
            });
        }
        if samples.len() > capacity {
            return Err(BoltError::BadInput {
                reason: format!(
                    "{} samples exceed the compiled batch capacity {capacity}",
                    samples.len()
                ),
            });
        }
        let arity = self.graph.input_ids().len();
        for (s, sample) in samples.iter().enumerate() {
            if sample.len() != arity {
                return Err(BoltError::BadInput {
                    reason: format!("sample {s}: expected {arity} inputs, got {}", sample.len()),
                });
            }
        }
        Ok(())
    }

    /// Packs input column `i` of every sample into one pooled batch
    /// buffer: each sample's row block is copied (rank-4 NCHW samples
    /// are transposed to NHWC in the same pass) and the padding tail is
    /// zero-filled — padded rows are dead weight, not replicas that
    /// could leak another request's activations.
    fn pack_batch_column(
        &self,
        samples: &[Vec<Tensor>],
        i: usize,
        id: NodeId,
        capacity: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor> {
        let want = &self.graph.node(id).shape;
        let proto = &samples[0][i];
        let per = want.numel() / capacity.max(1);
        let mut buf = ws.lease(capacity * per);
        for (s, sample) in samples.iter().enumerate() {
            let t = &sample[i];
            let got = crate::runtime::logical_dims(t);
            let ok = got.len() == want.rank()
                && !got.is_empty()
                && got[0] == 1
                && got[1..] == want.dims()[1..];
            if !ok {
                return Err(BoltError::BadInput {
                    reason: format!(
                        "sample {s} input {i}: expected batch-1 shape of {want}, got {got:?}"
                    ),
                });
            }
            let dst = &mut buf[s * per..(s + 1) * per];
            if want.rank() == 4 && t.layout() != Layout::Nhwc {
                // NCHW (or contiguous) sample → NHWC row block.
                let (_, c, h, w) = t.dims4();
                let src = t.data();
                for ci in 0..c {
                    for hi in 0..h {
                        for wi in 0..w {
                            dst[(hi * w + wi) * c + ci] = src[(ci * h + hi) * w + wi];
                        }
                    }
                }
            } else {
                dst.copy_from_slice(t.data());
            }
        }
        buf[samples.len() * per..].fill(0.0);
        if want.rank() == 4 {
            let dims = want.dims();
            Ok(Tensor::from_quantized_vec_nhwc(
                capacity,
                dims[1],
                dims[2],
                dims[3],
                proto.dtype(),
                buf,
            )?)
        } else {
            let mut dims = want.dims().to_vec();
            dims[0] = capacity;
            Ok(Tensor::from_quantized_vec(&dims, proto.dtype(), buf)?)
        }
    }

    /// The pre-refactor serving path, kept as the batched oracle and
    /// benchmark baseline: stack every sample into a fresh batch tensor
    /// (one allocation plus a whole-batch layout pass per input), run
    /// the reference interpreter, and slice the outputs.
    ///
    /// # Errors
    ///
    /// Same contract as [`ExecutionPlan::run_batched`].
    pub fn run_batched_reference(&self, samples: &[Vec<Tensor>]) -> Result<Vec<Vec<Tensor>>> {
        let capacity = self.batch_size()?;
        self.validate_batch(samples, capacity)?;
        let arity = self.graph.input_ids().len();

        let mut batched = Vec::with_capacity(arity);
        for i in 0..arity {
            let columns: Vec<&Tensor> = samples.iter().map(|s| &s[i]).collect();
            batched.push(stack_batch(&columns, capacity)?);
        }
        let outputs = self.run_reference(&batched)?;

        let mut per_sample = vec![Vec::with_capacity(outputs.len()); samples.len()];
        for output in &outputs {
            for (s, slot) in per_sample.iter_mut().enumerate() {
                slot.push(slice_batch(output, s)?);
            }
        }
        Ok(per_sample)
    }

    // -----------------------------------------------------------------
    // Constant packing
    // -----------------------------------------------------------------

    fn param(&self, id: NodeId) -> Result<&Tensor> {
        self.graph.param(id).ok_or_else(|| BoltError::BadInput {
            reason: format!(
                "constant {id} ({}) has no data; build the model with materialized parameters",
                self.graph.node(id).name
            ),
        })
    }

    fn packed_bias(&self, id: Option<NodeId>) -> Result<Option<Arc<Tensor>>> {
        match id {
            Some(id) => Ok(Some(Arc::new(self.param(id)?.clone()))),
            None => Ok(None),
        }
    }

    /// Packs one step's constants into kernel-native layouts. Fails when
    /// the graph carries shapes-only parameters.
    fn pack_step(&self, step: &Step) -> Result<PackedConsts> {
        let mut packed = PackedConsts {
            materialized: true,
            ..PackedConsts::default()
        };
        match &step.kind {
            StepKind::Gemm { weight, bias, .. } => {
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*weight)?)));
                packed.biases.push(self.packed_bias(*bias)?);
            }
            StepKind::Conv2d {
                kernel,
                filter,
                bias,
                pad_to,
                ..
            } => {
                let krsc = pack_conv_filter(self.param(*filter)?, *pad_to);
                packed
                    .filter_mats
                    .push(Arc::new(filter_as_matrix(&kernel.problem, &krsc)?));
                packed.weights.push(Arc::new(krsc));
                packed.biases.push(self.packed_bias(*bias)?);
            }
            StepKind::B2bGemm { w0, b0, w1, b1, .. } => {
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*w0)?)));
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*w1)?)));
                packed.biases.push(self.packed_bias(*b0)?);
                packed.biases.push(self.packed_bias(*b1)?);
            }
            StepKind::GemmChain {
                weights, biases, ..
            } => {
                for w in weights {
                    packed
                        .weights
                        .push(Arc::new(pack_dense_weight(self.param(*w)?)));
                }
                for b in biases {
                    packed.biases.push(self.packed_bias(*b)?);
                }
            }
            StepKind::B2bConv {
                kernel,
                f0,
                b0,
                f1,
                b1,
                pad_to,
            } => {
                let krsc0 = pack_conv_filter(self.param(*f0)?, *pad_to);
                let krsc1 = pack_conv_filter(self.param(*f1)?, None);
                packed
                    .filter_mats
                    .push(Arc::new(filter_as_matrix(&kernel.conv0, &krsc0)?));
                packed
                    .filter_mats
                    .push(Arc::new(filter_as_matrix(&kernel.conv1, &krsc1)?));
                packed.weights.push(Arc::new(krsc0));
                packed.weights.push(Arc::new(krsc1));
                packed.biases.push(self.packed_bias(*b0)?);
                packed.biases.push(self.packed_bias(*b1)?);
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } | StepKind::Host => {}
        }
        Ok(packed)
    }

    // -----------------------------------------------------------------
    // Reference interpreter (pre-refactor semantics)
    // -----------------------------------------------------------------

    /// The pre-refactor interpreter: a grow-only `HashMap` environment,
    /// every input cloned out per step, every weight repacked per call.
    /// Kept as the semantic oracle (the slot executor must match it
    /// bit-for-bit) and as the baseline the benchmarks compare the
    /// compiled path against.
    ///
    /// # Errors
    ///
    /// Same contract as [`ExecutionPlan::run`].
    pub fn run_reference(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let input_ids = self.graph.input_ids();
        self.validate_inputs(inputs, &input_ids)?;
        let mut env: HashMap<NodeId, Tensor> = HashMap::new();
        for (&id, tensor) in input_ids.iter().zip(inputs) {
            if tensor.shape().rank() == 4 {
                let nhwc = if tensor.layout() == Layout::Nhwc {
                    tensor.clone()
                } else {
                    tensor.to_activation_layout(Layout::Nhwc)?
                };
                env.insert(id, nhwc);
            } else {
                env.insert(id, tensor.clone());
            }
        }

        for step in &self.steps {
            self.run_step_reference(step, &mut env)?;
        }

        let mut outputs = Vec::new();
        for &out in self.graph.outputs() {
            let t = env.get(&out).ok_or_else(|| BoltError::BadInput {
                reason: format!("output {out} was never produced"),
            })?;
            let t = if t.shape().rank() == 4 && t.layout() == Layout::Nhwc {
                t.to_activation_layout(Layout::Nchw)?
            } else {
                t.clone()
            };
            outputs.push(t);
        }
        Ok(outputs)
    }

    fn run_step_reference(&self, step: &Step, env: &mut HashMap<NodeId, Tensor>) -> Result<()> {
        let fetch = |env: &HashMap<NodeId, Tensor>, id: NodeId| -> Result<Tensor> {
            env.get(&id).cloned().ok_or_else(|| BoltError::BadInput {
                reason: format!("step input {id} not yet computed"),
            })
        };
        match &step.kind {
            StepKind::Gemm {
                kernel,
                weight,
                bias,
                residual,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let b = pack_dense_weight(self.param(*weight)?);
                let c = if let Some(r) = residual {
                    Some(fetch(env, *r)?)
                } else if let Some(b) = bias {
                    Some(self.param(*b)?.clone())
                } else {
                    None
                };
                let (d, _) = kernel.run(&a, &b, c.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::Conv2d {
                kernel,
                filter,
                bias,
                pad_to,
                ..
            } => {
                let mut x = fetch(env, step.inputs[0])?;
                if let Some(pc) = pad_to {
                    if x.dims4().1 < *pc {
                        x = x.pad_channels_nhwc(*pc)?;
                    }
                }
                let f = pack_conv_filter(self.param(*filter)?, *pad_to);
                let b = match bias {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&x, &f, b.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::B2bGemm {
                kernel,
                w0,
                b0,
                w1,
                b1,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let w0t = pack_dense_weight(self.param(*w0)?);
                let w1t = pack_dense_weight(self.param(*w1)?);
                let b0t = match b0 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let b1t = match b1 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&a, &w0t, b0t.as_ref(), &w1t, b1t.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::GemmChain {
                chain,
                weights,
                biases,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let ws: Vec<Tensor> = weights
                    .iter()
                    .map(|w| Ok(pack_dense_weight(self.param(*w)?)))
                    .collect::<Result<_>>()?;
                let w_refs: Vec<&Tensor> = ws.iter().collect();
                let bs: Vec<Option<Tensor>> = biases
                    .iter()
                    .map(|b| match b {
                        Some(b) => Ok(Some(self.param(*b)?.clone())),
                        None => Ok(None),
                    })
                    .collect::<Result<_>>()?;
                let b_refs: Vec<Option<&Tensor>> = bs.iter().map(|b| b.as_ref()).collect();
                let d = chain.run(&a, &w_refs, &b_refs)?;
                env.insert(step.output, d);
            }
            StepKind::B2bConv {
                kernel,
                f0,
                b0,
                f1,
                b1,
                pad_to,
            } => {
                let mut x = fetch(env, step.inputs[0])?;
                if let Some(pc) = pad_to {
                    if x.dims4().1 < *pc {
                        x = x.pad_channels_nhwc(*pc)?;
                    }
                }
                let f0t = pack_conv_filter(self.param(*f0)?, *pad_to);
                let f1t = pack_conv_filter(self.param(*f1)?, None);
                let b0t = match b0 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let b1t = match b1 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&x, &f0t, b0t.as_ref(), &f1t, b1t.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } => {}
            StepKind::Host => {
                let mut nodes = step.covered.clone();
                nodes.sort_unstable();
                for node in nodes {
                    let t = run_host_op(&self.graph, node, env)?;
                    env.insert(node, t);
                }
            }
        }
        Ok(())
    }
}
