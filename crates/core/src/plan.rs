//! The execution plan: the compiled artifact the runtime executes.
//!
//! Bolt's graph-level wins (epilogue fusion, persistent kernels, padding,
//! layout planning — §3.1–3.2) only show up end-to-end when the runtime
//! does not give them back in per-request overhead. The
//! [`ExecutionPlan`] makes the artifact/interpreter split explicit, the
//! same way TVM compiles to a statically planned module:
//!
//! * **Constant prepacking** — every weight is repacked into its
//!   kernel-native layout once at plan-build time (dense `(units, in)` →
//!   GEMM `B` operand `(in, units)`; conv filters KCRS → KRSC with
//!   channel padding folded in) and stored in the plan behind an `Arc`.
//!   Execution never touches the logical parameter again.
//! * **Liveness-planned buffer slots** — a backward liveness pass over
//!   the step list assigns every non-constant value to a reusable buffer
//!   slot; a value's slot is freed at its last use and handed to later
//!   intermediates. Peak memory is [`ExecutionPlan::workspace_bytes`],
//!   bounded by the widest set of simultaneously-live values instead of
//!   the whole graph.
//! * **One step-level executor** — the functional and timing paths drive
//!   the same step walk; a [`StepObserver`] hook sees every step with its
//!   simulated [`KernelTime`], so benches and the serving layer can
//!   attribute latency per kernel without a second interpreter.
//!
//! [`ExecutionPlan::run_reference`] keeps the pre-refactor interpreter
//! (hash-map environment, clone-per-fetch, repack-per-call) alive as a
//! semantic oracle and benchmark baseline.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile, KernelTime, Timeline};
use bolt_graph::{Graph, NodeId, OpKind};
use bolt_tensor::{Layout, Tensor};

use crate::config::BoltConfig;
use crate::error::BoltError;
use crate::runtime::{
    host_group_time, run_host_op, slice_batch, stack_batch, Step, StepKind, TimingReport,
    ValueLookup,
};
use crate::Result;

// ---------------------------------------------------------------------------
// Prepacked constants
// ---------------------------------------------------------------------------

/// A step's constants, repacked once into kernel-native layouts.
///
/// `weights`/`biases` are in kernel-operand order (one entry per GEMM /
/// conv stage for persistent kernels). Steps without constants carry
/// empty vectors.
#[derive(Debug, Clone, Default)]
pub struct PackedConsts {
    /// Prepacked weight operands (dense `(in, units)`, filters KRSC).
    pub weights: Vec<Arc<Tensor>>,
    /// Per-stage bias vectors, if present.
    pub biases: Vec<Option<Arc<Tensor>>>,
    /// False when the graph carries shapes-only parameters (nothing to
    /// pack); functional execution then fails lazily like the old
    /// interpreter, while timing remains fully usable.
    pub materialized: bool,
}

/// Dense weight `(units, in)` → GEMM `B` operand `(in, units)`.
pub(crate) fn pack_dense_weight(w: &Tensor) -> Tensor {
    let (u, k) = (w.shape().dim(0), w.shape().dim(1));
    let mut b = Tensor::zeros(&[k, u], w.dtype());
    for i in 0..u {
        for j in 0..k {
            b.set2(j, i, w.get2(i, j));
        }
    }
    b
}

/// Conv filter logical `(K, C, R, S)` → physical KRSC, optionally
/// zero-padded to `pad_c` input channels.
pub(crate) fn pack_conv_filter(w: &Tensor, pad_c: Option<usize>) -> Tensor {
    let dims = w.shape().dims();
    let (k, c, r, s) = (dims[0], dims[1], dims[2], dims[3]);
    let cc = pad_c.unwrap_or(c);
    let mut out = Tensor::zeros(&[k, r, s, cc], w.dtype());
    let src = w.data();
    let dst = out.data_mut();
    for ki in 0..k {
        for ci in 0..c {
            for ri in 0..r {
                for si in 0..s {
                    let from = ((ki * c + ci) * r + ri) * s + si;
                    let to = ((ki * r + ri) * s + si) * cc + ci;
                    dst[to] = src[from];
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Buffer-slot plan (liveness)
// ---------------------------------------------------------------------------

/// The memory plan: which buffer slot each value lives in and when each
/// slot is released back for reuse.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotPlan {
    /// Value (graph input or step output) → slot index.
    pub(crate) slot_of: HashMap<NodeId, usize>,
    /// Slots whose resident value dies at step `i` (released after the
    /// step's result is computed, before it is stored — so the result may
    /// reuse a dying input's slot).
    pub(crate) release_after: Vec<Vec<usize>>,
    /// Per-slot capacity: the largest value (logical dtype bytes) ever
    /// resident in the slot.
    pub(crate) slot_bytes: Vec<u64>,
    /// Sum of all planned values' bytes — what the old grow-only
    /// environment kept live simultaneously.
    pub(crate) total_value_bytes: u64,
}

impl SlotPlan {
    /// Runs liveness over `steps` and assigns slots first-fit from a
    /// free list (LIFO, so reuse favors the most recently freed — and
    /// therefore similarly sized — buffer).
    fn build(graph: &Graph, steps: &[Step]) -> SlotPlan {
        let is_const = |id: NodeId| matches!(graph.node(id).kind, OpKind::Constant { .. });
        let outputs: HashSet<NodeId> = graph.outputs().iter().copied().collect();

        // Last step (index) that reads each non-constant value. Constants
        // are excluded: they live in the plan (prepacked) or the graph.
        let mut last_use: HashMap<NodeId, usize> = HashMap::new();
        for (i, step) in steps.iter().enumerate() {
            for &input in &step.inputs {
                if !is_const(input) {
                    last_use.insert(input, i);
                }
            }
        }

        let mut plan = SlotPlan {
            release_after: vec![Vec::new(); steps.len()],
            ..SlotPlan::default()
        };
        let mut free: Vec<usize> = Vec::new();

        for id in graph.input_ids() {
            plan.assign(graph, id, &mut free);
        }
        for (i, step) in steps.iter().enumerate() {
            // Free dying inputs before placing the output: the executor
            // computes a step's result while its inputs are still
            // resident, releases, then stores — so the output may land in
            // a slot an input just vacated.
            let mut seen = HashSet::new();
            for &input in &step.inputs {
                if is_const(input)
                    || input == step.output
                    || outputs.contains(&input)
                    || last_use.get(&input) != Some(&i)
                    || !seen.insert(input)
                {
                    continue;
                }
                if let Some(&slot) = plan.slot_of.get(&input) {
                    free.push(slot);
                    plan.release_after[i].push(slot);
                }
            }
            // Pad/layout steps forward their input (`output == input`,
            // already assigned); everything else gets a slot here.
            if !plan.slot_of.contains_key(&step.output) {
                plan.assign(graph, step.output, &mut free);
            }
        }
        plan
    }

    fn assign(&mut self, graph: &Graph, id: NodeId, free: &mut Vec<usize>) {
        let node = graph.node(id);
        let bytes = (node.shape.numel() * node.dtype.size_bytes()) as u64;
        self.total_value_bytes += bytes;
        let slot = free.pop().unwrap_or_else(|| {
            self.slot_bytes.push(0);
            self.slot_bytes.len() - 1
        });
        self.slot_bytes[slot] = self.slot_bytes[slot].max(bytes);
        self.slot_of.insert(id, slot);
    }
}

// ---------------------------------------------------------------------------
// Step observation
// ---------------------------------------------------------------------------

/// Per-step observation hook shared by the functional and timing paths.
///
/// The executor calls [`StepObserver::observe`] once per step, in
/// execution order, with the step's simulated [`KernelTime`] — the hook
/// benches and the serving layer use to attribute latency per kernel.
pub trait StepObserver {
    /// Called after step `index` executes (functional mode) or is priced
    /// (timing mode).
    fn observe(&mut self, index: usize, step: &Step, time: &KernelTime);
}

/// One observed step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Step index in plan order.
    pub index: usize,
    /// The step's display name.
    pub name: String,
    /// Simulated time including launch overhead, µs.
    pub total_us: f64,
    /// Launch overhead portion, µs.
    pub launch_us: f64,
}

/// A [`StepObserver`] that records every step's name and simulated time.
#[derive(Debug, Clone, Default)]
pub struct StepTimings {
    /// Observed steps, in execution order.
    pub steps: Vec<StepTiming>,
}

impl StepObserver for StepTimings {
    fn observe(&mut self, index: usize, step: &Step, time: &KernelTime) {
        self.steps.push(StepTiming {
            index,
            name: step.name.clone(),
            total_us: time.total_us,
            launch_us: time.launch_us,
        });
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// The compiled artifact: ordered steps, prepacked constants, and a
/// liveness-planned slot table, executable in functional or timing mode.
#[derive(Debug)]
pub struct ExecutionPlan {
    pub(crate) arch: GpuArch,
    pub(crate) graph: Graph,
    pub(crate) steps: Vec<Step>,
    pub(crate) config: BoltConfig,
    /// Per-step prepacked constants (index-aligned with `steps`).
    packed: Vec<PackedConsts>,
    /// The memory plan.
    slots: SlotPlan,
}

/// Looks up values for host ops during slot execution: fused-chain
/// locals first, then the slot table (params resolve inside
/// `run_host_op` via the graph).
struct HostScope<'a> {
    plan: &'a ExecutionPlan,
    state: &'a [Option<Tensor>],
    locals: &'a HashMap<NodeId, Tensor>,
}

impl ValueLookup for HostScope<'_> {
    fn lookup(&self, id: NodeId) -> Option<&Tensor> {
        self.locals.get(&id).or_else(|| {
            self.plan
                .slots
                .slot_of
                .get(&id)
                .and_then(|&slot| self.state[slot].as_ref())
        })
    }
}

impl ExecutionPlan {
    /// Builds a plan from lowered steps: prepacks every constant the
    /// graph materializes and runs the liveness pass. Shapes-only graphs
    /// build fine (timing needs no parameter data); their steps are
    /// marked unmaterialized and functional runs fail lazily.
    pub fn build(arch: GpuArch, graph: Graph, steps: Vec<Step>, config: BoltConfig) -> Self {
        let slots = SlotPlan::build(&graph, &steps);
        let plan = ExecutionPlan {
            arch,
            graph,
            steps,
            config,
            packed: Vec::new(),
            slots,
        };
        let packed = plan
            .steps
            .iter()
            .map(|step| plan.pack_step(step).unwrap_or_default())
            .collect();
        ExecutionPlan { packed, ..plan }
    }

    /// The executable steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The optimized graph this plan executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The configuration the plan was compiled with.
    pub fn config(&self) -> &BoltConfig {
        &self.config
    }

    /// Number of device kernel launches (excludes host steps and fused
    /// transforms) — what persistent fusion and epilogue fusion reduce.
    pub fn kernel_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                !matches!(
                    s.kind,
                    StepKind::Host | StepKind::LayoutTransform { fused: true, .. }
                )
            })
            .count()
    }

    /// Peak intermediate memory of the planned execution: the sum of the
    /// slot capacities. Strictly less than
    /// [`ExecutionPlan::total_value_bytes`] whenever liveness found any
    /// reuse.
    pub fn workspace_bytes(&self) -> u64 {
        self.slots.slot_bytes.iter().sum()
    }

    /// What the pre-refactor grow-only environment held at the end of a
    /// run: every input and intermediate, simultaneously.
    pub fn total_value_bytes(&self) -> u64 {
        self.slots.total_value_bytes
    }

    /// Number of reusable buffer slots the liveness pass allocated.
    pub fn buffer_slots(&self) -> usize {
        self.slots.slot_bytes.len()
    }

    /// Memory this plan keeps resident while loaded: the prepacked
    /// constants plus the planned peak workspace. This is the number an
    /// engine-lifecycle manager accounts (and evicts) engines by.
    pub fn resident_bytes(&self) -> u64 {
        self.packed_const_bytes() + self.workspace_bytes()
    }

    /// Bytes of prepacked constants resident in the plan.
    pub fn packed_const_bytes(&self) -> u64 {
        self.packed
            .iter()
            .flat_map(|p| {
                p.weights
                    .iter()
                    .map(|w| (w.numel() * w.dtype().size_bytes()) as u64)
                    .chain(
                        p.biases
                            .iter()
                            .flatten()
                            .map(|b| (b.numel() * b.dtype().size_bytes()) as u64),
                    )
            })
            .sum()
    }

    /// The prepacked constants of step `index` (for plan inspection and
    /// golden tests).
    pub fn packed_consts(&self, index: usize) -> &PackedConsts {
        &self.packed[index]
    }

    // -----------------------------------------------------------------
    // Timing mode
    // -----------------------------------------------------------------

    /// Prices every step on the simulator.
    pub fn time(&self) -> TimingReport {
        let mut timeline = Timeline::new();
        for step in &self.steps {
            let time = self.step_time(step);
            timeline.push(step.name.clone(), &time);
        }
        TimingReport {
            total_us: timeline.total_us(),
            timeline,
        }
    }

    /// [`ExecutionPlan::time`], reporting each step to `observer` as it
    /// is priced.
    pub fn time_observed(&self, observer: &mut dyn StepObserver) -> TimingReport {
        let mut timeline = Timeline::new();
        for (i, step) in self.steps.iter().enumerate() {
            let time = self.step_time(step);
            observer.observe(i, step, &time);
            timeline.push(step.name.clone(), &time);
        }
        TimingReport {
            total_us: timeline.total_us(),
            timeline,
        }
    }

    pub(crate) fn step_time(&self, step: &Step) -> KernelTime {
        match &step.kind {
            StepKind::Gemm { kernel, .. } => kernel.time(&self.arch),
            StepKind::Conv2d { kernel, .. } => kernel.time(&self.arch),
            StepKind::B2bGemm { kernel, .. } => kernel.time(&self.arch),
            StepKind::GemmChain { chain, .. } => chain.time(&self.arch),
            StepKind::B2bConv { kernel, .. } => kernel.time(&self.arch),
            StepKind::LayoutTransform { bytes, fused } => {
                let mut profile = KernelProfile::memory_only("layout_transform", *bytes * 2.0);
                // NCHW reads are W-contiguous, NHWC writes C-contiguous;
                // one side is strided.
                profile.alignment_elems = 4;
                let mut t = simulate_kernel(&self.arch, &profile);
                if *fused {
                    // Folded into the adjacent kernel: no launch.
                    t.total_us -= t.launch_us;
                    t.launch_us = 0.0;
                }
                t
            }
            StepKind::PadChannels { bytes } => {
                let mut profile = KernelProfile::memory_only("pad_channels", *bytes);
                profile.alignment_elems = 2; // source is the unaligned tensor
                simulate_kernel(&self.arch, &profile)
            }
            StepKind::Host => host_group_time(&self.arch, &self.graph, &step.covered),
        }
    }

    // -----------------------------------------------------------------
    // Functional mode (slot executor)
    // -----------------------------------------------------------------

    /// Executes the plan on real inputs (one tensor per graph input, in
    /// `Graph::input_ids` order). Rank-4 inputs may be NCHW (converted
    /// internally) or NHWC.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for arity/rank/shape mismatches
    /// (including a mismatched batch dimension) and missing parameter
    /// data. Malformed inputs never panic: every message spells out the
    /// expected vs. received shape.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.run_impl(inputs, None)
    }

    /// [`ExecutionPlan::run`], reporting each executed step with its
    /// simulated time to `observer`.
    pub fn run_observed(
        &self,
        inputs: &[Tensor],
        observer: &mut dyn StepObserver,
    ) -> Result<Vec<Tensor>> {
        self.run_impl(inputs, Some(observer))
    }

    fn run_impl(
        &self,
        inputs: &[Tensor],
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<Vec<Tensor>> {
        let input_ids = self.graph.input_ids();
        self.validate_inputs(inputs, &input_ids)?;

        let mut state: Vec<Option<Tensor>> = vec![None; self.slots.slot_bytes.len()];
        for (&id, tensor) in input_ids.iter().zip(inputs) {
            let value = if tensor.shape().rank() == 4 {
                // Normalize to NHWC internally (Bolt's layout transform).
                if tensor.layout() == Layout::Nhwc {
                    tensor.clone()
                } else {
                    tensor.to_activation_layout(Layout::Nhwc)?
                }
            } else {
                tensor.clone()
            };
            state[self.slots.slot_of[&id]] = Some(value);
        }

        for (i, step) in self.steps.iter().enumerate() {
            let produced = self.execute_step(i, step, &state)?;
            if let Some(obs) = observer.as_deref_mut() {
                let time = self.step_time(step);
                obs.observe(i, step, &time);
            }
            // Release dying inputs, then store: the output may reuse a
            // slot released on this very step.
            for &slot in &self.slots.release_after[i] {
                state[slot] = None;
            }
            if let Some(tensor) = produced {
                state[self.slots.slot_of[&step.output]] = Some(tensor);
            }
        }

        let outs = self.graph.outputs();
        let mut outputs = Vec::with_capacity(outs.len());
        for (k, &out) in outs.iter().enumerate() {
            let slot = self.slots.slot_of.get(&out).copied();
            // Move the value out of its slot unless a later output reads
            // the same node again.
            let taken = match slot {
                Some(s) if outs[k + 1..].contains(&out) => state[s].clone(),
                Some(s) => state[s].take(),
                None => None,
            };
            let t = taken.ok_or_else(|| BoltError::BadInput {
                reason: format!("output {out} was never produced"),
            })?;
            // Convert activations back to the framework's NCHW convention.
            let t = if t.shape().rank() == 4 && t.layout() == Layout::Nhwc {
                t.to_activation_layout(Layout::Nchw)?
            } else {
                t
            };
            outputs.push(t);
        }
        Ok(outputs)
    }

    fn validate_inputs(&self, inputs: &[Tensor], input_ids: &[NodeId]) -> Result<()> {
        if inputs.len() != input_ids.len() {
            return Err(BoltError::BadInput {
                reason: format!("expected {} inputs, got {}", input_ids.len(), inputs.len()),
            });
        }
        for (pos, (&id, tensor)) in input_ids.iter().zip(inputs).enumerate() {
            let want = &self.graph.node(id).shape;
            let got = crate::runtime::logical_dims(tensor);
            if tensor.shape().rank() != want.rank() {
                return Err(BoltError::BadInput {
                    reason: format!(
                        "input {pos} ({id}) rank mismatch: expected rank {} shape {want}, \
                         got rank {} shape {got:?}",
                        want.rank(),
                        tensor.shape().rank(),
                    ),
                });
            }
            if got != want.dims() {
                let what =
                    if !got.is_empty() && got[0] != want.dim(0) && got[1..] == want.dims()[1..] {
                        "batch dimension mismatch"
                    } else {
                        "shape mismatch"
                    };
                return Err(BoltError::BadInput {
                    reason: format!("input {pos} ({id}) {what}: expected {want}, got {got:?}"),
                });
            }
        }
        Ok(())
    }

    fn value<'a>(&self, state: &'a [Option<Tensor>], id: NodeId) -> Result<&'a Tensor> {
        self.slots
            .slot_of
            .get(&id)
            .and_then(|&slot| state[slot].as_ref())
            .ok_or_else(|| BoltError::BadInput {
                reason: format!("step input {id} not yet computed"),
            })
    }

    /// Executes one step against the slot table, borrowing inputs in
    /// place (no clones on the hot path) and returning the produced
    /// tensor, if the step produces one.
    fn execute_step(
        &self,
        index: usize,
        step: &Step,
        state: &[Option<Tensor>],
    ) -> Result<Option<Tensor>> {
        // Prepacked constants, or a lazy repack for shapes-only graphs
        // (which fails with the same missing-parameter error the old
        // interpreter raised).
        let lazy;
        let packed = if self.packed[index].materialized {
            &self.packed[index]
        } else {
            lazy = self.pack_step(step)?;
            &lazy
        };
        match &step.kind {
            StepKind::Gemm {
                kernel, residual, ..
            } => {
                let a = self.value(state, step.inputs[0])?;
                let c: Option<&Tensor> = match residual {
                    Some(r) => Some(self.value(state, *r)?),
                    None => packed.biases[0].as_deref(),
                };
                let (d, _) = kernel.run(a, &packed.weights[0], c)?;
                Ok(Some(d))
            }
            StepKind::Conv2d { kernel, pad_to, .. } => {
                let x = self.value(state, step.inputs[0])?;
                let padded;
                let x = match pad_to {
                    Some(pc) if x.dims4().1 < *pc => {
                        padded = x.pad_channels_nhwc(*pc)?;
                        &padded
                    }
                    _ => x,
                };
                let d = kernel.run(x, &packed.weights[0], packed.biases[0].as_deref())?;
                Ok(Some(d))
            }
            StepKind::B2bGemm { kernel, .. } => {
                let a = self.value(state, step.inputs[0])?;
                let d = kernel.run(
                    a,
                    &packed.weights[0],
                    packed.biases[0].as_deref(),
                    &packed.weights[1],
                    packed.biases[1].as_deref(),
                )?;
                Ok(Some(d))
            }
            StepKind::GemmChain { chain, .. } => {
                let a = self.value(state, step.inputs[0])?;
                let w_refs: Vec<&Tensor> = packed.weights.iter().map(|w| w.as_ref()).collect();
                let b_refs: Vec<Option<&Tensor>> =
                    packed.biases.iter().map(|b| b.as_deref()).collect();
                let d = chain.run(a, &w_refs, &b_refs)?;
                Ok(Some(d))
            }
            StepKind::B2bConv { kernel, pad_to, .. } => {
                let x = self.value(state, step.inputs[0])?;
                let padded;
                let x = match pad_to {
                    Some(pc) if x.dims4().1 < *pc => {
                        padded = x.pad_channels_nhwc(*pc)?;
                        &padded
                    }
                    _ => x,
                };
                let d = kernel.run(
                    x,
                    &packed.weights[0],
                    packed.biases[0].as_deref(),
                    &packed.weights[1],
                    packed.biases[1].as_deref(),
                )?;
                Ok(Some(d))
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } => {
                // Functional no-ops: the executor already tracks layouts
                // and padding inside the kernel steps.
                Ok(None)
            }
            StepKind::Host => {
                // A Host step may cover a fused injective chain: execute
                // its nodes in topological order against chain-local
                // values, returning only the step output.
                let mut nodes = step.covered.clone();
                nodes.sort_unstable();
                let mut locals: HashMap<NodeId, Tensor> = HashMap::new();
                for node in nodes {
                    let t = {
                        let scope = HostScope {
                            plan: self,
                            state,
                            locals: &locals,
                        };
                        run_host_op(&self.graph, node, &scope)?
                    };
                    locals.insert(node, t);
                }
                locals
                    .remove(&step.output)
                    .map(Some)
                    .ok_or_else(|| BoltError::BadInput {
                        reason: format!(
                            "host step {} did not produce its output {}",
                            step.name, step.output
                        ),
                    })
            }
        }
    }

    // -----------------------------------------------------------------
    // Batch capacity and serving entry points
    // -----------------------------------------------------------------

    /// The batch capacity this plan was compiled for: dimension 0 shared
    /// by every graph input.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] when the graph has no inputs, an
    /// input is scalar, or the inputs disagree on the batch dimension.
    pub fn batch_size(&self) -> Result<usize> {
        let input_ids = self.graph.input_ids();
        let mut batch = None;
        for &id in &input_ids {
            let shape = &self.graph.node(id).shape;
            if shape.rank() == 0 {
                return Err(BoltError::BadInput {
                    reason: format!("input {id} is scalar; it has no batch dimension"),
                });
            }
            let b = shape.dim(0);
            match batch {
                None => batch = Some(b),
                Some(prev) if prev != b => {
                    return Err(BoltError::BadInput {
                        reason: format!(
                            "inputs disagree on the batch dimension: {prev} vs {b} (input {id})"
                        ),
                    })
                }
                Some(_) => {}
            }
        }
        batch.ok_or_else(|| BoltError::BadInput {
            reason: "model has no inputs".into(),
        })
    }

    /// Batch-slicing execution for the serving layer: stacks per-request
    /// single-sample inputs along the batch dimension, pads the tail of a
    /// partial batch by replicating the last sample, runs the whole batch
    /// once, and slices the outputs back per sample (padding rows are
    /// dropped).
    ///
    /// `samples[s]` holds sample `s`'s inputs in `Graph::input_ids`
    /// order, each with batch dimension 1. At most
    /// [`ExecutionPlan::batch_size`] samples are admitted per call.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::BadInput`] for an empty or oversized sample
    /// list, per-sample arity/shape mismatches, or any error from
    /// [`ExecutionPlan::run`].
    pub fn run_batched(&self, samples: &[Vec<Tensor>]) -> Result<Vec<Vec<Tensor>>> {
        let capacity = self.batch_size()?;
        if samples.is_empty() {
            return Err(BoltError::BadInput {
                reason: "run_batched needs at least one sample".into(),
            });
        }
        if samples.len() > capacity {
            return Err(BoltError::BadInput {
                reason: format!(
                    "{} samples exceed the compiled batch capacity {capacity}",
                    samples.len()
                ),
            });
        }
        let arity = self.graph.input_ids().len();
        for (s, sample) in samples.iter().enumerate() {
            if sample.len() != arity {
                return Err(BoltError::BadInput {
                    reason: format!("sample {s}: expected {arity} inputs, got {}", sample.len()),
                });
            }
        }

        let mut batched = Vec::with_capacity(arity);
        for i in 0..arity {
            let columns: Vec<&Tensor> = samples.iter().map(|s| &s[i]).collect();
            batched.push(stack_batch(&columns, capacity)?);
        }
        let outputs = self.run(&batched)?;

        let mut per_sample = vec![Vec::with_capacity(outputs.len()); samples.len()];
        for output in &outputs {
            for (s, slot) in per_sample.iter_mut().enumerate() {
                slot.push(slice_batch(output, s)?);
            }
        }
        Ok(per_sample)
    }

    // -----------------------------------------------------------------
    // Constant packing
    // -----------------------------------------------------------------

    fn param(&self, id: NodeId) -> Result<&Tensor> {
        self.graph.param(id).ok_or_else(|| BoltError::BadInput {
            reason: format!(
                "constant {id} ({}) has no data; build the model with materialized parameters",
                self.graph.node(id).name
            ),
        })
    }

    fn packed_bias(&self, id: Option<NodeId>) -> Result<Option<Arc<Tensor>>> {
        match id {
            Some(id) => Ok(Some(Arc::new(self.param(id)?.clone()))),
            None => Ok(None),
        }
    }

    /// Packs one step's constants into kernel-native layouts. Fails when
    /// the graph carries shapes-only parameters.
    fn pack_step(&self, step: &Step) -> Result<PackedConsts> {
        let mut packed = PackedConsts {
            materialized: true,
            ..PackedConsts::default()
        };
        match &step.kind {
            StepKind::Gemm { weight, bias, .. } => {
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*weight)?)));
                packed.biases.push(self.packed_bias(*bias)?);
            }
            StepKind::Conv2d {
                filter,
                bias,
                pad_to,
                ..
            } => {
                packed
                    .weights
                    .push(Arc::new(pack_conv_filter(self.param(*filter)?, *pad_to)));
                packed.biases.push(self.packed_bias(*bias)?);
            }
            StepKind::B2bGemm { w0, b0, w1, b1, .. } => {
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*w0)?)));
                packed
                    .weights
                    .push(Arc::new(pack_dense_weight(self.param(*w1)?)));
                packed.biases.push(self.packed_bias(*b0)?);
                packed.biases.push(self.packed_bias(*b1)?);
            }
            StepKind::GemmChain {
                weights, biases, ..
            } => {
                for w in weights {
                    packed
                        .weights
                        .push(Arc::new(pack_dense_weight(self.param(*w)?)));
                }
                for b in biases {
                    packed.biases.push(self.packed_bias(*b)?);
                }
            }
            StepKind::B2bConv {
                f0,
                b0,
                f1,
                b1,
                pad_to,
                ..
            } => {
                packed
                    .weights
                    .push(Arc::new(pack_conv_filter(self.param(*f0)?, *pad_to)));
                packed
                    .weights
                    .push(Arc::new(pack_conv_filter(self.param(*f1)?, None)));
                packed.biases.push(self.packed_bias(*b0)?);
                packed.biases.push(self.packed_bias(*b1)?);
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } | StepKind::Host => {}
        }
        Ok(packed)
    }

    // -----------------------------------------------------------------
    // Reference interpreter (pre-refactor semantics)
    // -----------------------------------------------------------------

    /// The pre-refactor interpreter: a grow-only `HashMap` environment,
    /// every input cloned out per step, every weight repacked per call.
    /// Kept as the semantic oracle (the slot executor must match it
    /// bit-for-bit) and as the baseline the benchmarks compare the
    /// compiled path against.
    ///
    /// # Errors
    ///
    /// Same contract as [`ExecutionPlan::run`].
    pub fn run_reference(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let input_ids = self.graph.input_ids();
        self.validate_inputs(inputs, &input_ids)?;
        let mut env: HashMap<NodeId, Tensor> = HashMap::new();
        for (&id, tensor) in input_ids.iter().zip(inputs) {
            if tensor.shape().rank() == 4 {
                let nhwc = if tensor.layout() == Layout::Nhwc {
                    tensor.clone()
                } else {
                    tensor.to_activation_layout(Layout::Nhwc)?
                };
                env.insert(id, nhwc);
            } else {
                env.insert(id, tensor.clone());
            }
        }

        for step in &self.steps {
            self.run_step_reference(step, &mut env)?;
        }

        let mut outputs = Vec::new();
        for &out in self.graph.outputs() {
            let t = env.get(&out).ok_or_else(|| BoltError::BadInput {
                reason: format!("output {out} was never produced"),
            })?;
            let t = if t.shape().rank() == 4 && t.layout() == Layout::Nhwc {
                t.to_activation_layout(Layout::Nchw)?
            } else {
                t.clone()
            };
            outputs.push(t);
        }
        Ok(outputs)
    }

    fn run_step_reference(&self, step: &Step, env: &mut HashMap<NodeId, Tensor>) -> Result<()> {
        let fetch = |env: &HashMap<NodeId, Tensor>, id: NodeId| -> Result<Tensor> {
            env.get(&id).cloned().ok_or_else(|| BoltError::BadInput {
                reason: format!("step input {id} not yet computed"),
            })
        };
        match &step.kind {
            StepKind::Gemm {
                kernel,
                weight,
                bias,
                residual,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let b = pack_dense_weight(self.param(*weight)?);
                let c = if let Some(r) = residual {
                    Some(fetch(env, *r)?)
                } else if let Some(b) = bias {
                    Some(self.param(*b)?.clone())
                } else {
                    None
                };
                let (d, _) = kernel.run(&a, &b, c.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::Conv2d {
                kernel,
                filter,
                bias,
                pad_to,
                ..
            } => {
                let mut x = fetch(env, step.inputs[0])?;
                if let Some(pc) = pad_to {
                    if x.dims4().1 < *pc {
                        x = x.pad_channels_nhwc(*pc)?;
                    }
                }
                let f = pack_conv_filter(self.param(*filter)?, *pad_to);
                let b = match bias {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&x, &f, b.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::B2bGemm {
                kernel,
                w0,
                b0,
                w1,
                b1,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let w0t = pack_dense_weight(self.param(*w0)?);
                let w1t = pack_dense_weight(self.param(*w1)?);
                let b0t = match b0 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let b1t = match b1 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&a, &w0t, b0t.as_ref(), &w1t, b1t.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::GemmChain {
                chain,
                weights,
                biases,
            } => {
                let a = fetch(env, step.inputs[0])?;
                let ws: Vec<Tensor> = weights
                    .iter()
                    .map(|w| Ok(pack_dense_weight(self.param(*w)?)))
                    .collect::<Result<_>>()?;
                let w_refs: Vec<&Tensor> = ws.iter().collect();
                let bs: Vec<Option<Tensor>> = biases
                    .iter()
                    .map(|b| match b {
                        Some(b) => Ok(Some(self.param(*b)?.clone())),
                        None => Ok(None),
                    })
                    .collect::<Result<_>>()?;
                let b_refs: Vec<Option<&Tensor>> = bs.iter().map(|b| b.as_ref()).collect();
                let d = chain.run(&a, &w_refs, &b_refs)?;
                env.insert(step.output, d);
            }
            StepKind::B2bConv {
                kernel,
                f0,
                b0,
                f1,
                b1,
                pad_to,
            } => {
                let mut x = fetch(env, step.inputs[0])?;
                if let Some(pc) = pad_to {
                    if x.dims4().1 < *pc {
                        x = x.pad_channels_nhwc(*pc)?;
                    }
                }
                let f0t = pack_conv_filter(self.param(*f0)?, *pad_to);
                let f1t = pack_conv_filter(self.param(*f1)?, None);
                let b0t = match b0 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let b1t = match b1 {
                    Some(b) => Some(self.param(*b)?.clone()),
                    None => None,
                };
                let d = kernel.run(&x, &f0t, b0t.as_ref(), &f1t, b1t.as_ref())?;
                env.insert(step.output, d);
            }
            StepKind::LayoutTransform { .. } | StepKind::PadChannels { .. } => {}
            StepKind::Host => {
                let mut nodes = step.covered.clone();
                nodes.sort_unstable();
                for node in nodes {
                    let t = run_host_op(&self.graph, node, env)?;
                    env.insert(node, t);
                }
            }
        }
        Ok(())
    }
}
