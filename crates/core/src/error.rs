//! Error type for the Bolt compiler.

use std::fmt;

use bolt_cutlass::KernelError;
use bolt_graph::GraphError;
use bolt_tensor::TensorError;

/// Errors produced while compiling or executing a model.
#[derive(Debug, Clone, PartialEq)]
pub enum BoltError {
    /// No template configuration could serve a workload.
    NoKernel {
        /// Description of the workload.
        workload: String,
    },
    /// The runtime was fed inputs inconsistent with the graph.
    BadInput {
        /// What was wrong.
        reason: String,
    },
    /// A graph operation failed.
    Graph(GraphError),
    /// A kernel-library operation failed.
    Kernel(KernelError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A strict tune-cache or bundle load was asked to serve an
    /// architecture the file holds no shard for. Strict loads are used
    /// for *shipped* artifacts (`bolt-tune` bundles, fleet boot), where
    /// silently ignoring the file — the opportunistic cache's behavior —
    /// would hide a fleet misconfiguration behind minutes of surprise
    /// re-tuning.
    CacheArchMismatch {
        /// The cache or bundle path.
        path: String,
        /// The architecture the load needed (name + fingerprint).
        expected: String,
        /// What the file actually contains.
        found: String,
    },
    /// An explicitly configured tune cache or bundle could not be read
    /// or failed validation (I/O error, corruption, schema skew).
    CacheLoad {
        /// The cache or bundle path.
        path: String,
        /// Why the load failed.
        reason: String,
    },
    /// A KV-cache operation addressed a sequence position past the
    /// workspace's context capacity, or past the rows its block table
    /// currently has reserved. Recoverable: the caller reserves more
    /// blocks (or retires the sequence) instead of panicking a worker.
    KvCapacity {
        /// The offending sequence position (or requested row count).
        pos: usize,
        /// Rows the workspace's block table currently covers.
        reserved: usize,
        /// The hard per-sequence context capacity.
        max_seq: usize,
    },
    /// The paged KV block pool has no free block to hand out: every
    /// block under the budget is either in use by a live sequence or
    /// withheld by memory pressure. Recoverable: the serving layer
    /// preempts a victim sequence (releasing its blocks) or queues the
    /// admission until blocks free up.
    KvExhausted {
        /// Blocks the failed reservation still needed.
        needed: usize,
        /// Blocks currently held by live sequences.
        in_use: usize,
        /// Total block budget of the pool.
        budget: usize,
        /// Blocks transiently withheld (memory-pressure injection or an
        /// external cap), unusable until released.
        withheld: usize,
    },
    /// A failure injected by the fault-injection layer
    /// ([`crate::faults`], `chaos` feature). Never constructed in
    /// production builds; exists unconditionally so hardened call
    /// sites match on it without `cfg` noise.
    Injected {
        /// Which injection site fired (for example `"Compile occurrence 3"`).
        site: String,
    },
}

impl fmt::Display for BoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoltError::NoKernel { workload } => {
                write!(f, "no legal template configuration for workload {workload}")
            }
            BoltError::BadInput { reason } => write!(f, "bad runtime input: {reason}"),
            BoltError::Graph(e) => write!(f, "graph error: {e}"),
            BoltError::Kernel(e) => write!(f, "kernel error: {e}"),
            BoltError::Tensor(e) => write!(f, "tensor error: {e}"),
            BoltError::CacheArchMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "tune cache {path} has no shard for {expected} (found: {found})"
            ),
            BoltError::CacheLoad { path, reason } => {
                write!(f, "failed to load tune cache {path}: {reason}")
            }
            BoltError::KvCapacity {
                pos,
                reserved,
                max_seq,
            } => write!(
                f,
                "KV position {pos} out of capacity (reserved rows {reserved}, context {max_seq})"
            ),
            BoltError::KvExhausted {
                needed,
                in_use,
                budget,
                withheld,
            } => write!(
                f,
                "KV block pool exhausted: {needed} more block(s) needed, \
                 {in_use}/{budget} in use, {withheld} withheld"
            ),
            BoltError::Injected { site } => write!(f, "injected fault: {site}"),
        }
    }
}

impl std::error::Error for BoltError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BoltError::Graph(e) => Some(e),
            BoltError::Kernel(e) => Some(e),
            BoltError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BoltError {
    fn from(e: GraphError) -> Self {
        BoltError::Graph(e)
    }
}

impl From<KernelError> for BoltError {
    fn from(e: KernelError) -> Self {
        BoltError::Kernel(e)
    }
}

impl From<TensorError> for BoltError {
    fn from(e: TensorError) -> Self {
        BoltError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BoltError = TensorError::invalid("x").into();
        assert!(e.to_string().contains("tensor error"));
        let k: BoltError = KernelError::illegal("y").into();
        assert!(k.to_string().contains("kernel error"));
        let n = BoltError::NoKernel {
            workload: "gemm".into(),
        };
        assert!(n.to_string().contains("gemm"));
    }
}
