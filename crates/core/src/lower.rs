//! Lowering: optimized graph → executable steps.
//!
//! This is where Bolt's graph-level optimizations happen:
//!
//! * **Epilogue fusion** (Section 3.1): each Dense/Conv2d anchor absorbs
//!   its following BiasAdd, residual Add (GEMM only), and activation into
//!   a CUTLASS epilogue, so the whole pattern runs as one kernel.
//! * **Persistent-kernel fusion** (Section 3.1.1): back-to-back
//!   GEMM/GEMM and Conv/1×1-Conv step pairs that satisfy threadblock
//!   residence are merged into one persistent kernel — but only when the
//!   profiler says the fused kernel is actually faster (the paper's
//!   "fusing compute-bound operators could lead to performance drops").
//! * **Kernel padding** (Section 3.2.3): convolutions with channel counts
//!   not divisible by 8 are rebuilt over padded inputs/filters; the pad
//!   kernel's cost is charged unless it folds into the boundary layout
//!   transform.
//! * **Layout planning** (Section 3.2.3): one fused NCHW→NHWC transform
//!   at the first layer and one back at the last, instead of standalone
//!   transform kernels around every offloaded region.

use std::collections::HashSet;

use bolt_cutlass::{
    B2bConvKernel, B2bGemmKernel, BiasMode, Conv2dKernel, Epilogue, GemmKernel, GemmProblem,
    PersistentGemmChain,
};
use bolt_gpu_sim::GpuArch;
use bolt_graph::{Graph, Node, NodeId, OpKind};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

use crate::config::BoltConfig;
use crate::error::BoltError;
use crate::profiler::{BoltProfiler, ProfileTask};
use crate::runtime::{Step, StepKind};
use crate::Result;

/// Result of epilogue absorption starting at an anchor node.
#[derive(Debug, Clone)]
pub(crate) struct AbsorbedEpilogue {
    /// Bias constant node, if a BiasAdd was absorbed.
    pub bias: Option<NodeId>,
    /// Residual activation input, if an Add was absorbed.
    pub residual: Option<NodeId>,
    /// Absorbed activation (Identity if none).
    pub activation: Activation,
    /// The node whose value the fused kernel produces.
    pub output: NodeId,
    /// All nodes folded into the kernel (anchor first).
    pub covered: Vec<NodeId>,
}

/// Greedily absorbs the epilogue chain hanging off `anchor`:
/// `[BiasAdd] [Add] [Activation]`, each only when the intermediate value
/// has no other consumer.
pub(crate) fn absorb_epilogue(
    graph: &Graph,
    anchor: &Node,
    allow_residual: bool,
    enabled: bool,
) -> AbsorbedEpilogue {
    absorb_epilogue_ext(graph, anchor, allow_residual, false, enabled)
}

/// Like [`absorb_epilogue`], but optionally absorbing a residual Add even
/// after a BiasAdd. CUTLASS epilogues cannot combine a per-column bias
/// with a full-matrix residual, so Bolt's lowering never sets
/// `residual_with_bias`; TVM's injective output fusion can, so the Ansor
/// baseline does.
pub(crate) fn absorb_epilogue_ext(
    graph: &Graph,
    anchor: &Node,
    allow_residual: bool,
    residual_with_bias: bool,
    enabled: bool,
) -> AbsorbedEpilogue {
    let mut absorbed = AbsorbedEpilogue {
        bias: None,
        residual: None,
        activation: Activation::Identity,
        output: anchor.id,
        covered: vec![anchor.id],
    };
    if !enabled {
        return absorbed;
    }
    let mut cur = anchor.id;
    while let Some(next) = graph.single_consumer(cur) {
        let node = graph.node(next);
        match &node.kind {
            OpKind::BiasAdd
                if absorbed.bias.is_none()
                    && absorbed.residual.is_none()
                    && absorbed.activation == Activation::Identity =>
            {
                let bias_src = node.inputs[1];
                if !matches!(graph.node(bias_src).kind, OpKind::Constant { .. }) {
                    break;
                }
                absorbed.bias = Some(bias_src);
            }
            OpKind::Add
                if allow_residual
                    && (absorbed.bias.is_none() || residual_with_bias)
                    && absorbed.residual.is_none()
                    && absorbed.activation == Activation::Identity =>
            {
                let other = if node.inputs[0] == cur {
                    node.inputs[1]
                } else {
                    node.inputs[0]
                };
                // The residual operand must already be available when this
                // kernel runs: it has to precede the anchor in topo order.
                if other.index() >= anchor.id.index() {
                    break;
                }
                absorbed.residual = Some(other);
            }
            OpKind::Activation(act) if absorbed.activation == Activation::Identity => {
                absorbed.activation = *act;
                absorbed.covered.push(next);
                absorbed.output = next;
                break; // activation terminates the epilogue
            }
            _ => break,
        }
        absorbed.covered.push(next);
        absorbed.output = next;
        cur = next;
    }
    absorbed
}

/// Builds the CUTLASS epilogue for an absorption result.
fn build_epilogue(absorbed: &AbsorbedEpilogue, out_dtype: DType) -> Epilogue {
    let bias = if absorbed.residual.is_some() {
        BiasMode::Full
    } else if absorbed.bias.is_some() {
        BiasMode::PerColumn
    } else {
        BiasMode::None
    };
    Epilogue {
        alpha: 1.0,
        beta: if bias == BiasMode::None { 0.0 } else { 1.0 },
        bias,
        activation: absorbed.activation,
        out_dtype,
        column_reduction: false,
    }
}

/// A Dense anchor's derived profiling workload.
struct DenseWorkload {
    problem: GemmProblem,
    absorbed: AbsorbedEpilogue,
    epilogue: Epilogue,
}

fn dense_workload(graph: &Graph, node: &Node, config: &BoltConfig) -> DenseWorkload {
    let x = graph.node(node.inputs[0]);
    let w = graph.node(node.inputs[1]);
    let problem = GemmProblem {
        m: x.shape.dim(0),
        n: w.shape.dim(0),
        k: w.shape.dim(1),
        batch: 1,
        element: node.dtype,
        ..GemmProblem::fp16(1, 1, 1)
    };
    let absorbed = absorb_epilogue(graph, node, true, config.epilogue_fusion);
    let epilogue = build_epilogue(&absorbed, node.dtype);
    DenseWorkload {
        problem,
        absorbed,
        epilogue,
    }
}

/// A Conv2d anchor's derived profiling workload (post-padding).
struct ConvWorkload {
    problem: Conv2dProblem,
    pad_to: Option<usize>,
    pad_fused: bool,
    absorbed: AbsorbedEpilogue,
    epilogue: Epilogue,
}

fn conv_workload(graph: &Graph, node: &Node, config: &BoltConfig) -> ConvWorkload {
    let OpKind::Conv2d {
        stride,
        padding,
        dilation,
    } = node.kind
    else {
        unreachable!("conv_workload called on non-conv");
    };
    let x = graph.node(node.inputs[0]);
    let w = graph.node(node.inputs[1]);
    let mut problem = Conv2dProblem {
        n: x.shape.dim(0),
        h: x.shape.dim(2),
        w: x.shape.dim(3),
        c: x.shape.dim(1),
        k: w.shape.dim(0),
        r: w.shape.dim(2),
        s: w.shape.dim(3),
        stride,
        padding,
        dilation,
    };

    // ---- Automatic kernel padding -----------------------------------------
    let needs_pad = config.kernel_padding && !problem.c.is_multiple_of(8);
    let pad_to = if needs_pad {
        Some(problem.c.div_ceil(8) * 8)
    } else {
        None
    };
    if let Some(pc) = pad_to {
        problem.c = pc;
    }
    // The pad folds into the boundary layout transform when this conv reads
    // a graph input directly (the model's first layer).
    let pad_fused = matches!(graph.node(node.inputs[0]).kind, OpKind::Input { .. })
        && config.layout_transform_folding;

    let absorbed = absorb_epilogue(graph, node, false, config.epilogue_fusion);
    let epilogue = build_epilogue(&absorbed, node.dtype);
    ConvWorkload {
        problem,
        pad_to,
        pad_fused,
        absorbed,
        epilogue,
    }
}

/// Phase 1 of lowering: walk the graph and derive the profiling task of
/// every GEMM/Conv2D anchor, exactly as phase 2 will request them.
///
/// Anchors are never absorbed into other anchors' epilogues (only
/// BiasAdd/Add/Activation nodes are), so every anchor can be visited
/// unconditionally and the resulting task set matches the per-node
/// lookups of [`lower`] one-to-one. Duplicate workloads (e.g. the
/// repeated blocks of a ResNet) are left in — [`BoltProfiler::profile_batch`]
/// deduplicates by cache key.
pub(crate) fn collect_profile_tasks(graph: &Graph, config: &BoltConfig) -> Vec<ProfileTask> {
    let mut tasks = Vec::new();
    for node in graph.nodes() {
        if node.kind.is_data() {
            continue;
        }
        match &node.kind {
            OpKind::Dense => {
                let wl = dense_workload(graph, node, config);
                tasks.push(ProfileTask::Gemm {
                    problem: wl.problem,
                    epilogue: wl.epilogue,
                });
            }
            OpKind::Conv2d { .. } => {
                let wl = conv_workload(graph, node, config);
                tasks.push(ProfileTask::Conv2d {
                    problem: wl.problem,
                    epilogue: wl.epilogue,
                    element: node.dtype,
                });
            }
            _ => {}
        }
    }
    tasks
}

/// Lowers an optimized graph to steps.
///
/// Lowering is two-phase: first every unique GEMM/Conv2D workload in the
/// graph is profiled as one batch ([`collect_profile_tasks`] +
/// [`BoltProfiler::profile_batch`]), fanning measurements across worker
/// threads; then the per-node lowering below runs against the now-warm
/// cache, so graph rewriting never serializes behind measurement.
pub(crate) fn lower(
    graph: &Graph,
    arch: &GpuArch,
    config: &BoltConfig,
    profiler: &BoltProfiler,
) -> Result<Vec<Step>> {
    if config.parallel_profiling {
        profiler.profile_batch(&collect_profile_tasks(graph, config));
    }

    let mut steps: Vec<Step> = Vec::new();
    let mut covered: HashSet<NodeId> = HashSet::new();

    for node in graph.nodes() {
        if node.kind.is_data() || covered.contains(&node.id) {
            continue;
        }
        match &node.kind {
            OpKind::Dense => {
                let step = lower_dense(graph, node, config, profiler)?;
                covered.extend(step.covered.iter().copied());
                steps.push(step);
            }
            OpKind::Conv2d { .. } => {
                let (pad, step) = lower_conv(graph, node, config, profiler)?;
                covered.extend(step.covered.iter().copied());
                if let Some(pad) = pad {
                    steps.push(pad);
                }
                steps.push(step);
            }
            _ => {
                covered.insert(node.id);
                steps.push(Step {
                    name: format!("host_{}_{}", node.kind.name(), node.id.index()),
                    kind: StepKind::Host,
                    inputs: node.inputs.clone(),
                    output: node.id,
                    covered: vec![node.id],
                });
            }
        }
    }

    if config.persistent_kernels {
        steps = fuse_persistent(graph, arch, steps)?;
    }
    steps = fuse_host_chains(graph, steps);
    add_layout_steps(graph, config, &mut steps);
    Ok(steps)
}

/// TVM-style injective fusion of the *fallback* side: maximal chains of
/// elementwise host ops (Add, BiasAdd, activation, unfolded BatchNorm)
/// become one elementwise kernel. Both Bolt's fallback and the Ansor
/// baseline get this, so the comparison stays fair.
fn fuse_host_chains(graph: &Graph, steps: Vec<Step>) -> Vec<Step> {
    let mut steps = steps;
    'outer: loop {
        for i in 0..steps.len() {
            if !matches!(steps[i].kind, StepKind::Host)
                || !crate::runtime::is_injective(&graph.node(steps[i].output).kind)
            {
                continue;
            }
            let output = steps[i].output;
            if graph.consumers(output).len() != 1 || graph.outputs().contains(&output) {
                continue;
            }
            let Some(j) = steps.iter().position(|s| {
                matches!(s.kind, StepKind::Host)
                    && s.inputs.contains(&output)
                    && crate::runtime::is_injective(&graph.node(s.output).kind)
            }) else {
                continue;
            };
            let tail = steps.remove(j);
            let idx = if j < i { i - 1 } else { i };
            let head = &mut steps[idx];
            head.covered.extend(tail.covered.iter().copied());
            head.output = tail.output;
            head.name = format!("host_fused_eltwise_{}", tail.output.index());
            // External inputs of the merged group.
            let mut inputs = head.inputs.clone();
            for input in tail.inputs {
                if input != output && !inputs.contains(&input) {
                    inputs.push(input);
                }
            }
            head.inputs = inputs;
            continue 'outer;
        }
        return steps;
    }
}

fn lower_dense(
    graph: &Graph,
    node: &Node,
    config: &BoltConfig,
    profiler: &BoltProfiler,
) -> Result<Step> {
    let DenseWorkload {
        problem,
        absorbed,
        epilogue,
    } = dense_workload(graph, node, config);
    let profiled =
        profiler
            .profile_gemm(&problem, &epilogue)
            .ok_or_else(|| BoltError::NoKernel {
                workload: problem.to_string(),
            })?;
    let kernel = GemmKernel::new(problem, profiled.config, epilogue)
        .with_parallel_m_rows(config.parallel_m_rows);

    let mut inputs = vec![node.inputs[0]];
    if let Some(r) = absorbed.residual {
        inputs.push(r);
    }
    Ok(Step {
        name: format!("bolt_{}_{}", kernel.name(), node.id.index()),
        kind: StepKind::Gemm {
            kernel,
            weight: node.inputs[1],
            bias: absorbed.bias,
            residual: absorbed.residual,
        },
        inputs,
        output: absorbed.output,
        covered: absorbed.covered,
    })
}

fn lower_conv(
    graph: &Graph,
    node: &Node,
    config: &BoltConfig,
    profiler: &BoltProfiler,
) -> Result<(Option<Step>, Step)> {
    let ConvWorkload {
        problem,
        pad_to,
        pad_fused,
        absorbed,
        epilogue,
    } = conv_workload(graph, node, config);
    let x = graph.node(node.inputs[0]);
    let profiled = profiler
        .best_conv_config(&problem, &epilogue, node.dtype)
        .ok_or_else(|| BoltError::NoKernel {
            workload: format!("{problem:?}"),
        })?;
    let kernel = Conv2dKernel::new(problem, profiled, epilogue, node.dtype);

    let pad_step = match (pad_to, pad_fused) {
        (Some(pc), false) => {
            let elt = node.dtype.size_bytes() as f64;
            let in_elems = (problem.n * problem.h * problem.w) as f64;
            let bytes = in_elems * (x.shape.dim(1) as f64 + pc as f64) * elt;
            Some(Step {
                name: format!(
                    "bolt_pad_channels_{}_{}to{}",
                    node.id.index(),
                    x.shape.dim(1),
                    pc
                ),
                kind: StepKind::PadChannels { bytes },
                inputs: vec![node.inputs[0]],
                output: node.inputs[0],
                covered: Vec::new(),
            })
        }
        _ => None,
    };

    let step = Step {
        name: format!("bolt_{}_{}", kernel.name(), node.id.index()),
        kind: StepKind::Conv2d {
            kernel,
            filter: node.inputs[1],
            bias: absorbed.bias,
            pad_to,
            pad_fused,
        },
        inputs: vec![node.inputs[0]],
        output: absorbed.output,
        covered: absorbed.covered,
    };
    Ok((pad_step, step))
}

/// Post-pass: merge profitable back-to-back kernel pairs into persistent
/// kernels.
fn fuse_persistent(graph: &Graph, arch: &GpuArch, steps: Vec<Step>) -> Result<Vec<Step>> {
    let mut steps = steps;
    loop {
        let Some((i, j, fused)) = find_fusion(graph, arch, &steps) else {
            return grow_chains(graph, arch, steps);
        };
        let second = steps.remove(j);
        let first = steps[i].clone();
        let mut covered = first.covered.clone();
        covered.extend(second.covered.iter().copied());
        steps[i] = Step {
            name: format!(
                "bolt_persistent_{}_{}",
                first.output.index(),
                second.output.index()
            ),
            kind: fused,
            inputs: first.inputs.clone(),
            output: second.output,
            covered,
        };
    }
}

/// Second fusion phase: extend fused `B2bGemm` pairs into `N >= 3`-stage
/// persistent chains when a following GEMM step continues the dataflow
/// (paper Section 3.1.1: "fusing multiple GEMMs ... by duplicating the
/// GEMM pipelines").
fn grow_chains(graph: &Graph, arch: &GpuArch, mut steps: Vec<Step>) -> Result<Vec<Step>> {
    'outer: loop {
        for i in 0..steps.len() {
            // Candidate head: an already-fused pair or an existing chain.
            let (mut problems, mut epilogues, mut weights, mut biases) = match &steps[i].kind {
                StepKind::B2bGemm {
                    kernel,
                    w0,
                    b0,
                    w1,
                    b1,
                } => (
                    vec![kernel.gemm0, kernel.gemm1],
                    vec![kernel.epilogue0, kernel.epilogue1],
                    vec![*w0, *w1],
                    vec![*b0, *b1],
                ),
                StepKind::GemmChain {
                    chain,
                    weights,
                    biases,
                } => (
                    chain.stages.iter().map(|s| s.problem).collect(),
                    chain.stages.iter().map(|s| s.epilogue).collect(),
                    weights.clone(),
                    biases.clone(),
                ),
                _ => continue,
            };
            // Find the single Gemm step consuming this step's output.
            let output = steps[i].output;
            if graph.consumers(output).len() != 1 || graph.outputs().contains(&output) {
                continue;
            }
            let Some(j) = steps.iter().position(|s| {
                s.inputs.first() == Some(&output)
                    && matches!(s.kind, StepKind::Gemm { residual: None, .. })
            }) else {
                continue;
            };
            let StepKind::Gemm {
                kernel: next,
                weight,
                bias,
                ..
            } = &steps[j].kind
            else {
                continue;
            };
            problems.push(next.problem);
            epilogues.push(next.epilogue);
            weights.push(*weight);
            biases.push(*bias);

            let Ok(chain) = PersistentGemmChain::auto(arch, &problems, &epilogues) else {
                continue;
            };
            // Profit check: the longer chain must beat head + tail. The
            // chain inherits the head's parallel-stripe threshold (set
            // from `BoltConfig::parallel_m_rows` at dense lowering).
            let (head_us, head_pmr) = match &steps[i].kind {
                StepKind::B2bGemm { kernel, .. } => {
                    (kernel.time(arch).total_us, kernel.parallel_m_rows)
                }
                StepKind::GemmChain { chain, .. } => {
                    (chain.time(arch).total_us, chain.parallel_m_rows)
                }
                _ => unreachable!(),
            };
            let chain = chain.with_parallel_m_rows(head_pmr);
            let tail_us = next.time(arch).total_us;
            if chain.time(arch).total_us >= head_us + tail_us {
                continue;
            }

            let tail = steps.remove(j);
            let head = steps[i].clone();
            let mut covered = head.covered.clone();
            covered.extend(tail.covered.iter().copied());
            steps[i] = Step {
                name: format!(
                    "bolt_persistent_chain_x{}_{}",
                    chain.len(),
                    tail.output.index()
                ),
                kind: StepKind::GemmChain {
                    chain,
                    weights,
                    biases,
                },
                inputs: head.inputs.clone(),
                output: tail.output,
                covered,
            };
            continue 'outer;
        }
        return Ok(steps);
    }
}

/// Finds the first profitable fusible pair `(i, j)` and its fused kernel.
fn find_fusion(graph: &Graph, arch: &GpuArch, steps: &[Step]) -> Option<(usize, usize, StepKind)> {
    for i in 0..steps.len() {
        for j in (i + 1)..steps.len() {
            if steps[j].inputs.first() != Some(&steps[i].output) {
                continue;
            }
            // The intermediate must have no other consumers.
            if graph.consumers(steps[i].output).len() != 1
                || graph.outputs().contains(&steps[i].output)
            {
                break;
            }
            match (&steps[i].kind, &steps[j].kind) {
                (
                    StepKind::Gemm {
                        kernel: k0,
                        weight: w0,
                        bias: b0,
                        residual: None,
                    },
                    StepKind::Gemm {
                        kernel: k1,
                        weight: w1,
                        bias: b1,
                        residual: None,
                    },
                ) => {
                    let Ok(fused) =
                        B2bGemmKernel::auto(arch, k0.problem, k1.problem, k0.epilogue, k1.epilogue)
                    else {
                        break;
                    };
                    let fused = fused.with_parallel_m_rows(k0.parallel_m_rows);
                    let fused_us = fused.time(arch).total_us;
                    let unfused_us = k0.time(arch).total_us + k1.time(arch).total_us;
                    if fused_us < unfused_us {
                        return Some((
                            i,
                            j,
                            StepKind::B2bGemm {
                                kernel: fused,
                                w0: *w0,
                                b0: *b0,
                                w1: *w1,
                                b1: *b1,
                            },
                        ));
                    }
                    break;
                }
                (
                    // The first conv may carry automatic padding (it only
                    // affects its own input channels); the second never
                    // needs it because its C equals the first conv's K.
                    StepKind::Conv2d {
                        kernel: k0,
                        filter: f0,
                        bias: b0,
                        pad_to: pad0,
                        ..
                    },
                    StepKind::Conv2d {
                        kernel: k1,
                        filter: f1,
                        bias: b1,
                        pad_to: None,
                        ..
                    },
                ) => {
                    if !k1.problem.is_pointwise_unit() {
                        break;
                    }
                    let Ok(fused) = B2bConvKernel::auto(
                        arch,
                        k0.problem,
                        k1.problem,
                        k0.epilogue,
                        k1.epilogue,
                        k0.element,
                    ) else {
                        break;
                    };
                    let fused_us = fused.time(arch).total_us;
                    let unfused_us = k0.time(arch).total_us + k1.time(arch).total_us;
                    if fused_us < unfused_us {
                        return Some((
                            i,
                            j,
                            StepKind::B2bConv {
                                kernel: fused,
                                f0: *f0,
                                b0: *b0,
                                f1: *f1,
                                b1: *b1,
                                pad_to: *pad0,
                            },
                        ));
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    None
}

/// Adds layout-transformation steps at region boundaries.
fn add_layout_steps(graph: &Graph, config: &BoltConfig, steps: &mut Vec<Step>) {
    let has_conv = steps
        .iter()
        .any(|s| matches!(s.kind, StepKind::Conv2d { .. } | StepKind::B2bConv { .. }));
    if !has_conv {
        return;
    }
    let elt = 2.0f64; // FP16
    let fused = config.layout_transform_folding;

    // Entry: every rank-4 graph input feeding the model.
    let mut entry = Vec::new();
    for id in graph.input_ids() {
        let node = graph.node(id);
        if node.shape.rank() == 4 {
            entry.push(Step {
                name: format!("layout_nchw_to_nhwc_input_{}", id.index()),
                kind: StepKind::LayoutTransform {
                    bytes: node.shape.numel() as f64 * elt,
                    fused,
                },
                inputs: vec![id],
                output: id,
                covered: Vec::new(),
            });
        }
    }
    // Exit: every rank-4 graph output.
    let mut exit = Vec::new();
    for &id in graph.outputs() {
        let node = graph.node(id);
        if node.shape.rank() == 4 {
            exit.push(Step {
                name: format!("layout_nhwc_to_nchw_output_{}", id.index()),
                kind: StepKind::LayoutTransform {
                    bytes: node.shape.numel() as f64 * elt,
                    fused,
                },
                inputs: vec![id],
                output: id,
                covered: Vec::new(),
            });
        }
    }

    // Without folding, every rank-4 crossing between a Bolt kernel and a
    // host op pays a standalone transform kernel (TVM's default BYOC
    // behaviour the paper improves on).
    let mut interior = Vec::new();
    if !fused {
        let kernel_outputs: HashSet<NodeId> = steps
            .iter()
            .filter(|s| !matches!(s.kind, StepKind::Host | StepKind::LayoutTransform { .. }))
            .map(|s| s.output)
            .collect();
        for step in steps.iter() {
            if !matches!(step.kind, StepKind::Host) {
                continue;
            }
            let node = graph.node(step.output);
            // Host op consuming a kernel output.
            for &input in &step.inputs {
                if kernel_outputs.contains(&input) && graph.node(input).shape.rank() == 4 {
                    interior.push(Step {
                        name: format!("layout_nhwc_to_nchw_{}", input.index()),
                        kind: StepKind::LayoutTransform {
                            bytes: graph.node(input).shape.numel() as f64 * elt,
                            fused: false,
                        },
                        inputs: vec![input],
                        output: input,
                        covered: Vec::new(),
                    });
                }
            }
            // Host op feeding a kernel.
            if node.shape.rank() == 4
                && graph
                    .consumers(step.output)
                    .iter()
                    .any(|c| matches!(graph.node(*c).kind, OpKind::Conv2d { .. }))
            {
                interior.push(Step {
                    name: format!("layout_nchw_to_nhwc_{}", step.output.index()),
                    kind: StepKind::LayoutTransform {
                        bytes: node.shape.numel() as f64 * elt,
                        fused: false,
                    },
                    inputs: vec![step.output],
                    output: step.output,
                    covered: Vec::new(),
                });
            }
        }
    }

    let mut result = entry;
    result.append(steps);
    result.extend(interior);
    result.extend(exit);
    *steps = result;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::GraphBuilder;

    #[test]
    fn absorb_full_epilogue_chain() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let d = b.dense_bias(x, 8, "fc"); // dense + bias_add
        let r = b.activation(d, Activation::Gelu, "gelu");
        let g = b.finish(&[r]);
        let anchor = g.nodes().iter().find(|n| n.kind == OpKind::Dense).unwrap();
        let a = absorb_epilogue(&g, anchor, true, true);
        assert!(a.bias.is_some());
        assert_eq!(a.activation, Activation::Gelu);
        assert_eq!(a.covered.len(), 3);
        assert_eq!(a.output, r);
    }

    #[test]
    fn absorption_respects_disable_flag() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let d = b.dense_bias(x, 8, "fc");
        let g = b.finish(&[d]);
        let anchor = g.nodes().iter().find(|n| n.kind == OpKind::Dense).unwrap();
        let a = absorb_epilogue(&g, anchor, true, false);
        assert!(a.bias.is_none());
        assert_eq!(a.covered.len(), 1);
    }

    #[test]
    fn absorption_stops_at_multi_consumer() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[8, 16]);
        let d = b.dense(x, 8, "fc");
        let r1 = b.activation(d, Activation::ReLU, "r1");
        let r2 = b.activation(d, Activation::Gelu, "r2");
        let g = b.finish(&[r1, r2]);
        let anchor = g.nodes().iter().find(|n| n.kind == OpKind::Dense).unwrap();
        let a = absorb_epilogue(&g, anchor, true, true);
        assert_eq!(a.covered.len(), 1, "dense output has two consumers");
    }
}
