//! Deterministic, seeded fault injection (the `chaos` feature).
//!
//! TVM-style auto-tuning systems treat measurement workers as
//! crash-prone by design: RPC workers die and are respawned routinely.
//! This module gives the Bolt stack the same failure model in a form a
//! test can drive: a [`ChaosConfig`] describes *which* failures to
//! inject at the seams the stack already has (compile errors, profiler
//! stalls, worker panics and kills, slow batches, truncated autotune
//! caches), and a seeded [`FaultPlan`] decides *when* — as a pure
//! function of `(seed, site, occurrence index)`, so the same seed
//! reproduces the same fault schedule bit-for-bit, regardless of thread
//! interleaving.
//!
//! # Build modes
//!
//! Without the `chaos` cargo feature every query in this module is an
//! inlined no-op: production builds carry no injection branches. With
//! `--features chaos`, call sites consult the globally installed plan
//! (if any). Install one with [`install`], which also serializes chaos
//! tests within a process so two plans never overlap:
//!
//! ```ignore
//! let chaos = bolt::faults::install(ChaosConfig {
//!     seed: 42,
//!     compile_fail_ratio: 0.3,
//!     ..ChaosConfig::default()
//! });
//! // ... drive the system; failures are injected deterministically ...
//! drop(chaos); // uninstalls the plan
//! ```
//!
//! Injection sites report what they injected into the plan's event log
//! ([`events`]) so tests can assert the schedule itself.

use std::time::Duration;

/// A seam where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A profiled compile in [`crate::BoltCompiler::compile`] (injected
    /// as a [`crate::BoltError::Injected`] error).
    Compile,
    /// A heuristic fallback compile in
    /// [`crate::BoltCompiler::compile_heuristic`].
    HeuristicCompile,
    /// One profiler workload measurement (injected as a stall).
    Profile,
    /// An autotune-cache save (injected as a truncated write, simulating
    /// a crash mid-write that the checksum footer must catch on load).
    CacheSave,
    /// Per-batch execution in a serve worker (injected as a panic,
    /// isolated by the worker's `catch_unwind`).
    BatchPanic,
    /// Per-batch execution in a serve worker (injected as a wall-clock
    /// stall — a slow batch).
    BatchStall,
    /// A serve worker between batches (injected as a panic that escapes
    /// the worker loop and kills the thread; the supervisor respawns it).
    WorkerKill,
    /// A background tuner between compiles (thread death, respawned).
    TunerKill,
    /// A whole serving replica in the cluster layer (injected as an
    /// abrupt kill on the routed replica; the router must detect the
    /// death and re-route). Checked once per cluster submission.
    ReplicaKill,
    /// The continuous batcher's KV block pool, checked once per batcher
    /// step (injected as a transient withholding of part of the block
    /// budget — memory pressure the KV governor must degrade through
    /// via watermark back-off and preempt-and-recompute, never a
    /// panic).
    KvPressure,
}

impl FaultSite {
    /// Every site, for schedule-preview assertions.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::Compile,
        FaultSite::HeuristicCompile,
        FaultSite::Profile,
        FaultSite::CacheSave,
        FaultSite::BatchPanic,
        FaultSite::BatchStall,
        FaultSite::WorkerKill,
        FaultSite::TunerKill,
        FaultSite::ReplicaKill,
        FaultSite::KvPressure,
    ];

    fn id(self) -> u64 {
        match self {
            FaultSite::Compile => 1,
            FaultSite::HeuristicCompile => 2,
            FaultSite::Profile => 3,
            FaultSite::CacheSave => 4,
            FaultSite::BatchPanic => 5,
            FaultSite::BatchStall => 6,
            FaultSite::WorkerKill => 7,
            FaultSite::TunerKill => 8,
            FaultSite::ReplicaKill => 9,
            FaultSite::KvPressure => 10,
        }
    }
}

/// What a [`FaultPlan`] injected, for reproducibility assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The seam the fault fired at.
    pub site: FaultSite,
    /// Zero-based occurrence index of that site's check counter.
    pub occurrence: u64,
    /// Human-readable description of the injected action.
    pub action: String,
}

/// The seeded fault schedule: ratios draw deterministically from
/// `(seed, site, occurrence)`, explicit occurrence lists fire exactly at
/// the listed check indices. `Default` injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of every ratio draw; the whole schedule is a pure function
    /// of this value.
    pub seed: u64,
    /// Fraction of profiled compiles that fail with
    /// [`crate::BoltError::Injected`].
    pub compile_fail_ratio: f64,
    /// Fraction of heuristic compiles that fail.
    pub heuristic_fail_ratio: f64,
    /// Fraction of profiler measurements that stall for
    /// [`ChaosConfig::profile_stall`].
    pub profile_stall_ratio: f64,
    /// Stall injected into profiler measurements.
    pub profile_stall: Duration,
    /// Fraction of autotune-cache saves whose written file is truncated
    /// to half its length (simulated crash mid-write).
    pub cache_truncate_ratio: f64,
    /// Worker batch indices (per the [`FaultSite::BatchPanic`] counter)
    /// that panic mid-execution.
    pub batch_panics: Vec<u64>,
    /// Fraction of batches stalled for [`ChaosConfig::batch_stall`]
    /// before executing (slow-batch injection).
    pub batch_stall_ratio: f64,
    /// Stall injected into slow batches.
    pub batch_stall: Duration,
    /// Worker-loop iteration indices (per the [`FaultSite::WorkerKill`]
    /// counter) at which the worker thread dies between batches.
    pub worker_kills: Vec<u64>,
    /// Tuner-loop iteration indices at which a tuner thread dies between
    /// compiles.
    pub tuner_kills: Vec<u64>,
    /// Cluster submission indices (per the [`FaultSite::ReplicaKill`]
    /// counter) at which the routed replica is abruptly killed.
    pub replica_kills: Vec<u64>,
    /// Fraction of batcher steps (per the [`FaultSite::KvPressure`]
    /// counter) at which a memory-pressure episode starts.
    pub kv_pressure_ratio: f64,
    /// Batcher step indices at which a pressure episode starts,
    /// in addition to any ratio draws.
    pub kv_pressure_steps: Vec<u64>,
    /// Fraction of the KV block budget withheld while an episode is
    /// active.
    pub kv_pressure_fraction: f64,
    /// Batcher steps a pressure episode lasts before the withheld
    /// blocks are returned.
    pub kv_pressure_duration_steps: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            compile_fail_ratio: 0.0,
            heuristic_fail_ratio: 0.0,
            profile_stall_ratio: 0.0,
            profile_stall: Duration::from_millis(1),
            cache_truncate_ratio: 0.0,
            batch_panics: Vec::new(),
            batch_stall_ratio: 0.0,
            batch_stall: Duration::from_millis(1),
            worker_kills: Vec::new(),
            tuner_kills: Vec::new(),
            replica_kills: Vec::new(),
            kv_pressure_ratio: 0.0,
            kv_pressure_steps: Vec::new(),
            kv_pressure_fraction: 0.5,
            kv_pressure_duration_steps: 4,
        }
    }
}

impl ChaosConfig {
    /// The deterministic ratio draw for `(site, occurrence)` under this
    /// config's seed: true when the site's configured ratio fires at
    /// that occurrence. Pure — two configs with the same seed agree on
    /// every draw, which is what makes a fault schedule reproducible
    /// bit-for-bit.
    pub fn fires(&self, site: FaultSite, occurrence: u64) -> bool {
        let ratio = match site {
            FaultSite::Compile => self.compile_fail_ratio,
            FaultSite::HeuristicCompile => self.heuristic_fail_ratio,
            FaultSite::Profile => self.profile_stall_ratio,
            FaultSite::CacheSave => self.cache_truncate_ratio,
            FaultSite::BatchStall => self.batch_stall_ratio,
            FaultSite::BatchPanic => return self.batch_panics.contains(&occurrence),
            FaultSite::WorkerKill => return self.worker_kills.contains(&occurrence),
            FaultSite::TunerKill => return self.tuner_kills.contains(&occurrence),
            FaultSite::ReplicaKill => return self.replica_kills.contains(&occurrence),
            FaultSite::KvPressure => {
                // Pressure takes both an explicit step list and a ratio:
                // tests pin exact episodes, chaos sweeps draw them.
                if self.kv_pressure_steps.contains(&occurrence) {
                    return true;
                }
                self.kv_pressure_ratio
            }
        };
        if ratio <= 0.0 {
            return false;
        }
        let draw = mix64(self.seed ^ site.id().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ occurrence);
        (draw as f64 / u64::MAX as f64) < ratio
    }
}

/// SplitMix64 finalizer: a well-mixed pure hash, used for fault-schedule
/// draws here and for deterministic retry jitter in the serving layer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(feature = "chaos")]
mod imp {
    use super::{ChaosConfig, FaultEvent, FaultSite};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, RwLock};

    /// An installed, counting instance of a [`ChaosConfig`].
    #[derive(Debug)]
    pub struct FaultPlan {
        config: ChaosConfig,
        counters: Mutex<HashMap<FaultSite, Arc<AtomicU64>>>,
        log: Mutex<Vec<FaultEvent>>,
    }

    impl FaultPlan {
        fn new(config: ChaosConfig) -> Self {
            FaultPlan {
                config,
                counters: Mutex::new(HashMap::new()),
                log: Mutex::new(Vec::new()),
            }
        }

        /// Draws this site's next occurrence index and reports whether
        /// the schedule fires there.
        fn roll(&self, site: FaultSite) -> (u64, bool) {
            let counter = Arc::clone(
                self.counters
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(site)
                    .or_default(),
            );
            let occurrence = counter.fetch_add(1, Ordering::Relaxed);
            (occurrence, self.config.fires(site, occurrence))
        }

        fn record(&self, site: FaultSite, occurrence: u64, action: impl Into<String>) {
            self.log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(FaultEvent {
                    site,
                    occurrence,
                    action: action.into(),
                });
        }
    }

    /// Serializes chaos sessions within a process: two installed plans
    /// never overlap, so parallel #[test]s using [`install`] are safe.
    static GATE: Mutex<()> = Mutex::new(());
    static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

    fn active() -> Option<Arc<FaultPlan>> {
        PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Keeps a [`ChaosConfig`] installed; dropping it uninstalls the
    /// plan and releases the process-wide chaos gate.
    pub struct ChaosGuard {
        plan: Arc<FaultPlan>,
        _gate: MutexGuard<'static, ()>,
    }

    impl ChaosGuard {
        /// Everything this plan injected so far, in injection order.
        pub fn events(&self) -> Vec<FaultEvent> {
            self.plan
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
        }
    }

    impl Drop for ChaosGuard {
        fn drop(&mut self) {
            *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }

    /// Installs `config` as the process-global fault plan, blocking
    /// until any previously installed plan is dropped.
    pub fn install(config: ChaosConfig) -> ChaosGuard {
        let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(config));
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&plan));
        ChaosGuard { plan, _gate: gate }
    }

    /// The active plan's event log (empty when no plan is installed).
    pub fn events() -> Vec<FaultEvent> {
        active().map_or_else(Vec::new, |p| {
            p.log.lock().unwrap_or_else(|e| e.into_inner()).clone()
        })
    }

    /// Injected error for `site`: `Some(description)` when the schedule
    /// fires.
    pub fn fail(site: FaultSite) -> Option<String> {
        let plan = active()?;
        let (occurrence, fires) = plan.roll(site);
        if !fires {
            return None;
        }
        let what = format!("{site:?} occurrence {occurrence}");
        plan.record(site, occurrence, "error");
        Some(what)
    }

    /// Injected stall for `site`: sleeps the configured duration when
    /// the schedule fires.
    pub fn stall(site: FaultSite) {
        let Some(plan) = active() else { return };
        let (occurrence, fires) = plan.roll(site);
        if !fires {
            return;
        }
        let wait = match site {
            FaultSite::Profile => plan.config.profile_stall,
            _ => plan.config.batch_stall,
        };
        plan.record(site, occurrence, format!("stall {wait:?}"));
        std::thread::sleep(wait);
    }

    /// Injected panic for `site`: panics with a recognizable message
    /// when the schedule fires. At [`FaultSite::BatchPanic`] the panic
    /// is caught by the worker's per-batch `catch_unwind`; at the kill
    /// sites it escapes the loop and the supervisor respawns the thread.
    pub fn panic_if_scheduled(site: FaultSite) {
        let Some(plan) = active() else { return };
        let (occurrence, fires) = plan.roll(site);
        if !fires {
            return;
        }
        plan.record(site, occurrence, "panic");
        panic!("injected fault: {site:?} occurrence {occurrence}");
    }

    /// Injected truncation for a write of `len` bytes: `Some(keep)`
    /// (strictly less than `len`) when the schedule fires.
    pub fn truncate(site: FaultSite, len: usize) -> Option<usize> {
        let plan = active()?;
        let (occurrence, fires) = plan.roll(site);
        if !fires || len == 0 {
            return None;
        }
        let keep = len / 2;
        plan.record(site, occurrence, format!("truncate {len} -> {keep}"));
        Some(keep)
    }

    /// Injected memory pressure at [`FaultSite::KvPressure`], checked
    /// once per batcher step: when the schedule fires, returns the
    /// configured episode as `(fraction_of_budget_withheld,
    /// duration_in_steps)`. The batcher withholds that share of its KV
    /// block budget for the episode's duration, then restores it.
    pub fn kv_pressure() -> Option<(f64, u64)> {
        let plan = active()?;
        let (occurrence, fires) = plan.roll(FaultSite::KvPressure);
        if !fires {
            return None;
        }
        let fraction = plan.config.kv_pressure_fraction.clamp(0.0, 1.0);
        let steps = plan.config.kv_pressure_duration_steps.max(1);
        plan.record(
            FaultSite::KvPressure,
            occurrence,
            format!(
                "withhold {:.0}% of KV budget for {steps} steps",
                fraction * 100.0
            ),
        );
        Some((fraction, steps))
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    use super::{FaultEvent, FaultSite};

    /// Injected error for `site` (no-op without the `chaos` feature).
    #[inline(always)]
    pub fn fail(_site: FaultSite) -> Option<String> {
        None
    }

    /// Injected stall for `site` (no-op without the `chaos` feature).
    #[inline(always)]
    pub fn stall(_site: FaultSite) {}

    /// Injected panic for `site` (no-op without the `chaos` feature).
    #[inline(always)]
    pub fn panic_if_scheduled(_site: FaultSite) {}

    /// Injected truncation (no-op without the `chaos` feature).
    #[inline(always)]
    pub fn truncate(_site: FaultSite, _len: usize) -> Option<usize> {
        None
    }

    /// The active plan's event log (always empty without `chaos`).
    #[inline(always)]
    pub fn events() -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Injected memory pressure (no-op without the `chaos` feature).
    #[inline(always)]
    pub fn kv_pressure() -> Option<(f64, u64)> {
        None
    }
}

#[cfg(feature = "chaos")]
pub use imp::{install, ChaosGuard};

pub use imp::{events, fail, kv_pressure, panic_if_scheduled, stall, truncate};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_and_occurrence() {
        let a = ChaosConfig {
            seed: 42,
            compile_fail_ratio: 0.3,
            profile_stall_ratio: 0.1,
            batch_panics: vec![3, 17],
            worker_kills: vec![2],
            ..ChaosConfig::default()
        };
        let b = a.clone();
        for site in FaultSite::ALL {
            for n in 0..1000 {
                assert_eq!(
                    a.fires(site, n),
                    b.fires(site, n),
                    "same seed must reproduce the same schedule at {site:?}[{n}]"
                );
            }
        }
        // A different seed produces a different compile-failure schedule.
        let c = ChaosConfig {
            seed: 43,
            ..a.clone()
        };
        let differs =
            (0..1000).any(|n| a.fires(FaultSite::Compile, n) != c.fires(FaultSite::Compile, n));
        assert!(
            differs,
            "different seeds should differ somewhere in 1000 draws"
        );
    }

    #[test]
    fn ratio_draws_hit_roughly_the_configured_fraction() {
        let config = ChaosConfig {
            seed: 7,
            compile_fail_ratio: 0.3,
            ..ChaosConfig::default()
        };
        let fired = (0..10_000)
            .filter(|&n| config.fires(FaultSite::Compile, n))
            .count();
        assert!(
            (2_500..3_500).contains(&fired),
            "30% ratio should fire ~3000/10000 times, got {fired}"
        );
    }

    #[test]
    fn explicit_occurrence_lists_fire_exactly_there() {
        let config = ChaosConfig {
            batch_panics: vec![5],
            worker_kills: vec![0, 2],
            ..ChaosConfig::default()
        };
        assert!(config.fires(FaultSite::BatchPanic, 5));
        assert!(!config.fires(FaultSite::BatchPanic, 4));
        assert!(config.fires(FaultSite::WorkerKill, 0));
        assert!(config.fires(FaultSite::WorkerKill, 2));
        assert!(!config.fires(FaultSite::WorkerKill, 1));
    }

    #[test]
    fn kv_pressure_fires_on_explicit_steps_and_ratio_draws() {
        let config = ChaosConfig {
            seed: 11,
            kv_pressure_steps: vec![4],
            kv_pressure_ratio: 0.2,
            ..ChaosConfig::default()
        };
        assert!(
            config.fires(FaultSite::KvPressure, 4),
            "explicit steps always fire"
        );
        let fired = (0..10_000)
            .filter(|&n| config.fires(FaultSite::KvPressure, n))
            .count();
        assert!(
            (1_500..2_600).contains(&fired),
            "20% ratio should fire ~2000/10000 times, got {fired}"
        );
        let list_only = ChaosConfig {
            kv_pressure_steps: vec![0, 7],
            ..ChaosConfig::default()
        };
        assert!(list_only.fires(FaultSite::KvPressure, 0));
        assert!(list_only.fires(FaultSite::KvPressure, 7));
        assert!(!list_only.fires(FaultSite::KvPressure, 3));
    }

    #[test]
    fn default_config_injects_nothing() {
        let config = ChaosConfig::default();
        for site in FaultSite::ALL {
            assert!((0..100).all(|n| !config.fires(site, n)));
        }
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn installed_plan_counts_occurrences_and_logs_events() {
        let guard = install(ChaosConfig {
            batch_panics: vec![1],
            ..ChaosConfig::default()
        });
        assert!(fail(FaultSite::Compile).is_none(), "ratio 0 never fails");
        let caught = std::panic::catch_unwind(|| {
            panic_if_scheduled(FaultSite::BatchPanic); // occurrence 0: no
            panic_if_scheduled(FaultSite::BatchPanic); // occurrence 1: panic
        });
        assert!(caught.is_err(), "second check must panic");
        let logged = guard.events();
        assert_eq!(logged.len(), 1);
        assert_eq!(logged[0].site, FaultSite::BatchPanic);
        assert_eq!(logged[0].occurrence, 1);
        drop(guard);
        assert!(events().is_empty(), "dropping the guard uninstalls");
    }
}
