//! The light-weight hardware-native performance profiler (Section 3.2.2).
//!
//! Unlike a traditional auto-tuner, the profiler does not learn a cost
//! model: the [`ConfigGenerator`] already encodes per-architecture tuning
//! guidelines, producing tens of candidate template instantiations per
//! workload; the profiler measures them and keeps the best. Sample
//! programs are generated once per architecture and reused across models
//! and workloads, so per-model tuning is minutes (Figure 10b).
//!
//! Two engine-level optimizations keep measurement cost down:
//!
//! * **Candidate pruning** — before measuring a candidate, an analytic
//!   lower bound ([`bolt_cutlass::perf::CandidateBound`]) is compared
//!   against the best time so far; candidates that provably cannot win
//!   are skipped *before* their simulator setup (the [`KernelProfile`]) is
//!   even built. The bound is admissible (never exceeds the measured
//!   time), so the selected winner is bit-identical to exhaustive search.
//! * **Batched parallel profiling** — [`BoltProfiler::profile_batch`]
//!   fans a deduplicated workload set across worker threads. Each unique
//!   workload is measured exactly once even under contention: the cache
//!   slot is a [`OnceLock`] that the first arriving thread initializes
//!   while later threads wait and reuse the result.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use bolt_cutlass::{ConfigGenerator, Conv2dConfig, Epilogue, GemmConfig, GemmProblem};
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

/// Simulated wall-clock seconds per profiled candidate: buffer allocation,
/// warm-up, and a 100-iteration timed run of the pre-generated sample
/// program with the workload's concrete inputs.
pub const SECONDS_PER_PROFILE: f64 = 1.2;

/// One-time cost of generating and compiling the per-architecture sample
/// programs. Reused across models and workloads (the paper's key to
/// minute-scale tuning), charged once per process — and only if at least
/// one measurement actually ran (a fully cache-warm session never touches
/// the sample programs).
pub const TEMPLATE_GENERATION_SECONDS: f64 = 120.0;

/// A profiled kernel choice.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProfiledKernel {
    /// The winning template configuration.
    pub config: GemmConfig,
    /// Its simulated kernel time in microseconds.
    pub time_us: f64,
    /// How many candidates were enumerated for this workload (measured
    /// plus pruned).
    pub candidates: usize,
}

/// Cumulative profiling cost accounting (Figure 10b's Bolt tuning time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfilerStats {
    /// Unique workloads profiled.
    pub workloads: usize,
    /// Candidate measurements performed.
    pub measurements: usize,
    /// Candidates skipped because their analytic lower bound already
    /// exceeded the best measured time.
    pub pruned: usize,
    /// Cache hits (workload already profiled).
    pub cache_hits: usize,
}

impl ProfilerStats {
    /// Simulated tuning wall-clock in seconds. The one-time template
    /// generation is charged only when at least one measurement ran;
    /// a fully cache-warm compile costs zero tuning time.
    pub fn tuning_seconds(&self) -> f64 {
        if self.measurements == 0 {
            return 0.0;
        }
        TEMPLATE_GENERATION_SECONDS + self.measurements as f64 * SECONDS_PER_PROFILE
    }

    /// Tuning wall-clock in minutes.
    pub fn tuning_minutes(&self) -> f64 {
        self.tuning_seconds() / 60.0
    }
}

/// One profiling request: a unique (workload, epilogue, dtype) tuple.
///
/// Tasks are collected during the first lowering phase and handed to
/// [`BoltProfiler::profile_batch`] so that measurement — the expensive
/// part — runs batched and parallel instead of interleaved with graph
/// rewriting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileTask {
    /// Profile a GEMM workload.
    Gemm {
        /// Problem shape and element type.
        problem: GemmProblem,
        /// Fused epilogue.
        epilogue: Epilogue,
    },
    /// Profile a Conv2D workload.
    Conv2d {
        /// Problem geometry.
        problem: Conv2dProblem,
        /// Fused epilogue.
        epilogue: Epilogue,
        /// Element type of activations and filters.
        element: DType,
    },
}

impl ProfileTask {
    pub(crate) fn key(&self) -> Key {
        match self {
            ProfileTask::Gemm { problem, epilogue } => Key::Gemm(*problem, epilogue.into()),
            ProfileTask::Conv2d {
                problem,
                epilogue,
                element,
            } => Key::Conv(*problem, epilogue.into(), *element),
        }
    }
}

/// Cache key. `Conv` carries the element [`DType`] explicitly: the
/// [`Conv2dProblem`] geometry alone does not determine the kernel (FP16
/// and BF16 instantiations of the same geometry tune differently), so
/// omitting it would collide their cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Gemm(GemmProblem, Epilogue2),
    Conv(Conv2dProblem, Epilogue2, DType),
}

/// Hashable epilogue summary (f32 fields bit-cast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Epilogue2 {
    pub(crate) activation: bolt_tensor::Activation,
    pub(crate) bias: bolt_cutlass::BiasMode,
    pub(crate) alpha: u32,
    pub(crate) beta: u32,
    pub(crate) reduction: bool,
}

impl From<&Epilogue> for Epilogue2 {
    fn from(ep: &Epilogue) -> Self {
        Epilogue2 {
            activation: ep.activation,
            bias: ep.bias,
            alpha: ep.alpha.to_bits(),
            beta: ep.beta.to_bits(),
            reduction: ep.column_reduction,
        }
    }
}

/// Per-key cache slot. The [`OnceLock`] guarantees a single measurement
/// per workload even when many threads request it concurrently: exactly
/// one thread runs the initializer, the rest block and read the result.
type Slot = Arc<OnceLock<Option<ProfiledKernel>>>;

/// Worker threads available to [`BoltProfiler::profile_batch`], resolved
/// once per process: `std::thread::available_parallelism` reads cgroup
/// quota files on Linux and costs ~10µs per call — real money next to a
/// batch that resolves in a few hundred microseconds.
fn host_parallelism() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Locally-accumulated stats, merged into the shared [`ProfilerStats`]
/// once per call (or once per worker thread in [`BoltProfiler::profile_batch`])
/// instead of taking the stats lock per workload.
#[derive(Debug, Default, Clone, Copy)]
struct StatsDelta {
    workloads: usize,
    measurements: usize,
    pruned: usize,
    cache_hits: usize,
}

impl StatsDelta {
    fn is_empty(&self) -> bool {
        self.workloads == 0 && self.measurements == 0 && self.pruned == 0 && self.cache_hits == 0
    }
}

/// The profiler: candidate enumeration + pruning + measurement + caching.
#[derive(Debug)]
pub struct BoltProfiler {
    arch: GpuArch,
    generator: ConfigGenerator,
    pruning: bool,
    /// Heuristic mode: resolve every workload with the generator's first
    /// (default) candidate instead of searching, charging no tuning time.
    heuristic: bool,
    slots: Mutex<HashMap<Key, Slot>>,
    stats: Mutex<ProfilerStats>,
}

impl BoltProfiler {
    /// Creates a profiler measuring up to `candidates` configs per
    /// workload, with analytic candidate pruning enabled.
    pub fn new(arch: &GpuArch, candidates: usize) -> Self {
        let mut generator = ConfigGenerator::new(arch);
        generator.max_candidates = candidates;
        BoltProfiler {
            arch: arch.clone(),
            generator,
            pruning: true,
            heuristic: false,
            slots: Mutex::new(HashMap::new()),
            stats: Mutex::new(ProfilerStats::default()),
        }
    }

    /// Creates a profiler in **heuristic mode**: every workload resolves
    /// to the generator's first legal candidate — the per-architecture
    /// default the tuning guidelines would start from — priced on the
    /// simulator but never searched. No measurements are recorded and
    /// [`ProfilerStats::tuning_seconds`] stays zero, which is what makes
    /// it usable as an immediate fallback while a real profiled compile
    /// runs in the background.
    pub fn heuristic(arch: &GpuArch) -> Self {
        BoltProfiler {
            heuristic: true,
            ..Self::new(arch, 1)
        }
    }

    /// Enables or disables analytic candidate pruning. Pruning never
    /// changes which config wins (the bound is admissible); disabling it
    /// is useful for exhaustive-baseline comparisons.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
    }

    /// The architecture this profiler measures on.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Profiling statistics so far.
    pub fn stats(&self) -> ProfilerStats {
        *self.stats.lock()
    }

    /// Resolves a task through the cache, measuring on first sight.
    ///
    /// Concurrent calls with the same key are coalesced: one thread
    /// measures, the others count a cache hit and reuse its result.
    pub fn profile_task(&self, task: &ProfileTask) -> Option<ProfiledKernel> {
        let mut delta = StatsDelta::default();
        let result = self.profile_task_with(task, &mut delta);
        self.merge_stats(&delta);
        result
    }

    /// [`BoltProfiler::profile_task`] accumulating stats into a local
    /// delta instead of the shared lock — the batched path gives each
    /// worker thread one delta and merges it once at the end.
    fn profile_task_with(
        &self,
        task: &ProfileTask,
        delta: &mut StatsDelta,
    ) -> Option<ProfiledKernel> {
        let slot = self.slots.lock().entry(task.key()).or_default().clone();
        let mut ran = false;
        let result = *slot.get_or_init(|| {
            ran = true;
            self.measure(task, delta)
        });
        if !ran {
            delta.cache_hits += 1;
        }
        result
    }

    fn merge_stats(&self, delta: &StatsDelta) {
        if delta.is_empty() {
            return;
        }
        let mut stats = self.stats.lock();
        stats.workloads += delta.workloads;
        stats.measurements += delta.measurements;
        stats.pruned += delta.pruned;
        stats.cache_hits += delta.cache_hits;
    }

    /// Finds the best template for a GEMM workload (cached).
    pub fn profile_gemm(
        &self,
        problem: &GemmProblem,
        epilogue: &Epilogue,
    ) -> Option<ProfiledKernel> {
        self.profile_task(&ProfileTask::Gemm {
            problem: *problem,
            epilogue: *epilogue,
        })
    }

    /// Finds the best template for a Conv2D workload (cached).
    pub fn profile_conv2d(
        &self,
        problem: &Conv2dProblem,
        epilogue: &Epilogue,
        element: DType,
    ) -> Option<ProfiledKernel> {
        self.profile_task(&ProfileTask::Conv2d {
            problem: *problem,
            epilogue: *epilogue,
            element,
        })
    }

    /// Profiles a batch of tasks, fanning unresolved workloads across
    /// worker threads.
    ///
    /// Tasks are deduplicated by cache key and already-resolved workloads
    /// are filtered out first, so a warm cache makes this a no-op. Within
    /// each workload candidates are still measured sequentially in
    /// generator order, which keeps the selected winner (and the pruned
    /// count) bit-identical to a fully sequential run — parallelism is
    /// across workloads only.
    pub fn profile_batch(&self, tasks: &[ProfileTask]) {
        let pending: Vec<ProfileTask> = {
            let slots = self.slots.lock();
            let mut seen = std::collections::HashSet::new();
            tasks
                .iter()
                .filter(|t| seen.insert(t.key()))
                .filter(|t| slots.get(&t.key()).is_none_or(|s| s.get().is_none()))
                .copied()
                .collect()
        };
        if pending.is_empty() {
            return;
        }
        let threads = host_parallelism().min(pending.len()).min(16);
        if threads <= 1 {
            let mut delta = StatsDelta::default();
            for task in &pending {
                self.profile_task_with(task, &mut delta);
            }
            self.merge_stats(&delta);
            return;
        }
        let chunk = pending.len().div_ceil(threads);
        let joined = crossbeam::thread::scope(|scope| {
            for tasks in pending.chunks(chunk) {
                scope.spawn(move |_| {
                    // Batch this worker's measurements: one local stats
                    // delta, merged under the lock once per thread.
                    let mut delta = StatsDelta::default();
                    for task in tasks {
                        self.profile_task_with(task, &mut delta);
                    }
                    self.merge_stats(&delta);
                });
            }
        });
        if joined.is_err() {
            // A profiling thread panicked. Recover instead of sinking the
            // whole compile: re-run the still-unmeasured tasks serially,
            // isolating each one so a poisoned measurement loses only its
            // own slot (callers fall back to the heuristic default).
            eprintln!(
                "bolt: warning: a profiling thread panicked; re-profiling pending tasks serially"
            );
            for task in &pending {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.profile_task(task)
                }));
            }
        }
    }

    /// Measures every non-pruned candidate of a task and returns the best.
    fn measure(&self, task: &ProfileTask, delta: &mut StatsDelta) -> Option<ProfiledKernel> {
        // Chaos: a measurement may stall (slow device, contended stream).
        crate::faults::stall(crate::faults::FaultSite::Profile);
        match task {
            ProfileTask::Gemm { problem, epilogue } => {
                let bound = bolt_cutlass::perf::CandidateBound::gemm(&self.arch, problem, epilogue);
                self.search(
                    self.generator.gemm_candidate_seeds(problem),
                    |config| {
                        bolt_cutlass::perf::gemm_search_profile(
                            &self.arch, problem, config, epilogue, None,
                        )
                    },
                    |seed| bound.lower_bound_us(&self.arch, seed),
                    delta,
                )
            }
            ProfileTask::Conv2d {
                problem,
                epilogue,
                element,
            } => {
                let bound = bolt_cutlass::perf::CandidateBound::conv2d(
                    &self.arch, problem, epilogue, *element,
                );
                self.search(
                    self.generator.conv2d_candidate_seeds(problem, *element),
                    |config| {
                        bolt_cutlass::perf::conv2d_search_profile(
                            &self.arch, problem, config, epilogue, *element, None,
                        )
                    },
                    |seed| bound.lower_bound_us(&self.arch, seed),
                    delta,
                )
            }
        }
    }

    /// The candidate loop, visited in generator order (best heuristic
    /// score first, so a near-best time is established within the first
    /// few measurements).
    ///
    /// With pruning on, every candidate's admissible
    /// [`bolt_cutlass::perf::CandidateBound`] is evaluated up front —
    /// without building the candidate's simulator setup (its
    /// [`KernelProfile`]) — and the candidate with the *lowest* bound is
    /// measured first to seed the incumbent. Because the bound never
    /// exceeds a candidate's simulated time, the true winner's bound is at
    /// most the global minimum simulated time, so the seed is within one
    /// measurement of optimal and the subsequent in-order pass prunes
    /// nearly everything: a candidate whose bound exceeds the incumbent's
    /// time provably cannot beat it. Candidates that survive the bound are
    /// measured, and the incumbent is replaced only by a strictly better
    /// time or by an equal time at a lower generator index — exactly the
    /// tie-break exhaustive search applies — so the selected winner is
    /// bit-identical to exhaustive search regardless of how workloads are
    /// scheduled across threads.
    fn search(
        &self,
        candidates: Vec<bolt_cutlass::CandidateSeed>,
        profile_of: impl Fn(&GemmConfig) -> KernelProfile,
        bound_of: impl Fn(&bolt_cutlass::CandidateSeed) -> f64,
        delta: &mut StatsDelta,
    ) -> Option<ProfiledKernel> {
        if self.heuristic {
            // Default-config shortcut: price the first legal candidate on
            // the simulator and return it untuned. Deliberately not
            // recorded in the stats — nothing was searched, so heuristic
            // compiles must report zero tuning time.
            return candidates.first().map(|seed| ProfiledKernel {
                config: seed.config,
                time_us: simulate_kernel(&self.arch, &profile_of(&seed.config)).total_us,
                candidates: candidates.len(),
            });
        }
        let mut best: Option<(usize, f64)> = None;
        let mut measured = 0usize;
        let mut pruned = 0usize;
        if self.pruning {
            let bounds: Vec<f64> = candidates.iter().map(&bound_of).collect();
            // Seed with the argmin-bound candidate (earliest on ties).
            let seed = bounds
                .iter()
                .enumerate()
                .reduce(|min, x| if x.1 < min.1 { x } else { min })
                .map(|(i, _)| i);
            if let Some(seed) = seed {
                let t = simulate_kernel(&self.arch, &profile_of(&candidates[seed].config)).total_us;
                measured += 1;
                best = Some((seed, t));
            }
            for (i, bound) in bounds.iter().enumerate() {
                let (best_i, best_us) = best.expect("seeded above");
                if Some(i) == seed {
                    continue;
                }
                if *bound > best_us {
                    pruned += 1;
                    continue;
                }
                let t = simulate_kernel(&self.arch, &profile_of(&candidates[i].config)).total_us;
                measured += 1;
                // The seed may sit at a higher index than `i`, so an exact
                // tie must fall to the lower index to match the in-order
                // exhaustive scan.
                if t < best_us || (t == best_us && i < best_i) {
                    best = Some((i, t));
                }
            }
        } else {
            for (i, seed) in candidates.iter().enumerate() {
                let t = simulate_kernel(&self.arch, &profile_of(&seed.config)).total_us;
                measured += 1;
                let better = match best {
                    None => true,
                    Some((_, best_us)) => t < best_us,
                };
                if better {
                    best = Some((i, t));
                }
            }
        }
        delta.workloads += 1;
        delta.measurements += measured;
        delta.pruned += pruned;
        best.map(|(i, time_us)| ProfiledKernel {
            config: candidates[i].config,
            time_us,
            candidates: candidates.len(),
        })
    }

    /// Snapshot of every resolved cache entry.
    pub(crate) fn entries(&self) -> Vec<(Key, ProfiledKernel)> {
        self.slots
            .lock()
            .iter()
            .filter_map(|(k, slot)| slot.get().and_then(|v| *v).map(|v| (*k, v)))
            .collect()
    }

    /// Seeds the cache with an externally-persisted entry. Entries that
    /// are already resolved (e.g. measured earlier in this process) win
    /// over the loaded value.
    pub(crate) fn insert_entry(&self, key: Key, value: ProfiledKernel) {
        let slot = self.slots.lock().entry(key).or_default().clone();
        let _ = slot.set(Some(value));
    }

    /// Persists the tuning cache to `path` in the versioned on-disk
    /// format of [`crate::cache`]. Persisting and re-loading the cache
    /// across processes is what makes Bolt's sample programs "reusable
    /// across models and workloads" (Section 3.2.2) — a new compilation
    /// session starts with every previously-profiled workload already
    /// resolved.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save_cache(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::cache::save(self, path)
    }

    /// Loads a tuning cache previously written by
    /// [`BoltProfiler::save_cache`], merging it into this profiler's
    /// cache. Returns the number of entries loaded; entries written for a
    /// different architecture or cache schema version are skipped (the
    /// file is treated as empty). A structurally corrupt file — torn
    /// write, checksum mismatch, undecodable entry — is quarantined to
    /// `<name>.corrupt` and treated as empty, so a warm start survives
    /// corruption and the next save rebuilds the cache.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read (corruption is
    /// quarantined, not propagated).
    pub fn load_cache(&self, path: &std::path::Path) -> std::io::Result<usize> {
        crate::cache::load(self, path)
    }

    /// Exports every resolved entry as a portable [`TuneShard`] — the
    /// unit `bolt-tune` packs into multi-arch bundles.
    pub fn export_shard(&self) -> crate::cache::TuneShard {
        crate::cache::TuneShard::from_profiler(self)
    }

    /// Merges a [`TuneShard`] into this profiler's cache. Entries
    /// already resolved in this process win over the shard's.
    ///
    /// # Errors
    ///
    /// [`crate::BoltError::CacheArchMismatch`] when the shard was tuned
    /// for a different architecture — strict by design: shards are
    /// shipped artifacts, and loading a V100 shard into a T4 profiler is
    /// a fleet misconfiguration, not an ignorable cache miss.
    pub fn load_shard(&self, shard: &crate::cache::TuneShard) -> crate::Result<usize> {
        let want = crate::cache::arch_fingerprint(&self.arch);
        if shard.arch_fingerprint() != want {
            return Err(crate::BoltError::CacheArchMismatch {
                path: String::new(),
                expected: format!("{} ({want:016x})", self.arch.name),
                found: shard.describe(),
            });
        }
        let entries = shard.entries();
        for (key, kernel) in entries {
            self.insert_entry(*key, *kernel);
        }
        Ok(entries.len())
    }

    /// Strictly loads a single-shard cache file written by
    /// [`BoltProfiler::save_cache`]: unlike the lenient
    /// [`BoltProfiler::load_cache`], a missing/corrupt file or an
    /// arch/schema mismatch is a typed error, never a silent empty load.
    ///
    /// # Errors
    ///
    /// [`crate::BoltError::CacheLoad`] for I/O or validation failures,
    /// [`crate::BoltError::CacheArchMismatch`] for a wrong-arch shard.
    pub fn load_shard_strict(&self, path: &std::path::Path) -> crate::Result<usize> {
        let shard =
            crate::cache::TuneShard::read(path).map_err(|e| crate::BoltError::CacheLoad {
                path: path.display().to_string(),
                reason: e.to_string(),
            })?;
        self.load_shard(&shard).map_err(|e| match e {
            crate::BoltError::CacheArchMismatch {
                expected, found, ..
            } => crate::BoltError::CacheArchMismatch {
                path: path.display().to_string(),
                expected,
                found,
            },
            other => other,
        })
    }

    /// Loads the shard matching this profiler's architecture from a
    /// packed multi-arch bundle ([`crate::cache::TuneBundle`]). This is
    /// the fleet warm-boot path: one shipped bundle serves every
    /// replica, each picking its own arch's shard, so a fresh replica of
    /// *any* architecture boots with zero measurements — and therefore
    /// zero tuning seconds.
    ///
    /// # Errors
    ///
    /// [`crate::BoltError::CacheLoad`] for I/O or validation failures,
    /// [`crate::BoltError::CacheArchMismatch`] when the bundle holds no
    /// shard for this architecture (the error lists what it does hold).
    pub fn load_bundle(&self, path: &std::path::Path) -> crate::Result<usize> {
        let bundle =
            crate::cache::TuneBundle::read(path).map_err(|e| crate::BoltError::CacheLoad {
                path: path.display().to_string(),
                reason: e.to_string(),
            })?;
        let want = crate::cache::arch_fingerprint(&self.arch);
        let Some(shard) = bundle.shard_for(want) else {
            let found = if bundle.shards().is_empty() {
                "no shards".to_string()
            } else {
                bundle
                    .shards()
                    .iter()
                    .map(crate::cache::TuneShard::describe)
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            return Err(crate::BoltError::CacheArchMismatch {
                path: path.display().to_string(),
                expected: format!("{} ({want:016x})", self.arch.name),
                found,
            });
        };
        self.load_shard(shard)
    }

    /// The best conv config wrapped as a [`Conv2dConfig`].
    pub fn best_conv_config(
        &self,
        problem: &Conv2dProblem,
        epilogue: &Epilogue,
        element: DType,
    ) -> Option<Conv2dConfig> {
        self.profile_conv2d(problem, epilogue, element)
            .map(|p| Conv2dConfig { gemm: p.config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::Activation;

    fn profiler() -> BoltProfiler {
        BoltProfiler::new(&GpuArch::tesla_t4(), 30)
    }

    #[test]
    fn profiles_tens_of_candidates_and_caches() {
        let p = profiler();
        let problem = GemmProblem::fp16(1280, 3072, 768);
        let ep = Epilogue::linear(DType::F16);
        let first = p.profile_gemm(&problem, &ep).unwrap();
        assert!(first.candidates >= 10 && first.candidates <= 30);
        let stats = p.stats();
        assert_eq!(stats.workloads, 1);
        assert_eq!(
            stats.measurements + stats.pruned,
            first.candidates,
            "every enumerated candidate is either measured or provably pruned"
        );

        let again = p.profile_gemm(&problem, &ep).unwrap();
        assert_eq!(again, first);
        assert_eq!(p.stats().cache_hits, 1);
        assert_eq!(
            p.stats().measurements,
            stats.measurements,
            "no re-measurement"
        );
    }

    #[test]
    fn pruning_skips_measurements_without_changing_the_winner() {
        let exhaustive = profiler();
        let mut no_prune = profiler();
        no_prune.set_pruning(false);

        let problems = [
            GemmProblem::fp16(1280, 3072, 768),
            GemmProblem::fp16(4096, 4096, 4096),
            GemmProblem::fp16(128, 768, 3072),
        ];
        let ep = Epilogue::linear(DType::F16);
        for problem in &problems {
            let pruned = exhaustive.profile_gemm(problem, &ep).unwrap();
            let full = no_prune.profile_gemm(problem, &ep).unwrap();
            assert_eq!(pruned, full, "pruning must not change the selected winner");
        }
        assert!(
            exhaustive.stats().pruned > 0,
            "pruning should fire on real workloads"
        );
        assert!(
            exhaustive.stats().measurements < no_prune.stats().measurements,
            "pruning must save measurements"
        );
        assert_eq!(no_prune.stats().pruned, 0);
    }

    #[test]
    fn profiled_best_is_at_least_as_good_as_default() {
        let p = profiler();
        let problem = GemmProblem::fp16(4096, 4096, 4096);
        let ep = Epilogue::linear(DType::F16);
        let best = p.profile_gemm(&problem, &ep).unwrap();
        let default_profile = bolt_cutlass::perf::gemm_profile(
            &GpuArch::tesla_t4(),
            &problem,
            &GemmConfig::turing_default(),
            &ep,
            None,
        );
        let default_t = simulate_kernel(&GpuArch::tesla_t4(), &default_profile).total_us;
        assert!(best.time_us <= default_t * 1.0001);
    }

    #[test]
    fn tuning_time_is_minutes_not_hours() {
        let p = profiler();
        let ep = Epilogue::bias_activation(Activation::ReLU, DType::F16);
        // Profile a ResNet-50-sized workload set (~25 unique tasks).
        for i in 0..25 {
            let problem = Conv2dProblem::new(32, 56, 56, 64 + i % 3, 64, 3, 3, (1, 1), (1, 1));
            p.profile_conv2d(&problem, &ep, DType::F16).unwrap();
        }
        let minutes = p.stats().tuning_minutes();
        assert!(
            minutes < 20.0,
            "Bolt must tune within 20 minutes, got {minutes:.1}"
        );
        assert!(
            minutes > 2.0,
            "tuning should not be implausibly free: {minutes:.1}"
        );
    }

    #[test]
    fn warm_profiler_charges_no_tuning_time() {
        let stats = ProfilerStats {
            workloads: 5,
            measurements: 0,
            pruned: 0,
            cache_hits: 5,
        };
        assert_eq!(
            stats.tuning_seconds(),
            0.0,
            "cache-warm sessions never compile templates"
        );
    }

    #[test]
    fn different_epilogues_profile_separately() {
        let p = profiler();
        let problem = GemmProblem::fp16(1280, 768, 768);
        p.profile_gemm(&problem, &Epilogue::linear(DType::F16))
            .unwrap();
        p.profile_gemm(
            &problem,
            &Epilogue::bias_activation(Activation::Gelu, DType::F16),
        )
        .unwrap();
        assert_eq!(p.stats().workloads, 2);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn conv_cache_distinguishes_element_dtypes() {
        // Regression test: the conv cache key once omitted the element
        // dtype, so an FP16 and a BF16 instantiation of the same geometry
        // collided — the second lookup returned the first's config.
        let p = profiler();
        let problem = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let ep = Epilogue::linear(DType::F16);
        p.profile_conv2d(&problem, &ep, DType::F16).unwrap();
        p.profile_conv2d(&problem, &ep, DType::Bf16).unwrap();
        let stats = p.stats();
        assert_eq!(
            stats.workloads, 2,
            "distinct dtypes must profile separately"
        );
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn batch_profiles_each_unique_workload_once() {
        let p = profiler();
        let ep = Epilogue::linear(DType::F16);
        let gemm = ProfileTask::Gemm {
            problem: GemmProblem::fp16(1280, 3072, 768),
            epilogue: ep,
        };
        let conv = ProfileTask::Conv2d {
            problem: Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
            epilogue: ep,
            element: DType::F16,
        };
        // Duplicates in the batch are deduplicated before fan-out.
        p.profile_batch(&[gemm, conv, gemm, conv, gemm]);
        let stats = p.stats();
        assert_eq!(stats.workloads, 2);
        assert_eq!(
            stats.cache_hits, 0,
            "duplicates are filtered, not re-resolved"
        );

        // A second batch over the same tasks is a no-op.
        p.profile_batch(&[gemm, conv]);
        assert_eq!(p.stats(), stats);

        // And direct lookups now hit the warm cache.
        match gemm {
            ProfileTask::Gemm { problem, epilogue } => {
                p.profile_gemm(&problem, &epilogue).unwrap();
            }
            ProfileTask::Conv2d { .. } => unreachable!(),
        }
        assert_eq!(p.stats().cache_hits, 1);
        assert_eq!(p.stats().measurements, stats.measurements);
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bolt_profiler_cache_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.tune");

        let p1 = profiler();
        let problem = GemmProblem::fp16(1280, 3072, 768);
        let ep = Epilogue::linear(DType::F16);
        let best = p1.profile_gemm(&problem, &ep).unwrap();
        p1.save_cache(&path).unwrap();

        // A fresh profiler (new process) starts warm from the saved cache:
        // the lookup is a cache hit, no re-measurement.
        let p2 = profiler();
        assert_eq!(p2.load_cache(&path).unwrap(), 1);
        let warm = p2.profile_gemm(&problem, &ep).unwrap();
        assert_eq!(warm, best);
        assert_eq!(
            p2.stats().measurements,
            0,
            "no measurements after cache load"
        );
        assert_eq!(p2.stats().cache_hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn conv_profile_finds_config() {
        let p = profiler();
        let problem = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let best = p
            .best_conv_config(&problem, &Epilogue::linear(DType::F16), DType::F16)
            .unwrap();
        // Alignment must reflect the unaligned channel count.
        assert_eq!(best.gemm.alignment_a, 2);
    }
}
