//! The light-weight hardware-native performance profiler (Section 3.2.2).
//!
//! Unlike a traditional auto-tuner, the profiler does not learn a cost
//! model: the [`ConfigGenerator`] already encodes per-architecture tuning
//! guidelines, producing tens of candidate template instantiations per
//! workload; the profiler simply *measures them all* and keeps the best.
//! Sample programs are generated once per architecture and reused across
//! models and workloads, so per-model tuning is minutes (Figure 10b).

use parking_lot::Mutex;
use std::collections::HashMap;

use bolt_cutlass::{Conv2dConfig, ConfigGenerator, Epilogue, GemmConfig, GemmProblem};
use bolt_gpu_sim::{simulate_kernel, GpuArch};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

/// Simulated wall-clock seconds per profiled candidate: buffer allocation,
/// warm-up, and a 100-iteration timed run of the pre-generated sample
/// program with the workload's concrete inputs.
pub const SECONDS_PER_PROFILE: f64 = 1.2;

/// One-time cost of generating and compiling the per-architecture sample
/// programs. Reused across models and workloads (the paper's key to
/// minute-scale tuning), charged once per process.
pub const TEMPLATE_GENERATION_SECONDS: f64 = 120.0;

/// A profiled kernel choice.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProfiledKernel {
    /// The winning template configuration.
    pub config: GemmConfig,
    /// Its simulated kernel time in microseconds.
    pub time_us: f64,
    /// How many candidates were measured for this workload.
    pub candidates: usize,
}

/// Cumulative profiling cost accounting (Figure 10b's Bolt tuning time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfilerStats {
    /// Unique workloads profiled.
    pub workloads: usize,
    /// Candidate measurements performed.
    pub measurements: usize,
    /// Cache hits (workload already profiled).
    pub cache_hits: usize,
}

impl ProfilerStats {
    /// Simulated tuning wall-clock in seconds, including the one-time
    /// template generation.
    pub fn tuning_seconds(&self) -> f64 {
        TEMPLATE_GENERATION_SECONDS + self.measurements as f64 * SECONDS_PER_PROFILE
    }

    /// Tuning wall-clock in minutes.
    pub fn tuning_minutes(&self) -> f64 {
        self.tuning_seconds() / 60.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
enum Key {
    Gemm(GemmProblem, Epilogue2),
    Conv(Conv2dProblem, Epilogue2),
}

/// Hashable epilogue summary (f32 fields bit-cast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
struct Epilogue2 {
    activation: bolt_tensor::Activation,
    bias: bolt_cutlass::BiasMode,
    alpha: u32,
    beta: u32,
    reduction: bool,
}

impl From<&Epilogue> for Epilogue2 {
    fn from(ep: &Epilogue) -> Self {
        Epilogue2 {
            activation: ep.activation,
            bias: ep.bias,
            alpha: ep.alpha.to_bits(),
            beta: ep.beta.to_bits(),
            reduction: ep.column_reduction,
        }
    }
}

/// The profiler: candidate enumeration + measurement + caching.
#[derive(Debug)]
pub struct BoltProfiler {
    arch: GpuArch,
    generator: ConfigGenerator,
    cache: Mutex<HashMap<Key, ProfiledKernel>>,
    stats: Mutex<ProfilerStats>,
}

impl BoltProfiler {
    /// Creates a profiler measuring up to `candidates` configs per
    /// workload.
    pub fn new(arch: &GpuArch, candidates: usize) -> Self {
        let mut generator = ConfigGenerator::new(arch);
        generator.max_candidates = candidates;
        BoltProfiler {
            arch: arch.clone(),
            generator,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(ProfilerStats::default()),
        }
    }

    /// Profiling statistics so far.
    pub fn stats(&self) -> ProfilerStats {
        *self.stats.lock()
    }

    /// Finds the best template for a GEMM workload (cached).
    pub fn profile_gemm(&self, problem: &GemmProblem, epilogue: &Epilogue) -> Option<ProfiledKernel> {
        let key = Key::Gemm(*problem, epilogue.into());
        if let Some(hit) = self.cache.lock().get(&key) {
            self.stats.lock().cache_hits += 1;
            return Some(*hit);
        }
        let mut best: Option<ProfiledKernel> = None;
        let candidates = self.generator.gemm_candidates(problem);
        for config in &candidates {
            let profile = bolt_cutlass::perf::gemm_profile(&self.arch, problem, config, epilogue, None);
            let t = simulate_kernel(&self.arch, &profile).total_us;
            if best.is_none_or(|b| t < b.time_us) {
                best = Some(ProfiledKernel { config: *config, time_us: t, candidates: candidates.len() });
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.workloads += 1;
            stats.measurements += candidates.len();
        }
        if let Some(b) = best {
            self.cache.lock().insert(key, b);
        }
        best
    }

    /// Finds the best template for a Conv2D workload (cached).
    pub fn profile_conv2d(
        &self,
        problem: &Conv2dProblem,
        epilogue: &Epilogue,
        element: DType,
    ) -> Option<ProfiledKernel> {
        let key = Key::Conv(*problem, epilogue.into());
        if let Some(hit) = self.cache.lock().get(&key) {
            self.stats.lock().cache_hits += 1;
            return Some(*hit);
        }
        let mut best: Option<ProfiledKernel> = None;
        let candidates = self.generator.conv2d_candidates(problem, element);
        for config in &candidates {
            let profile = bolt_cutlass::perf::conv2d_profile(
                &self.arch, problem, config, epilogue, element, None,
            );
            let t = simulate_kernel(&self.arch, &profile).total_us;
            if best.is_none_or(|b| t < b.time_us) {
                best = Some(ProfiledKernel { config: *config, time_us: t, candidates: candidates.len() });
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.workloads += 1;
            stats.measurements += candidates.len();
        }
        if let Some(b) = best {
            self.cache.lock().insert(key, b);
        }
        best
    }

    /// Serializes the tuning cache to JSON. Persisting and re-loading the
    /// cache across processes is what makes Bolt's sample programs
    /// "reusable across models and workloads" (Section 3.2.2) — a new
    /// compilation session starts with every previously-profiled workload
    /// already resolved.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save_cache(&self, path: &std::path::Path) -> std::io::Result<()> {
        let cache = self.cache.lock();
        let entries: Vec<(&Key, &ProfiledKernel)> = cache.iter().collect();
        let json = serde_json::to_string_pretty(&entries)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads a tuning cache previously written by
    /// [`BoltProfiler::save_cache`], merging it into this profiler's
    /// cache. Returns the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed.
    pub fn load_cache(&self, path: &std::path::Path) -> std::io::Result<usize> {
        let json = std::fs::read_to_string(path)?;
        let entries: Vec<(Key, ProfiledKernel)> = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let count = entries.len();
        let mut cache = self.cache.lock();
        for (key, value) in entries {
            cache.insert(key, value);
        }
        Ok(count)
    }

    /// The best conv config wrapped as a [`Conv2dConfig`].
    pub fn best_conv_config(
        &self,
        problem: &Conv2dProblem,
        epilogue: &Epilogue,
        element: DType,
    ) -> Option<Conv2dConfig> {
        self.profile_conv2d(problem, epilogue, element)
            .map(|p| Conv2dConfig { gemm: p.config })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::Activation;

    fn profiler() -> BoltProfiler {
        BoltProfiler::new(&GpuArch::tesla_t4(), 30)
    }

    #[test]
    fn profiles_tens_of_candidates_and_caches() {
        let p = profiler();
        let problem = GemmProblem::fp16(1280, 3072, 768);
        let ep = Epilogue::linear(DType::F16);
        let first = p.profile_gemm(&problem, &ep).unwrap();
        assert!(first.candidates >= 10 && first.candidates <= 30);
        let stats = p.stats();
        assert_eq!(stats.workloads, 1);
        assert_eq!(stats.measurements, first.candidates);

        let again = p.profile_gemm(&problem, &ep).unwrap();
        assert_eq!(again, first);
        assert_eq!(p.stats().cache_hits, 1);
        assert_eq!(p.stats().measurements, first.candidates, "no re-measurement");
    }

    #[test]
    fn profiled_best_is_at_least_as_good_as_default() {
        let p = profiler();
        let problem = GemmProblem::fp16(4096, 4096, 4096);
        let ep = Epilogue::linear(DType::F16);
        let best = p.profile_gemm(&problem, &ep).unwrap();
        let default_profile = bolt_cutlass::perf::gemm_profile(
            &GpuArch::tesla_t4(),
            &problem,
            &GemmConfig::turing_default(),
            &ep,
            None,
        );
        let default_t = simulate_kernel(&GpuArch::tesla_t4(), &default_profile).total_us;
        assert!(best.time_us <= default_t * 1.0001);
    }

    #[test]
    fn tuning_time_is_minutes_not_hours() {
        let p = profiler();
        let ep = Epilogue::bias_activation(Activation::ReLU, DType::F16);
        // Profile a ResNet-50-sized workload set (~25 unique tasks).
        for i in 0..25 {
            let problem = Conv2dProblem::new(32, 56, 56, 64 + i % 3, 64, 3, 3, (1, 1), (1, 1));
            p.profile_conv2d(&problem, &ep, DType::F16).unwrap();
        }
        let minutes = p.stats().tuning_minutes();
        assert!(minutes < 20.0, "Bolt must tune within 20 minutes, got {minutes:.1}");
        assert!(minutes > 2.0, "tuning should not be implausibly free: {minutes:.1}");
    }

    #[test]
    fn different_epilogues_profile_separately() {
        let p = profiler();
        let problem = GemmProblem::fp16(1280, 768, 768);
        p.profile_gemm(&problem, &Epilogue::linear(DType::F16)).unwrap();
        p.profile_gemm(&problem, &Epilogue::bias_activation(Activation::Gelu, DType::F16))
            .unwrap();
        assert_eq!(p.stats().workloads, 2);
        assert_eq!(p.stats().cache_hits, 0);
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bolt_profiler_cache_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");

        let p1 = profiler();
        let problem = GemmProblem::fp16(1280, 3072, 768);
        let ep = Epilogue::linear(DType::F16);
        let best = p1.profile_gemm(&problem, &ep).unwrap();
        p1.save_cache(&path).unwrap();

        // A fresh profiler (new process) starts warm from the saved cache:
        // the lookup is a cache hit, no re-measurement.
        let p2 = profiler();
        assert_eq!(p2.load_cache(&path).unwrap(), 1);
        let warm = p2.profile_gemm(&problem, &ep).unwrap();
        assert_eq!(warm, best);
        assert_eq!(p2.stats().measurements, 0, "no measurements after cache load");
        assert_eq!(p2.stats().cache_hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn conv_profile_finds_config() {
        let p = profiler();
        let problem = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let best = p
            .best_conv_config(&problem, &Epilogue::linear(DType::F16), DType::F16)
            .unwrap();
        // Alignment must reflect the unaligned channel count.
        assert_eq!(best.gemm.alignment_a, 2);
    }
}
