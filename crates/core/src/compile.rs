//! The end-to-end Bolt compilation pipeline (paper Figure 3).

use std::sync::Arc;

use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_graph::Graph;

use crate::config::BoltConfig;
use crate::lower::lower;
use crate::plan::ExecutionPlan;
use crate::profiler::BoltProfiler;
use crate::runtime::{CompiledModel, TuningSummary};
use crate::Result;

/// The Bolt compiler: graph passes → partition/lowering with deeper
/// fusion → hardware-native profiling → templated code generation.
#[derive(Debug)]
pub struct BoltCompiler {
    arch: GpuArch,
    config: BoltConfig,
    profiler: BoltProfiler,
}

impl BoltCompiler {
    /// Creates a compiler for `arch` with `config`.
    ///
    /// If `config.bundle_path` (or `BOLT_TUNE_BUNDLE`) names a packed
    /// multi-arch bundle, the shard matching `arch` is loaded first —
    /// the fleet warm-boot path, one shipped artifact serving replicas
    /// of every architecture. Then, if `config.cache_path` (or
    /// `BOLT_TUNE_CACHE`) names an existing autotune cache file, it is
    /// loaded so compilation starts warm. A missing cache file is normal
    /// (first run); an invalid one — corrupt, wrong schema version, or
    /// tuned for a different architecture — degrades to a warning and a
    /// cold start, never a failure. Bundle problems also degrade to a
    /// warning here; fleet code that *requires* the warm boot validates
    /// the bundle strictly before launch (typed
    /// [`crate::BoltError::CacheArchMismatch`]) via
    /// [`BoltProfiler::load_bundle`].
    pub fn new(arch: GpuArch, config: BoltConfig) -> Self {
        let mut profiler = BoltProfiler::new(&arch, config.profiler_candidates);
        profiler.set_pruning(config.candidate_pruning);
        let compiler = BoltCompiler {
            arch,
            config,
            profiler,
        };
        if let Some(path) = compiler.config.tune_bundle_path() {
            if let Err(e) = compiler.profiler.load_bundle(&path) {
                eprintln!("warning: ignoring tune bundle: {e}");
            }
        }
        if let Some(path) = compiler.tune_cache_path() {
            if path.exists() {
                if let Err(e) = compiler.profiler.load_cache(&path) {
                    eprintln!("warning: ignoring tune cache {}: {e}", path.display());
                }
            }
        }
        compiler
    }

    /// The on-disk autotune cache location: `config.cache_path`, else the
    /// `BOLT_TUNE_CACHE` environment variable, else none.
    pub fn tune_cache_path(&self) -> Option<std::path::PathBuf> {
        self.config.tune_cache_path()
    }

    /// The target architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The active configuration.
    pub fn config(&self) -> &BoltConfig {
        &self.config
    }

    /// The profiler (shared across compilations: its workload cache is
    /// what makes repeated compilations cheap, like the paper's reusable
    /// sample programs).
    pub fn profiler(&self) -> &BoltProfiler {
        &self.profiler
    }

    /// Compiles a graph into an executable model.
    ///
    /// After a successful compile the profiler cache is persisted to
    /// [`BoltCompiler::tune_cache_path`] (when one is configured); a
    /// write failure is reported as a warning, not an error, since the
    /// cache is purely an optimization.
    ///
    /// # Errors
    ///
    /// Returns an error when graph passes fail or a workload has no legal
    /// template configuration.
    pub fn compile(&self, graph: &Graph) -> Result<CompiledModel> {
        if let Some(site) = crate::faults::fail(crate::faults::FaultSite::Compile) {
            return Err(crate::BoltError::Injected { site });
        }
        let optimized = if self.config.deployment_passes {
            PassManager::deployment().run(graph)?
        } else {
            graph.clone()
        };

        let before = self.profiler.stats();
        let steps = lower(&optimized, &self.arch, &self.config, &self.profiler)?;
        let after = self.profiler.stats();

        // Deltas, so the one-time template-generation cost is charged to
        // the first compilation that actually measures — not re-billed to
        // every model built by this process (or loaded from a warm cache).
        let tuning = TuningSummary {
            workloads: after.workloads - before.workloads,
            measurements: after.measurements - before.measurements,
            pruned: after.pruned - before.pruned,
            tuning_seconds: after.tuning_seconds() - before.tuning_seconds(),
        };

        if let Some(path) = self.tune_cache_path() {
            if let Err(e) = self.profiler.save_cache(&path) {
                eprintln!("warning: failed to save tune cache {}: {e}", path.display());
            }
        }

        // Build the execution plan: prepack constants into kernel-native
        // layouts and run the liveness pass that assigns buffer slots.
        let plan = ExecutionPlan::build(self.arch.clone(), optimized, steps, self.config.clone());
        Ok(CompiledModel {
            plan: Arc::new(plan),
            tuning,
        })
    }

    /// Compiles a graph with **heuristic default template configs**: the
    /// same passes, lowering, prepacking, and memory planning as
    /// [`BoltCompiler::compile`], but every workload resolves to the
    /// config generator's first (default) candidate instead of a profiled
    /// winner. Nothing is measured, the shared autotune cache is neither
    /// consulted nor written, and the returned
    /// [`CompiledModel::tuning`] summary is all zeros.
    ///
    /// This is the serving layer's immediate-fallback path for a workload
    /// that has never been tuned: the heuristic engine serves traffic
    /// right away while a real profiled compile runs in the background.
    ///
    /// # Errors
    ///
    /// Returns an error when graph passes fail or a workload has no legal
    /// template configuration.
    pub fn compile_heuristic(&self, graph: &Graph) -> Result<CompiledModel> {
        if let Some(site) = crate::faults::fail(crate::faults::FaultSite::HeuristicCompile) {
            return Err(crate::BoltError::Injected { site });
        }
        let optimized = if self.config.deployment_passes {
            PassManager::deployment().run(graph)?
        } else {
            graph.clone()
        };
        let profiler = BoltProfiler::heuristic(&self.arch);
        let steps = lower(&optimized, &self.arch, &self.config, &profiler)?;
        let plan = ExecutionPlan::build(self.arch.clone(), optimized, steps, self.config.clone());
        Ok(CompiledModel {
            plan: Arc::new(plan),
            tuning: TuningSummary::default(),
        })
    }

    /// Phase-1 view of a graph's profiling work: the deduplicated
    /// workload set [`BoltCompiler::compile`] would measure, after the
    /// same deployment passes. Useful for warming caches ahead of time
    /// and for benchmarking the profiling engine in isolation.
    ///
    /// # Errors
    ///
    /// Returns an error when graph passes fail.
    pub fn profile_tasks(&self, graph: &Graph) -> Result<Vec<crate::profiler::ProfileTask>> {
        let optimized = if self.config.deployment_passes {
            PassManager::deployment().run(graph)?
        } else {
            graph.clone()
        };
        Ok(crate::lower::collect_profile_tasks(
            &optimized,
            &self.config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StepKind;
    use bolt_graph::GraphBuilder;
    use bolt_tensor::{Activation, DType, Tensor};

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn mlp_compiles_to_fused_kernels() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[64, 128]);
        let h = b.dense_bias(x, 256, "fc1");
        let r = b.activation(h, Activation::ReLU, "relu");
        let o = b.dense_bias(r, 64, "fc2");
        let g = b.finish(&[o]);

        let compiler = BoltCompiler::new(t4(), BoltConfig::default());
        let model = compiler.compile(&g).unwrap();
        // Two dense+epilogue kernels, possibly persistent-fused into one.
        assert!(model.kernel_count() <= 2);
        assert!(model.tuning.workloads >= 1);
        assert!(model.tuning.tuning_seconds > 0.0);
        let report = model.time();
        assert!(report.total_us > 0.0 && report.total_us.is_finite());
    }

    #[test]
    fn functional_matches_unoptimized_semantics() {
        // Compile the same tiny model with and without fusion; outputs
        // must agree exactly (same FP16 rounding points).
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[16, 24]);
        let h = b.dense_bias(x, 16, "fc1");
        let r = b.activation(h, Activation::ReLU, "relu");
        let o = b.dense_bias(r, 8, "fc2");
        let g = b.finish(&[o]);

        let fused = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&g)
            .unwrap();
        let unfused = BoltCompiler::new(t4(), BoltConfig::no_optimizations())
            .compile(&g)
            .unwrap();
        let input = Tensor::randn(&[16, 24], DType::F16, 5);
        let a = fused.run(std::slice::from_ref(&input)).unwrap();
        let bout = unfused.run(&[input]).unwrap();
        assert_eq!(a.len(), 1);
        let diff = a[0].max_abs_diff(&bout[0]).unwrap();
        assert!(diff < 2e-2, "fusion changed numerics by {diff}");
    }

    #[test]
    fn small_cnn_compiles_and_runs() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[2, 3, 16, 16]);
        let c1 = b.conv2d_bias(x, 8, 3, (1, 1), (1, 1), "c1");
        let r1 = b.activation(c1, Activation::ReLU, "r1");
        let p = b.max_pool(r1, 2, 2, "pool");
        let c2 = b.conv2d_bias(p, 8, 3, (1, 1), (1, 1), "c2");
        let r2 = b.activation(c2, Activation::ReLU, "r2");
        let gap = b.global_avg_pool(r2, "gap");
        let fc = b.dense_bias(gap, 4, "fc");
        let g = b.finish(&[fc]);

        let compiler = BoltCompiler::new(t4(), BoltConfig::default());
        let model = compiler.compile(&g).unwrap();
        // First conv has C=3 -> padded to 8.
        let padded = model.steps().iter().any(|s| {
            matches!(
                s.kind,
                StepKind::Conv2d {
                    pad_to: Some(8),
                    ..
                }
            )
        });
        assert!(padded, "first layer must be padded to alignment 8");

        let input = Tensor::randn(&[2, 3, 16, 16], DType::F16, 1);
        let out = model.run(&[input]).unwrap();
        assert_eq!(out[0].shape().dims(), &[2, 4]);
        let report = model.time();
        assert!(report.total_us > 0.0);
        assert!(report.images_per_sec(2) > 0.0);
    }

    #[test]
    fn deployment_passes_fold_bn() {
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[1, 4, 8, 8]);
        let c = b.conv2d(x, 8, 3, (1, 1), (1, 1), "conv");
        let bn = b.batch_norm(c, "bn");
        let r = b.activation(bn, Activation::ReLU, "relu");
        let g = b.finish(&[r]);
        let model = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&g)
            .unwrap();
        // BN folded: no host batch_norm steps remain.
        assert!(model.steps().iter().all(|s| !s.name.contains("batch_norm")));
    }

    #[test]
    fn persistent_fusion_fires_on_b2b_gemms() {
        // Tall-skinny chain from Table 1: (16384,64,256) -> (16384,16,64).
        let mut b = GraphBuilder::new(DType::F16);
        let x = b.input(&[16384, 256]);
        let d0 = b.dense(x, 64, "g0");
        let r0 = b.activation(d0, Activation::ReLU, "r0");
        let d1 = b.dense(r0, 16, "g1");
        let r1 = b.activation(d1, Activation::ReLU, "r1");
        let g = b.finish(&[r1]);

        let fused_model = BoltCompiler::new(t4(), BoltConfig::default())
            .compile(&g)
            .unwrap();
        let has_b2b = fused_model
            .steps()
            .iter()
            .any(|s| matches!(s.kind, StepKind::B2bGemm { .. }));
        assert!(
            has_b2b,
            "profitable b2b chain must fuse: {:?}",
            fused_model
                .steps()
                .iter()
                .map(|s| &s.name)
                .collect::<Vec<_>>()
        );

        let unfused_model = BoltCompiler::new(t4(), BoltConfig::epilogue_only())
            .compile(&g)
            .unwrap();
        let fused_t = fused_model.time().total_us;
        let unfused_t = unfused_model.time().total_us;
        assert!(fused_t < unfused_t, "{fused_t} !< {unfused_t}");
    }
}
