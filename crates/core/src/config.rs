//! Compiler configuration: every Bolt optimization is independently
//! switchable for the ablation benches DESIGN.md calls out.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// Bolt compiler options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoltConfig {
    /// Fuse BiasAdd / activation / residual epilogues into the anchor
    /// kernels (paper Section 3.1 prerequisite).
    pub epilogue_fusion: bool,
    /// Fuse back-to-back GEMM/Conv chains into persistent kernels
    /// (Section 3.1.1).
    pub persistent_kernels: bool,
    /// Automatically pad unaligned channels to alignment 8
    /// (Section 3.2.3).
    pub kernel_padding: bool,
    /// Fold NCHW→NHWC transformation into the boundary kernels instead of
    /// standalone transform kernels around every offloaded region
    /// (Section 3.2.3).
    pub layout_transform_folding: bool,
    /// How many template candidates the light-weight profiler measures
    /// per workload ("tens of best parameter combinations").
    pub profiler_candidates: usize,
    /// Run graph deployment passes (BN fold + RepVGG re-parameterization)
    /// before compilation.
    pub deployment_passes: bool,
    /// Skip candidates whose analytic roofline lower bound already
    /// exceeds the best measured time. Admissible — never changes the
    /// selected winner, only the measurement count.
    pub candidate_pruning: bool,
    /// Collect every workload up front and fan measurements across worker
    /// threads before lowering, instead of measuring inline node by node.
    pub parallel_profiling: bool,
    /// Minimum GEMM M extent before functional executors spread
    /// threadblock M-stripes across host cores (dense, back-to-back and
    /// persistent-chain kernels). Below the threshold execution stays
    /// sequential, so decode-step skinny GEMMs (M = a handful of live
    /// sequences) never pay thread spawn/join overhead; wide prefill
    /// GEMMs above it still parallelize. Defaults to
    /// `bolt_cutlass::PARALLEL_M_ROWS` (256).
    pub parallel_m_rows: usize,
    /// On-disk autotune cache location. Loaded (if present and valid) at
    /// compiler construction and saved after every compile. When `None`,
    /// the `BOLT_TUNE_CACHE` environment variable is consulted instead;
    /// if that is unset too, the cache stays in-memory only.
    pub cache_path: Option<PathBuf>,
    /// A packed multi-arch tune bundle ([`crate::cache::TuneBundle`],
    /// produced by `bolt-tune pack`). Loaded at compiler construction:
    /// the shard matching the target architecture seeds the profiler, so
    /// a replica of any arch boots from one shipped bundle with zero
    /// tuning time. When `None`, the `BOLT_TUNE_BUNDLE` environment
    /// variable is consulted instead. Unlike `cache_path` the bundle is
    /// read-only — compiles never write back to it.
    pub bundle_path: Option<PathBuf>,
}

fn default_parallel_m_rows() -> usize {
    bolt_cutlass::PARALLEL_M_ROWS
}

impl Default for BoltConfig {
    fn default() -> Self {
        BoltConfig {
            epilogue_fusion: true,
            persistent_kernels: true,
            kernel_padding: true,
            layout_transform_folding: true,
            profiler_candidates: 30,
            deployment_passes: true,
            candidate_pruning: true,
            parallel_profiling: true,
            parallel_m_rows: default_parallel_m_rows(),
            cache_path: None,
            bundle_path: None,
        }
    }
}

impl BoltConfig {
    /// The on-disk autotune cache location: `cache_path`, else the
    /// `BOLT_TUNE_CACHE` environment variable, else none.
    pub fn tune_cache_path(&self) -> Option<PathBuf> {
        self.cache_path
            .clone()
            .or_else(|| std::env::var_os("BOLT_TUNE_CACHE").map(PathBuf::from))
    }

    /// The packed tune-bundle location: `bundle_path`, else the
    /// `BOLT_TUNE_BUNDLE` environment variable, else none.
    pub fn tune_bundle_path(&self) -> Option<PathBuf> {
        self.bundle_path
            .clone()
            .or_else(|| std::env::var_os("BOLT_TUNE_BUNDLE").map(PathBuf::from))
    }

    /// Baseline for Figure 9 / Tables 1-2: epilogue fusion only, no
    /// persistent kernels.
    pub fn epilogue_only() -> Self {
        BoltConfig {
            persistent_kernels: false,
            ..Self::default()
        }
    }

    /// All Bolt optimizations off (kernels still templated + profiled).
    pub fn no_optimizations() -> Self {
        BoltConfig {
            epilogue_fusion: false,
            persistent_kernels: false,
            kernel_padding: false,
            layout_transform_folding: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = BoltConfig::default();
        assert!(c.epilogue_fusion && c.persistent_kernels && c.kernel_padding);
        assert!(c.candidate_pruning && c.parallel_profiling);
        assert!(c.cache_path.is_none());
        assert!(c.profiler_candidates >= 10 && c.profiler_candidates <= 100);
        assert_eq!(c.parallel_m_rows, bolt_cutlass::PARALLEL_M_ROWS);
    }

    #[test]
    fn presets() {
        assert!(!BoltConfig::epilogue_only().persistent_kernels);
        assert!(BoltConfig::epilogue_only().epilogue_fusion);
        let off = BoltConfig::no_optimizations();
        assert!(!off.epilogue_fusion && !off.kernel_padding);
        assert!(
            off.candidate_pruning,
            "engine optimizations are not paper ablations"
        );
    }
}
