//! Compiler configuration: every Bolt optimization is independently
//! switchable for the ablation benches DESIGN.md calls out.

use serde::{Deserialize, Serialize};

/// Bolt compiler options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoltConfig {
    /// Fuse BiasAdd / activation / residual epilogues into the anchor
    /// kernels (paper Section 3.1 prerequisite).
    pub epilogue_fusion: bool,
    /// Fuse back-to-back GEMM/Conv chains into persistent kernels
    /// (Section 3.1.1).
    pub persistent_kernels: bool,
    /// Automatically pad unaligned channels to alignment 8
    /// (Section 3.2.3).
    pub kernel_padding: bool,
    /// Fold NCHW→NHWC transformation into the boundary kernels instead of
    /// standalone transform kernels around every offloaded region
    /// (Section 3.2.3).
    pub layout_transform_folding: bool,
    /// How many template candidates the light-weight profiler measures
    /// per workload ("tens of best parameter combinations").
    pub profiler_candidates: usize,
    /// Run graph deployment passes (BN fold + RepVGG re-parameterization)
    /// before compilation.
    pub deployment_passes: bool,
}

impl Default for BoltConfig {
    fn default() -> Self {
        BoltConfig {
            epilogue_fusion: true,
            persistent_kernels: true,
            kernel_padding: true,
            layout_transform_folding: true,
            profiler_candidates: 30,
            deployment_passes: true,
        }
    }
}

impl BoltConfig {
    /// Baseline for Figure 9 / Tables 1-2: epilogue fusion only, no
    /// persistent kernels.
    pub fn epilogue_only() -> Self {
        BoltConfig { persistent_kernels: false, ..Self::default() }
    }

    /// All Bolt optimizations off (kernels still templated + profiled).
    pub fn no_optimizations() -> Self {
        BoltConfig {
            epilogue_fusion: false,
            persistent_kernels: false,
            kernel_padding: false,
            layout_transform_folding: false,
            profiler_candidates: 30,
            deployment_passes: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = BoltConfig::default();
        assert!(c.epilogue_fusion && c.persistent_kernels && c.kernel_padding);
        assert!(c.profiler_candidates >= 10 && c.profiler_candidates <= 100);
    }

    #[test]
    fn presets() {
        assert!(!BoltConfig::epilogue_only().persistent_kernels);
        assert!(BoltConfig::epilogue_only().epilogue_fusion);
        let off = BoltConfig::no_optimizations();
        assert!(!off.epilogue_fusion && !off.kernel_padding);
    }
}
