#![warn(missing_docs)]
//! Shared harness utilities for the per-figure/table benches.
//!
//! Every bench target prints the paper-style table to stdout and writes a
//! CSV under `target/experiments/` so EXPERIMENTS.md can be regenerated.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }

    /// Writes the table as CSV under `target/experiments/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = experiments_dir();
        let _ = fs::create_dir_all(&dir);
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        if fs::write(&path, csv).is_ok() {
            println!("wrote {}", path.display());
        }
    }
}

/// The output directory for experiment CSVs.
pub fn experiments_dir() -> PathBuf {
    workspace_root().join("target").join("experiments")
}

/// The workspace root, robust to cwd differences.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir
}

/// Writes a headline benchmark result as `<name>` at the workspace root
/// (e.g. `BENCH_serve.json`), where CI and EXPERIMENTS.md pick it up.
pub fn write_bench_json(name: &str, json: &str) {
    let path = workspace_root().join(name);
    if fs::write(&path, json).is_ok() {
        println!("wrote {}", path.display());
    }
}

/// Formats a microsecond time compactly.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

/// Formats a seconds duration as `h`/`min`/`s`.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.0} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_us(1500.0), "1.50 ms");
        assert_eq!(fmt_us(42.0), "42.0 us");
        assert_eq!(fmt_seconds(7200.0), "2.0 h");
        assert_eq!(fmt_seconds(120.0), "2.0 min");
        assert_eq!(fmt_seconds(5.0), "5 s");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
