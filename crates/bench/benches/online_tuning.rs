//! Online tuning benchmark: how quickly a server that starts with **no**
//! compiled engines converges to hardware-native performance.
//!
//! For each serving model and batch bucket, a cold [`bolt_serve::OnlineEngineManager`]
//! is asked for an unseen shape: the request is served immediately on the
//! heuristic default-config fallback while the bucket compiles in the
//! background. We report
//!
//! * the **fallback vs tuned latency gap** — simulated batch time of the
//!   heuristic engine vs. the tuned engine that hot-swaps in, and
//! * the **time to optimal engine** — real wall-clock from the first miss
//!   until the tuner has the tuned engine installed, plus the *simulated*
//!   tuning time the paper's cost model charges for the same compile.
//!
//! A second section restarts the manager against the autotune cache the
//! first run persisted: the same buckets come back with zero simulated
//! tuning time — the paper's "tuning fast enough to do at deployment
//! time" argument, reduced to a table.
//!
//! Results print as tables and are emitted to
//! `target/experiments/online_tuning.json` and `BENCH_online.json` at the
//! workspace root.
//!
//! Run with: `cargo bench --bench online_tuning`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::BoltConfig;
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{EngineRegistry, OnlineConfig, OnlineEngineManager};

const MODELS: [&str; 3] = ["mlp-small", "mlp-large", "cnn-small"];
const BUCKETS: [usize; 3] = [1, 4, 8];

struct Row {
    model: &'static str,
    bucket: usize,
    fallback_us: f64,
    tuned_us: f64,
    wall_ms_to_tuned: f64,
    sim_tuning_s: f64,
}

fn registry(cache: &std::path::Path) -> Arc<EngineRegistry> {
    let reg = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            cache_path: Some(cache.to_path_buf()),
            ..BoltConfig::default()
        },
    ));
    for model in MODELS {
        reg.register_zoo_dynamic(model)
            .expect("zoo model registers");
    }
    reg
}

/// One pass over every (model, bucket): miss → fallback engine → wait for
/// the background compile → tuned engine. Returns the per-bucket rows.
fn run_pass(reg: &Arc<EngineRegistry>) -> Vec<Row> {
    let manager = OnlineEngineManager::new(Arc::clone(reg), OnlineConfig::default());
    let mut rows = Vec::new();
    for model in MODELS {
        for bucket in BUCKETS {
            let engines = reg.get(model).expect("registered");
            let before = manager.snapshot();
            let start = Instant::now();
            let miss = manager
                .acquire(&engines, bucket)
                .expect("fallback placement");
            assert!(miss.fallback, "cold bucket must be a fallback");
            assert!(
                manager.wait_idle(Duration::from_secs(300)),
                "background compile finishes"
            );
            let wall_ms_to_tuned = start.elapsed().as_secs_f64() * 1e3;
            let fresh = reg.get(model).expect("registered");
            let tuned = manager.acquire(&fresh, bucket).expect("tuned placement");
            assert!(!tuned.fallback, "tuned engine serves after hot-swap");
            let after = manager.snapshot();
            rows.push(Row {
                model,
                bucket,
                fallback_us: miss.engine.time().total_us * miss.launches as f64,
                tuned_us: tuned.engine.time().total_us,
                wall_ms_to_tuned,
                sim_tuning_s: after.tuning_seconds - before.tuning_seconds,
            });
        }
    }
    rows
}

fn table_for(rows: &[Row]) -> Table {
    let mut table = Table::new(&[
        "model",
        "bucket",
        "fallback",
        "tuned",
        "gap",
        "time-to-tuned",
        "sim tuning",
    ]);
    for row in rows {
        table.row(&[
            row.model.to_string(),
            row.bucket.to_string(),
            fmt_us(row.fallback_us),
            fmt_us(row.tuned_us),
            format!("{:.3}x", row.fallback_us / row.tuned_us),
            format!("{:.1} ms", row.wall_ms_to_tuned),
            format!("{:.1} s", row.sim_tuning_s),
        ]);
    }
    table
}

fn json_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\"model\": \"{}\", \"bucket\": {}, \"fallback_us\": {:.3}, ",
                    "\"tuned_us\": {:.3},\n     \"gap\": {:.4}, ",
                    "\"wall_ms_to_tuned\": {:.2}, \"sim_tuning_seconds\": {:.2}}}"
                ),
                row.model,
                row.bucket,
                row.fallback_us,
                row.tuned_us,
                row.fallback_us / row.tuned_us,
                row.wall_ms_to_tuned,
                row.sim_tuning_s,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("bolt-online-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("autotune.tune");

    // Cold pass: nothing compiled, nothing cached.
    let cold = run_pass(&registry(&cache));
    table_for(&cold).print(
        "Online tuning, cold start: fallback vs tuned latency and \
         time to the optimal engine (per model and batch bucket)",
    );

    // Warm pass: a fresh registry + manager against the persisted cache.
    // Engines still compile on demand, but every workload is cached, so
    // the simulated tuning cost collapses to zero.
    let warm = run_pass(&registry(&cache));
    table_for(&warm).print(
        "Online tuning, warm restart: same buckets off the persisted \
         autotune cache (simulated tuning time must be zero)",
    );
    let total_cold_tuning: f64 = cold.iter().map(|r| r.sim_tuning_s).sum();
    let total_warm_tuning: f64 = warm.iter().map(|r| r.sim_tuning_s).sum();
    println!("\nsimulated tuning: cold {total_cold_tuning:.1} s -> warm {total_warm_tuning:.1} s");

    let json = format!(
        "{{\n  \"models\": [\"mlp-small\", \"mlp-large\", \"cnn-small\"],\n  \
         \"buckets\": [1, 4, 8],\n  \"cold\": [\n{}\n  ],\n  \"warm\": [\n{}\n  ],\n  \
         \"cold_tuning_seconds\": {:.2},\n  \"warm_tuning_seconds\": {:.2}\n}}\n",
        json_rows(&cold),
        json_rows(&warm),
        total_cold_tuning,
        total_warm_tuning,
    );
    let out_dir = experiments_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("online_tuning.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_online.json", &json);
    let _ = std::fs::remove_dir_all(&dir);
}
