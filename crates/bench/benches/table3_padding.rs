//! Table 3: automated kernel padding — performance and overhead.
//!
//! Production Conv2D workloads whose input channels (46, 174) are not
//! divisible by 8 compute with alignment 2; Bolt pads them to the next
//! multiple of 8 and runs with alignment 8 (full 128-bit vectorized
//! access). The pad kernel itself costs time.
//!
//! Paper claims: padded speed **1.60-1.99×** (avg ~1.8×) and padding
//! overhead **9-24%** (avg 16%) of total computation time.

use bolt::BoltProfiler;
use bolt_bench::{fmt_us, Table};
use bolt_cutlass::Epilogue;
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

fn rows() -> Vec<(Conv2dProblem, f64, f64)> {
    // (problem, paper speedup, paper cost %)
    let mk = |n, h, w, c, k, r, s, p: (usize, usize)| Conv2dProblem {
        n,
        h,
        w,
        c,
        k,
        r,
        s,
        stride: (1, 1),
        padding: p,
        dilation: (1, 1),
    };
    vec![
        (mk(32, 20, 26, 46, 32, 3, 3, (1, 1)), 1.62, 18.0),
        (mk(32, 20, 26, 46, 32, 5, 5, (2, 2)), 1.95, 9.0),
        (mk(128, 14, 19, 46, 32, 5, 7, (0, 0)), 1.77, 15.0),
        (mk(288, 11, 15, 46, 32, 5, 7, (0, 0)), 1.71, 18.0),
        (mk(32, 20, 26, 174, 64, 3, 3, (1, 1)), 1.60, 24.0),
        (mk(32, 20, 26, 174, 64, 5, 5, (2, 2)), 1.99, 12.0),
    ]
}

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);
    let ep = Epilogue::linear(DType::F16);

    let mut table = Table::new(&[
        "N",
        "H,W",
        "IC,OC",
        "kernel",
        "unpadded",
        "padded",
        "speedup",
        "paper",
        "pad cost",
        "paper cost",
    ]);
    for (problem, paper_x, paper_cost) in rows() {
        let unpadded = profiler
            .profile_conv2d(&problem, &ep, DType::F16)
            .expect("profiled")
            .time_us;

        let padded_c = problem.c.div_ceil(8) * 8;
        let padded_problem = Conv2dProblem {
            c: padded_c,
            ..problem
        };
        let padded = profiler
            .profile_conv2d(&padded_problem, &ep, DType::F16)
            .expect("profiled")
            .time_us;

        // The standalone pad kernel: read the unaligned tensor, write the
        // padded one.
        let elt = 2.0;
        let pad_bytes =
            (problem.n * problem.h * problem.w) as f64 * (problem.c + padded_c) as f64 * elt;
        let mut pad_profile = KernelProfile::memory_only("pad", pad_bytes);
        // Reads are alignment-2, writes alignment-8: effective width ~4.
        pad_profile.alignment_elems = 4;
        let pad_us = simulate_kernel(&t4, &pad_profile).total_us;

        let speedup = unpadded / padded;
        let cost = 100.0 * pad_us / (pad_us + padded);
        table.row(&[
            problem.n.to_string(),
            format!("{},{}", problem.h, problem.w),
            format!("{},{}", problem.c, problem.k),
            format!("({},{})", problem.r, problem.s),
            fmt_us(unpadded),
            fmt_us(padded),
            format!("{speedup:.2}x"),
            format!("{paper_x:.2}x"),
            format!("{cost:.0}%"),
            format!("{paper_cost:.0}%"),
        ]);
    }
    table.print("Table 3: automated padding to alignment 8 (unpadded alignment 2)");
    table.write_csv("table3_padding");
}
