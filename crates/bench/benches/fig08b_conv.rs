//! Figure 8b: Bolt vs Ansor on the 3×3 Conv2Ds of ResNet-50 (batch 32,
//! FP16, (1,1) zero padding).
//!
//! Paper claim: Bolt is **2.7-3.5× faster** than Ansor on all four conv
//! workloads.

use bolt::BoltProfiler;
use bolt_ansor::AnsorTuner;
use bolt_bench::{fmt_us, Table};
use bolt_cutlass::Epilogue;
use bolt_gpu_sim::GpuArch;
use bolt_graph::Workload;
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::DType;

/// The 3×3 convolutions of ResNet-50's four stages at batch 32.
fn resnet50_convs() -> Vec<(&'static str, Conv2dProblem)> {
    vec![
        (
            "stage1 56x56x64",
            Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
        ),
        (
            "stage2 28x28x128",
            Conv2dProblem::new(32, 28, 28, 128, 128, 3, 3, (1, 1), (1, 1)),
        ),
        (
            "stage3 14x14x256",
            Conv2dProblem::new(32, 14, 14, 256, 256, 3, 3, (1, 1), (1, 1)),
        ),
        (
            "stage4 7x7x512",
            Conv2dProblem::new(32, 7, 7, 512, 512, 3, 3, (1, 1), (1, 1)),
        ),
    ]
}

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);
    let tuner = AnsorTuner::with_trials(&t4, 2000);

    let mut table = Table::new(&["workload", "Ansor", "Bolt", "Bolt TFLOPS", "speedup"]);
    for (label, problem) in resnet50_convs() {
        let bolt = profiler
            .profile_conv2d(&problem, &Epilogue::linear(DType::F16), DType::F16)
            .expect("profiled");

        let workload = Workload::Conv2d {
            n: problem.n,
            h: problem.h,
            w: problem.w,
            c: problem.c,
            k: problem.k,
            kernel: (problem.r, problem.s),
            stride: problem.stride,
            padding: problem.padding,
        };
        let report = tuner.tune_workloads(&[workload]);
        let ansor_us = report.best_time_us(&workload).expect("tuned");

        let flops = 2.0 * problem.macs() as f64;
        let speedup = ansor_us / bolt.time_us;
        table.row(&[
            label.to_string(),
            fmt_us(ansor_us),
            fmt_us(bolt.time_us),
            format!("{:.1}", flops / (bolt.time_us * 1e6)),
            format!("{speedup:.1}x"),
        ]);
        println!("{label}: Bolt {speedup:.1}x over Ansor");
    }
    table.print("Figure 8b: ResNet-50 3x3 Conv2D speed, Bolt vs Ansor (simulated T4)");
    table.write_csv("fig08b_conv");
    println!("paper band: 2.7-3.5x across all conv workloads");
}
