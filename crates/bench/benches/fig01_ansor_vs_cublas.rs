//! Figure 1: FP16 GEMM speed of Ansor-generated kernels vs the
//! hardware-native vendor library (cuBLAS stand-in) on the simulated
//! Tesla T4.
//!
//! Paper claim: Ansor achieves **less than 20%** of cuBLAS performance on
//! compute-intensive FP16 GEMMs (and is closest on the memory-bound
//! attention GEMM).

use bolt_ansor::AnsorTuner;
use bolt_bench::Table;
use bolt_cutlass::VendorLibrary;
use bolt_gpu_sim::GpuArch;
use bolt_models::bert::{gemm_workloads, tuner_workload};

fn main() {
    let t4 = GpuArch::tesla_t4();
    let vendor = VendorLibrary::new(&t4);
    // "we tune each workload for 2000 trials ... following the TVM
    // official example".
    let tuner = AnsorTuner::with_trials(&t4, 2000);

    let mut table = Table::new(&[
        "workload",
        "shape",
        "cuBLAS (TFLOPS)",
        "Ansor (TFLOPS)",
        "Ansor/cuBLAS",
    ]);
    let mut ratios = Vec::new();
    for (label, problem) in gemm_workloads() {
        let cublas_us = vendor.gemm_time_us(&problem);
        let cublas_tflops = problem.flops() / (cublas_us * 1e6);

        let workload = tuner_workload(&problem);
        let report = tuner.tune_workloads(&[workload]);
        let ansor_us = report.best_time_us(&workload).expect("tuned");
        let ansor_tflops = problem.flops() / (ansor_us * 1e6);

        let ratio = ansor_tflops / cublas_tflops;
        ratios.push((label, ratio, problem.arithmetic_intensity()));
        table.row(&[
            label.to_string(),
            problem.to_string(),
            format!("{cublas_tflops:.1}"),
            format!("{ansor_tflops:.1}"),
            format!("{:.0}%", ratio * 100.0),
        ]);
    }
    table.print("Figure 1: Ansor vs cuBLAS, FP16 GEMM on Tesla T4 (simulated)");
    table.write_csv("fig01_ansor_vs_cublas");

    // Shape check (printed, not asserted): compute-bound workloads must sit
    // under 20%; the memory-bound one is allowed to be competitive.
    for (label, ratio, ai) in ratios {
        let verdict = if ai > 100.0 {
            if ratio < 0.20 {
                "OK (<20% as in paper)"
            } else {
                "MISMATCH (paper: <20%)"
            }
        } else {
            "memory-bound (competitive by design)"
        };
        println!("  {label}: {:.0}% of cuBLAS — {verdict}", ratio * 100.0);
    }
}
