//! Cluster scaling benchmark: aggregate SLO goodput of a sharded
//! multi-replica serving cluster vs. a single replica, on a dense model
//! heavy enough (~ms per batch on the simulator) that one replica's two
//! GPU streams saturate well below the top offered load.
//!
//! The host machine has a small number of real cores, so wall-clock
//! throughput cannot scale with replica count; what scales is the
//! *simulated* GPU capacity — each worker is one simulated stream, and
//! batches dispatched to a saturated stream queue behind each other on
//! its timeline. The scaling metric is therefore **SLO goodput**:
//! completions whose simulated end-to-end latency (queue wait + stream
//! backlog + kernel time) meets the SLO, divided by the wall-clock
//! duration of the run. An overloaded replica keeps completing requests,
//! but their simulated latency grows without bound and they fall out of
//! the SLO — exactly how an overloaded real serving tier fails.
//!
//! The matrix is offered load x replica count under least-loaded
//! routing. With the `chaos` feature a second section re-runs the top
//! configuration while seeded replica kills
//! ([`bolt::faults::FaultSite::ReplicaKill`]) crash two of the four
//! replicas mid-storm, and reports availability (completed / accepted)
//! — the router must re-route around each corpse without losing a
//! request.
//!
//! Results print as tables and are emitted to
//! `target/experiments/cluster_scaling.json` and `BENCH_cluster.json`
//! at the workspace root.
//!
//! Run with: `cargo bench --bench cluster_scaling --features chaos`
//! (without the feature the chaos section is emitted as `null`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::{BoltConfig, StepTimings};
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_cluster::{Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementPolicy, ReplicaSpec};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{EngineRegistry, Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

const MODEL: &str = "dense-deep";
const INPUT_FEATURES: usize = 1024;
const HIDDEN: usize = 8192;
const LAYERS: usize = 5;
const WORKERS_PER_REPLICA: usize = 2;
const MAX_BATCH: usize = 8;
/// Simulated end-to-end latency bound for the goodput metric.
const SLO_US: f64 = 25_000.0;
const OFFERED: [f64; 3] = [2_000.0, 8_000.0, 16_000.0];
const REPLICAS: [usize; 3] = [1, 2, 4];

/// The bench model: a deep, wide FFN stack — built shapes-only, so
/// workers price it on the simulator instead of computing it (the whole
/// point: saturate the simulated streams, not the host cores).
fn builder() -> bolt_serve::registry::GraphBuilder {
    Arc::new(|batch| {
        let mut b = bolt_graph::GraphBuilder::shapes_only(DType::F16);
        let mut h = b.input(&[batch, INPUT_FEATURES]);
        for layer in 0..LAYERS {
            h = b.dense_bias(h, HIDDEN, &format!("ffn{layer}"));
        }
        let out = b.dense_bias(h, INPUT_FEATURES, "head");
        b.finish(&[out])
    })
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS_PER_REPLICA,
        max_batch: MAX_BATCH,
        // Long enough for a batch to fill at per-replica arrival rates
        // near capacity; partial batches ride the smaller buckets.
        batch_timeout: Duration::from_millis(3),
        queue_capacity: 4096,
        ..ServeConfig::default()
    }
}

fn cluster(replicas: usize) -> Arc<Cluster> {
    Cluster::new(ClusterConfig::homogeneous(
        ReplicaSpec {
            arch: GpuArch::tesla_t4(),
            bolt: BoltConfig::default(),
            serve: serve_config(),
            models: vec![ModelSpec::Custom {
                name: MODEL.into(),
                build: builder(),
                tuned: false,
            }],
        },
        replicas,
        PlacementPolicy::LeastLoaded,
    ))
    .expect("cluster comes up")
}

/// Simulated kernel time of one batch-8 launch on the heuristic engine —
/// the unit of capacity: one replica sustains
/// `workers * 8 / batch8_us` requests per second.
fn probe_batch8_us() -> f64 {
    let reg = EngineRegistry::new(GpuArch::tesla_t4(), BoltConfig::default());
    let build = builder();
    reg.register_dynamic(MODEL, move |batch| build(batch))
        .expect("register probe model");
    let engine = reg
        .compile_heuristic_bucket(MODEL, MAX_BATCH)
        .expect("heuristic compile");
    let mut timings = StepTimings::default();
    engine.time_observed(&mut timings).total_us
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Cell {
    replicas: usize,
    offered_rps: f64,
    requests: usize,
    accepted: u64,
    completed: u64,
    in_slo: u64,
    achieved_rps: f64,
    goodput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    rejected_admission: u64,
    lost: u64,
}

/// Open-loop arrival process against a fresh cluster: request `i` is due
/// at `start + i/rate`, so late service never slows the arrivals down.
fn run_cell(replicas: usize, offered_rps: f64) -> Cell {
    let cluster = cluster(replicas);
    // ~0.5 s of offered traffic, bounded; inputs are pre-generated so
    // the pacer spends its budget submitting, not sampling.
    let requests = ((offered_rps * 0.5) as usize).clamp(400, 8000);
    let mut inputs: Vec<Vec<Tensor>> = (0..requests)
        .rev()
        .map(|i| vec![Tensor::randn(&[1, INPUT_FEATURES], DType::F16, i as u64)])
        .collect();

    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    let mut rejected_admission = 0u64;
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sample = inputs.pop().expect("pre-generated");
        match cluster.submit(MODEL, sample, None) {
            Ok(handle) => handles.push(handle),
            Err(ClusterError::AllBackpressured { .. }) => rejected_admission += 1,
            Err(other) => panic!("unexpected cluster error: {other}"),
        }
    }
    let mut latencies: Vec<f64> = handles
        .iter()
        .filter_map(|h| match h.wait() {
            Outcome::Completed(response) => Some(response.latency.total_us),
            _ => None,
        })
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let end = cluster.shutdown();
    let lost = end.totals.unresolved();
    assert_eq!(lost, 0, "drain must resolve every accepted request");
    let in_slo = latencies.iter().filter(|&&l| l <= SLO_US).count() as u64;
    Cell {
        replicas,
        offered_rps,
        requests,
        accepted: end.totals.accepted,
        completed: end.totals.completed,
        in_slo,
        achieved_rps: end.totals.completed as f64 / elapsed,
        goodput_rps: in_slo as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        rejected_admission,
        lost,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"replicas\": {}, \"offered_rps\": {:.0}, \"requests\": {}, ",
            "\"accepted\": {}, \"completed\": {},\n     \"in_slo\": {}, ",
            "\"achieved_rps\": {:.1}, \"goodput_rps\": {:.1}, ",
            "\"sim_p50_us\": {:.1}, \"sim_p99_us\": {:.1},\n     ",
            "\"rejected_admission\": {}, \"lost\": {}}}"
        ),
        c.replicas,
        c.offered_rps,
        c.requests,
        c.accepted,
        c.completed,
        c.in_slo,
        c.achieved_rps,
        c.goodput_rps,
        c.p50_us,
        c.p99_us,
        c.rejected_admission,
        c.lost,
    )
}

/// Chaos section: the 4-replica cluster takes the 8k-offered storm while
/// the seeded fault plan abruptly kills the routed replica at the 800th
/// and 2400th cluster submissions. Availability is completed/accepted —
/// the only acceptable losses are the handful of requests queued on a
/// corpse at kill time, each resolved as a typed `Rejected`.
#[cfg(feature = "chaos")]
fn run_chaos() -> String {
    use bolt::faults::{self, ChaosConfig, FaultSite};

    let replicas = 4usize;
    let offered_rps = 8_000.0f64;
    let requests = 4_000usize;
    let cluster = cluster(replicas);
    let guard = faults::install(ChaosConfig {
        seed: 42,
        replica_kills: vec![800, 2400],
        ..ChaosConfig::default()
    });

    let mut inputs: Vec<Vec<Tensor>> = (0..requests)
        .rev()
        .map(|i| vec![Tensor::randn(&[1, INPUT_FEATURES], DType::F16, i as u64)])
        .collect();
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sample = inputs.pop().expect("pre-generated");
        match cluster.submit(MODEL, sample, None) {
            Ok(handle) => handles.push(handle),
            Err(ClusterError::AllBackpressured { .. } | ClusterError::NoReplicas) => {}
            Err(other) => panic!("unexpected cluster error: {other}"),
        }
    }
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for handle in &handles {
        match handle.wait() {
            Outcome::Completed(_) => completed += 1,
            _ => rejected += 1,
        }
    }
    let kills = guard
        .events()
        .iter()
        .filter(|e| e.site == FaultSite::ReplicaKill)
        .count();
    drop(guard);
    assert_eq!(kills, 2, "both scheduled replica kills fired");

    let end = cluster.shutdown();
    assert_eq!(
        end.totals.unresolved(),
        0,
        "kills dropped accepted requests"
    );
    assert_eq!(
        end.retired.iter().filter(|r| !r.graceful).count(),
        2,
        "two replicas died abruptly"
    );
    let accepted = end.totals.accepted;
    let availability = completed as f64 / accepted.max(1) as f64 * 100.0;
    println!(
        "\nchaos: {kills} seeded replica kills mid-storm, {} of {} replicas survived; \
         accepted {accepted}, completed {completed}, rejected-on-corpse {rejected}, \
         availability {availability:.2}%, lost 0",
        replicas - kills,
        replicas,
    );
    format!(
        concat!(
            "{{\n    \"replicas\": {}, \"offered_rps\": {:.0}, \"requests\": {}, ",
            "\"replica_kills\": [800, 2400],\n    \"accepted\": {}, \"completed\": {}, ",
            "\"rejected\": {}, \"availability_pct\": {:.2}, \"lost\": 0\n  }}"
        ),
        replicas, offered_rps, requests, accepted, completed, rejected, availability,
    )
}

#[cfg(not(feature = "chaos"))]
fn run_chaos() -> String {
    println!("\nchaos section skipped (run with --features chaos to include it)");
    "null".into()
}

fn main() {
    let batch8_us = probe_batch8_us();
    let replica_capacity_rps = WORKERS_PER_REPLICA as f64 * MAX_BATCH as f64 * 1e6 / batch8_us;
    println!(
        "bench model: {LAYERS}x dense({HIDDEN}) shapes-only, batch-8 kernel time {} \
         => ~{:.0} rps capacity per replica ({WORKERS_PER_REPLICA} streams)",
        fmt_us(batch8_us),
        replica_capacity_rps,
    );

    let mut table = Table::new(&[
        "replicas",
        "offered rps",
        "achieved rps",
        "goodput rps",
        "in-SLO",
        "sim p50",
        "sim p99",
        "queue full",
        "lost",
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    for &offered in &OFFERED {
        for &replicas in &REPLICAS {
            let cell = run_cell(replicas, offered);
            table.row(&[
                cell.replicas.to_string(),
                format!("{:.0}", cell.offered_rps),
                format!("{:.0}", cell.achieved_rps),
                format!("{:.0}", cell.goodput_rps),
                format!("{}/{}", cell.in_slo, cell.completed),
                fmt_us(cell.p50_us),
                fmt_us(cell.p99_us),
                cell.rejected_admission.to_string(),
                cell.lost.to_string(),
            ]);
            cells.push(cell);
        }
    }
    table.print(&format!(
        "Cluster scaling: SLO goodput (sim latency <= {} ) by offered load x replica \
         count, least-loaded routing",
        fmt_us(SLO_US)
    ));
    table.write_csv("cluster_scaling");

    // The headline: goodput scaling at the top offered load, where one
    // replica is far past saturation.
    let top = OFFERED[OFFERED.len() - 1];
    let goodput_at = |replicas: usize| {
        cells
            .iter()
            .find(|c| c.replicas == replicas && c.offered_rps == top)
            .map(|c| c.goodput_rps)
            .expect("cell ran")
    };
    let (one, four) = (goodput_at(1), goodput_at(4));
    let scaling = four / one.max(1e-9);
    println!(
        "\nscaling at {top:.0} offered rps: 1 replica {one:.0} goodput rps, \
         4 replicas {four:.0} goodput rps => {scaling:.2}x"
    );

    let chaos = run_chaos();

    let json = format!(
        "{{\n  \"model\": {{\"name\": \"{MODEL}\", \"layers\": {LAYERS}, \
         \"hidden\": {HIDDEN}, \"batch8_sim_us\": {batch8_us:.1}, \
         \"replica_capacity_rps\": {replica_capacity_rps:.1}}},\n  \
         \"slo_us\": {SLO_US:.1},\n  \"workers_per_replica\": {WORKERS_PER_REPLICA},\n  \
         \"cells\": [\n{}\n  ],\n  \"scaling_at_top_offered\": {{\"offered_rps\": {top:.0}, \
         \"goodput_1_replica\": {one:.1}, \"goodput_4_replicas\": {four:.1}, \
         \"speedup\": {scaling:.3}}},\n  \"chaos\": {}\n}}\n",
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
        chaos,
    );
    let dir = experiments_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("cluster_scaling.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_cluster.json", &json);
}
