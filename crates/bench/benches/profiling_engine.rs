//! Compile-time benchmark for the batched profiling engine: how long the
//! profiler takes to resolve a real model's workload set sequentially
//! (exhaustive, pruning off) vs batched parallel with candidate pruning —
//! the engine that turns Figure 10b's minutes into seconds of real wall
//! clock on a multi-core host.
//!
//! Workload sets: ResNet-50 (batch 32, the paper's CNN testbed) and the
//! BERT GEMM list of Figures 1/8a. Results print as a table and are
//! emitted as JSON to `target/experiments/profiling_engine.json`.
//!
//! Run with: `cargo bench --bench profiling_engine`

use std::time::Instant;

use bolt::{BoltCompiler, BoltConfig, BoltProfiler, ProfileTask, ProfilerStats};
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_cutlass::Epilogue;
use bolt_gpu_sim::GpuArch;
use bolt_models::{bert, model_by_name};
use bolt_tensor::DType;

/// Timed repetitions per configuration. Each rep resolves the full
/// workload set on a fresh (cold-cache) profiler; the reported wall time
/// is the fastest rep — single-shot wall measurements at this scale
/// (hundreds of microseconds) are dominated by scheduler noise, and the
/// minimum is the robust estimator of how fast the engine actually runs.
const REPS: usize = 7;

struct EngineRun {
    wall_us: f64,
    stats: ProfilerStats,
    winners: Vec<Option<bolt::ProfiledKernel>>,
}

fn run_engine(arch: &GpuArch, tasks: &[ProfileTask], pruning: bool, parallel: bool) -> EngineRun {
    let mut wall_us = f64::INFINITY;
    let mut last = None;
    // Rep 0 is an untimed warmup (page faults, lazy allocator growth).
    for rep in 0..=REPS {
        let mut profiler = BoltProfiler::new(arch, 30);
        profiler.set_pruning(pruning);
        let start = Instant::now();
        if parallel {
            profiler.profile_batch(tasks);
        } else {
            for task in tasks {
                profiler.profile_task(task);
            }
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            wall_us = wall_us.min(elapsed);
        }
        last = Some(profiler);
    }
    // Winner collection and stats read the (deterministic) last rep.
    let profiler = last.expect("at least one rep ran");
    let winners = tasks
        .iter()
        .map(|task| profiler.profile_task(task))
        .collect();
    EngineRun {
        wall_us,
        stats: profiler.stats(),
        winners,
    }
}

fn resnet50_tasks(arch: &GpuArch) -> Vec<ProfileTask> {
    let graph = model_by_name("resnet-50", 32).graph;
    BoltCompiler::new(arch.clone(), BoltConfig::default())
        .profile_tasks(&graph)
        .expect("resnet-50 lowers")
}

fn bert_tasks() -> Vec<ProfileTask> {
    bert::gemm_workloads()
        .into_iter()
        .map(|(_, problem)| ProfileTask::Gemm {
            problem,
            epilogue: Epilogue::linear(DType::F16),
        })
        .collect()
}

fn main() {
    let arch = GpuArch::tesla_t4();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = Table::new(&[
        "workload set",
        "tasks",
        "unique",
        "sequential",
        "parallel+pruned",
        "speedup",
        "measured",
        "pruned",
        "skipped",
    ]);
    let mut json_sets = Vec::new();

    for (name, tasks) in [
        ("resnet-50", resnet50_tasks(&arch)),
        ("bert-gemms", bert_tasks()),
    ] {
        let sequential = run_engine(&arch, &tasks, false, false);
        let engine = run_engine(&arch, &tasks, true, true);
        assert_eq!(
            engine.winners, sequential.winners,
            "{name}: engine must select bit-identical winners"
        );

        let speedup = sequential.wall_us / engine.wall_us;
        let enumerated = engine.stats.measurements + engine.stats.pruned;
        let skipped = engine.stats.pruned as f64 / enumerated.max(1) as f64;
        table.row(&[
            name.to_string(),
            tasks.len().to_string(),
            engine.stats.workloads.to_string(),
            fmt_us(sequential.wall_us),
            fmt_us(engine.wall_us),
            format!("{speedup:.2}x"),
            engine.stats.measurements.to_string(),
            engine.stats.pruned.to_string(),
            format!("{:.0}%", skipped * 100.0),
        ]);
        json_sets.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"tasks\": {}, \"unique_workloads\": {},\n",
                "     \"sequential\": {{\"wall_us\": {:.1}, \"measurements\": {}}},\n",
                "     \"parallel_pruned\": {{\"wall_us\": {:.1}, \"measurements\": {}, \"pruned\": {}}},\n",
                "     \"speedup\": {:.3}, \"measurements_skipped_fraction\": {:.3}, \"winners_match\": true}}"
            ),
            name,
            tasks.len(),
            engine.stats.workloads,
            sequential.wall_us,
            sequential.stats.measurements,
            engine.wall_us,
            engine.stats.measurements,
            engine.stats.pruned,
            speedup,
            skipped,
        ));
    }

    table.print(&format!(
        "Profiling engine: sequential exhaustive vs batched parallel + pruning ({threads} threads)"
    ));
    table.write_csv("profiling_engine");

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"workload_sets\": [\n{}\n  ]\n}}\n",
        json_sets.join(",\n")
    );
    let dir = experiments_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("profiling_engine.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    // Headline compile-time result at the workspace root for CI.
    write_bench_json("BENCH_compile.json", &json);
}
