//! Figure 9: epilogue fusion on GEMM/Conv2D + BiasAdd + Activation.
//!
//! Paper setup: GEMM `M=1280, N=3072, K=768`; Conv2D `H=W=56, IC=OC=64,
//! 3×3, stride 1, padding 1`. Baseline is Bolt *without* epilogue fusion:
//! Bolt computes the GEMM/Conv, TVM fuses BiasAdd+activation into one
//! separate elementwise kernel.
//!
//! Paper claim: average speedup **1.45× (GEMM)** and **1.38× (Conv)**
//! over ReLU / GELU / Hardswish / Softplus.

use bolt::BoltProfiler;
use bolt_bench::{fmt_us, Table};
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

/// TVM's fused BiasAdd+activation elementwise kernel: read D + bias,
/// write D, plus the activation's arithmetic.
fn tvm_eltwise_us(arch: &GpuArch, elems: usize, act: Activation) -> f64 {
    let bytes = (2 * elems) as f64 * 2.0; // read + write FP16
    let mut profile = KernelProfile::memory_only("tvm_bias_act", bytes);
    profile.flops.cuda_core = (act.fma_ops_per_elem() + 2.0) * elems as f64;
    profile.flops.sfu = act.sfu_ops_per_elem() * elems as f64;
    simulate_kernel(arch, &profile).total_us
}

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);

    let gemm = GemmProblem::fp16(1280, 3072, 768);
    let conv = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
    let conv_out_elems = conv.implicit_gemm_mnk().0 * conv.k;

    let mut table = Table::new(&[
        "activation",
        "GEMM unfused",
        "GEMM fused",
        "GEMM speedup",
        "Conv unfused",
        "Conv fused",
        "Conv speedup",
    ]);
    let mut gemm_speedups = Vec::new();
    let mut conv_speedups = Vec::new();

    for act in Activation::REPVGG_SWEEP {
        // GEMM.
        let fused_ep = Epilogue::bias_activation(act, DType::F16);
        let fused = profiler
            .profile_gemm(&gemm, &fused_ep)
            .expect("profiled")
            .time_us;
        let plain = profiler
            .profile_gemm(&gemm, &Epilogue::linear(DType::F16))
            .expect("profiled")
            .time_us;
        let unfused = plain + tvm_eltwise_us(&t4, gemm.m * gemm.n, act);
        let g_speedup = unfused / fused;
        gemm_speedups.push(g_speedup);

        // Conv2D.
        let cfused = profiler
            .profile_conv2d(&conv, &fused_ep, DType::F16)
            .expect("profiled")
            .time_us;
        let cplain = profiler
            .profile_conv2d(&conv, &Epilogue::linear(DType::F16), DType::F16)
            .expect("profiled")
            .time_us;
        let cunfused = cplain + tvm_eltwise_us(&t4, conv_out_elems, act);
        let c_speedup = cunfused / cfused;
        conv_speedups.push(c_speedup);

        table.row(&[
            act.to_string(),
            fmt_us(unfused),
            fmt_us(fused),
            format!("{g_speedup:.2}x"),
            fmt_us(cunfused),
            fmt_us(cfused),
            format!("{c_speedup:.2}x"),
        ]);
    }
    table.print("Figure 9: epilogue fusion, GEMM/Conv2D + BiasAdd + activation");
    table.write_csv("fig09_epilogue");

    let gavg = gemm_speedups.iter().sum::<f64>() / gemm_speedups.len() as f64;
    let cavg = conv_speedups.iter().sum::<f64>() / conv_speedups.len() as f64;
    println!("average speedup: GEMM {gavg:.2}x (paper 1.45x), Conv {cavg:.2}x (paper 1.38x)");
}
