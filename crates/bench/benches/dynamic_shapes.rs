//! Dynamic shapes (paper Section 2.2, beyond the headline figures):
//! "Models have increasing dynamism ... dynamic shapes, making caching
//! much less effective" — a tuning-log database only helps shapes it has
//! seen. Bolt's pre-generated sample programs profile a *new* shape at
//! runtime in seconds; an auto-tuner must re-search from scratch.
//!
//! This bench sweeps BERT sequence lengths (the canonical dynamic-shape
//! workload) and reports, per previously-unseen shape: Bolt's profiling
//! cost and kernel quality vs Ansor's re-tuning cost.

use bolt::profiler::SECONDS_PER_PROFILE;
use bolt::BoltProfiler;
use bolt_ansor::{AnsorTuner, SECONDS_PER_TRIAL};
use bolt_bench::{fmt_seconds, fmt_us, Table};
use bolt_cutlass::{Epilogue, GemmProblem};
use bolt_gpu_sim::GpuArch;
use bolt_graph::Workload;
use bolt_models::bert::{FFN, HIDDEN};
use bolt_tensor::DType;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);
    // A small re-tuning budget per shape — real deployments would need the
    // full 900 to recover peak, making the gap even larger.
    let tuner = AnsorTuner::with_trials(&t4, 256);
    let batch = 32;

    let mut table = Table::new(&[
        "seq len",
        "GEMM (M,N,K)",
        "Bolt kernel",
        "Ansor kernel",
        "speedup",
        "Bolt tune cost",
        "Ansor tune cost (256 trials)",
    ]);
    let mut bolt_total = 0.0;
    let mut ansor_total = 0.0;
    for seq in [16usize, 40, 64, 128, 256, 384] {
        let m = batch * seq;
        let problem = GemmProblem::fp16(m, FFN, HIDDEN);
        let before = profiler.stats().measurements;
        let bolt = profiler
            .profile_gemm(&problem, &Epilogue::linear(DType::F16))
            .expect("profiled");
        let bolt_cost = (profiler.stats().measurements - before) as f64 * SECONDS_PER_PROFILE;

        let workload = Workload::Gemm {
            m,
            n: FFN,
            k: HIDDEN,
        };
        let report = tuner.tune_workloads(&[workload]);
        let ansor_us = report.best_time_us(&workload).expect("tuned");
        let ansor_cost = report.tuning_seconds;

        bolt_total += bolt_cost;
        ansor_total += ansor_cost;
        table.row(&[
            seq.to_string(),
            format!("{m},{FFN},{HIDDEN}"),
            fmt_us(bolt.time_us),
            fmt_us(ansor_us),
            format!("{:.1}x", ansor_us / bolt.time_us),
            fmt_seconds(bolt_cost),
            fmt_seconds(ansor_cost),
        ]);
    }
    table.print("Dynamic shapes: per-new-shape tuning cost (BERT FFN, batch 32)");
    table.write_csv("dynamic_shapes");
    println!(
        "\nsix unseen shapes: Bolt {} of profiling vs Ansor {} of re-tuning \
         (at the paper's 900-trial budget: {})",
        fmt_seconds(bolt_total),
        fmt_seconds(ansor_total),
        fmt_seconds(6.0 * 900.0 * SECONDS_PER_TRIAL)
    );
    println!(
        "repeat shapes are free for Bolt (cache hits: {}), matching the paper's \
         runtime-profiling argument for dynamic workloads",
        profiler.stats().cache_hits
    );
}
