//! Heterogeneous-fleet benchmark: portable autotune bundles and
//! cost/SLO-aware placement on a mixed T4 + A100 cluster.
//!
//! Three phases:
//!
//! 1. **Pack** — tune the bench model's serving buckets once per
//!    architecture and pack the per-arch shards into one bundle (the
//!    `bolt-tune pack` flow, via the library API). This is where the
//!    fleet pays its tuning seconds — once, offline.
//! 2. **Cold boot** — bring up a mixed fleet where every replica, of
//!    either arch, boots from that one bundle. Each replica must report
//!    **zero** tuning seconds: the bundle made the tuning cost portable.
//! 3. **Sweep** — at a fixed four-replica budget, compare fleet
//!    compositions (uniform T4x4 vs. mixed T4x2 + A100x2) under
//!    arch-blind consistent-hash routing vs. cost/SLO-aware placement.
//!    The metric is **SLO goodput**: completions whose simulated
//!    end-to-end latency meets the SLO, per wall-clock second (see
//!    `cluster_scaling.rs` for why simulated capacity, not host
//!    throughput, is what scales).
//!
//! Results are emitted to `target/experiments/fleet_mix.json` and
//! `BENCH_fleet.json` at the workspace root; CI gates on the cold-boot
//! tuning seconds being zero and on cost/SLO placement beating
//! arch-blind hashing on the mixed fleet.
//!
//! Run with: `cargo bench --bench fleet_mix`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::{BoltConfig, StepTimings, TuneBundle};
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_cluster::{
    Cluster, ClusterConfig, ClusterError, ModelSpec, PlacementClass, PlacementPolicy, ReplicaSpec,
};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{EngineRegistry, Outcome, ServeConfig};
use bolt_tensor::{DType, Tensor};

const MODEL: &str = "dense-mid";
const INPUT_FEATURES: usize = 1024;
const HIDDEN: usize = 4096;
const LAYERS: usize = 4;
const WORKERS_PER_REPLICA: usize = 2;
const MAX_BATCH: usize = 8;
/// Simulated end-to-end latency bound for the goodput metric.
const SLO_US: f64 = 25_000.0;
/// Tuning budget per workload when packing the bundle — small, because
/// the point being measured is *where* the cost is paid, not its size.
const PACK_CANDIDATES: usize = 8;

fn builder() -> bolt_serve::registry::GraphBuilder {
    Arc::new(|batch| {
        let mut b = bolt_graph::GraphBuilder::shapes_only(DType::F16);
        let mut h = b.input(&[batch, INPUT_FEATURES]);
        for layer in 0..LAYERS {
            h = b.dense_bias(h, HIDDEN, &format!("ffn{layer}"));
        }
        let out = b.dense_bias(h, INPUT_FEATURES, "head");
        b.finish(&[out])
    })
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS_PER_REPLICA,
        max_batch: MAX_BATCH,
        batch_timeout: Duration::from_millis(3),
        queue_capacity: 4096,
        ..ServeConfig::default()
    }
}

fn tuning_config() -> BoltConfig {
    BoltConfig {
        profiler_candidates: PACK_CANDIDATES,
        ..BoltConfig::default()
    }
}

struct PackedArch {
    name: String,
    tuning_seconds: f64,
    entries: usize,
}

/// Phase 1: tune the serving buckets once per arch, exporting each
/// profiler's shard into one bundle. Returns the per-arch tuning bill —
/// the cost the bundle makes portable.
fn pack_bundle(path: &std::path::Path, arches: &[GpuArch]) -> Vec<PackedArch> {
    let buckets = serve_config().buckets();
    let mut bundle = TuneBundle::new();
    let mut packed = Vec::new();
    for arch in arches {
        let registry = EngineRegistry::new(arch.clone(), tuning_config());
        let build = builder();
        registry
            .register_with(MODEL, &buckets, move |batch| build(batch))
            .expect("tuning registry compiles");
        let shard = registry.compiler().profiler().export_shard();
        packed.push(PackedArch {
            name: arch.name.clone(),
            tuning_seconds: registry.compiler().profiler().stats().tuning_seconds(),
            entries: shard.len(),
        });
        bundle.absorb(shard);
    }
    bundle.write(path).expect("bundle writes");
    packed
}

fn placement_class(
    name: &str,
    arch: GpuArch,
    replicas: usize,
    bundle: &std::path::Path,
) -> PlacementClass {
    PlacementClass {
        name: name.into(),
        spec: ReplicaSpec {
            arch,
            bolt: BoltConfig {
                bundle_path: Some(bundle.to_path_buf()),
                ..tuning_config()
            },
            serve: serve_config(),
            models: vec![ModelSpec::Custom {
                name: MODEL.into(),
                build: builder(),
                tuned: true,
            }],
        },
        initial_replicas: replicas,
        min_replicas: 1,
        max_replicas: replicas,
    }
}

/// Fleet compositions at the fixed four-replica budget.
fn fleet(kind: &str, bundle: &std::path::Path, policy: PlacementPolicy) -> Arc<Cluster> {
    let classes = match kind {
        "t4x4" => vec![placement_class("t4", GpuArch::tesla_t4(), 4, bundle)],
        "mixed" => vec![
            placement_class("t4", GpuArch::tesla_t4(), 2, bundle),
            placement_class("a100", GpuArch::a100(), 2, bundle),
        ],
        other => panic!("unknown fleet kind {other}"),
    };
    Cluster::new(ClusterConfig { classes, policy }).expect("fleet comes up")
}

/// One T4 replica's simulated capacity, from the tuned batch-8 engine.
fn probe_batch8_us() -> f64 {
    let reg = EngineRegistry::new(GpuArch::tesla_t4(), tuning_config());
    let build = builder();
    reg.register_dynamic(MODEL, move |batch| build(batch))
        .expect("register probe model");
    let engine = reg
        .compile_heuristic_bucket(MODEL, MAX_BATCH)
        .expect("heuristic compile");
    let mut timings = StepTimings::default();
    engine.time_observed(&mut timings).total_us
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Cell {
    fleet: String,
    policy: String,
    offered_rps: f64,
    requests: usize,
    accepted: u64,
    completed: u64,
    in_slo: u64,
    goodput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    rejected_admission: u64,
    lost: u64,
}

/// Open-loop arrival process: request `i` is due at `start + i/rate`, so
/// late service never slows the arrivals down.
fn run_cell(
    fleet_kind: &str,
    policy_name: &str,
    bundle: &std::path::Path,
    offered_rps: f64,
) -> Cell {
    let policy = match policy_name {
        "consistent_hash" => PlacementPolicy::ConsistentHash { virtual_nodes: 64 },
        "cost_slo" => PlacementPolicy::cost_slo(),
        other => panic!("unknown policy {other}"),
    };
    let cluster = fleet(fleet_kind, bundle, policy);
    let requests = ((offered_rps * 0.4) as usize).clamp(400, 6000);
    let mut inputs: Vec<Vec<Tensor>> = (0..requests)
        .rev()
        .map(|i| vec![Tensor::randn(&[1, INPUT_FEATURES], DType::F16, i as u64)])
        .collect();

    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    let mut rejected_admission = 0u64;
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sample = inputs.pop().expect("pre-generated");
        match cluster.submit(MODEL, sample, None) {
            Ok(handle) => handles.push(handle),
            Err(ClusterError::AllBackpressured { .. }) => rejected_admission += 1,
            Err(other) => panic!("unexpected cluster error: {other}"),
        }
    }
    let mut latencies: Vec<f64> = handles
        .iter()
        .filter_map(|h| match h.wait() {
            Outcome::Completed(response) => Some(response.latency.total_us),
            _ => None,
        })
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let end = cluster.shutdown();
    let lost = end.totals.unresolved();
    assert_eq!(lost, 0, "drain must resolve every accepted request");
    let in_slo = latencies.iter().filter(|&&l| l <= SLO_US).count() as u64;
    Cell {
        fleet: fleet_kind.into(),
        policy: policy_name.into(),
        offered_rps,
        requests,
        accepted: end.totals.accepted,
        completed: end.totals.completed,
        in_slo,
        goodput_rps: in_slo as f64 / elapsed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        rejected_admission,
        lost,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "    {{\"fleet\": \"{}\", \"policy\": \"{}\", \"offered_rps\": {:.0}, ",
            "\"requests\": {}, \"accepted\": {}, \"completed\": {},\n     ",
            "\"in_slo\": {}, \"goodput_rps\": {:.1}, \"sim_p50_us\": {:.1}, ",
            "\"sim_p99_us\": {:.1}, \"rejected_admission\": {}, \"lost\": {}}}"
        ),
        c.fleet,
        c.policy,
        c.offered_rps,
        c.requests,
        c.accepted,
        c.completed,
        c.in_slo,
        c.goodput_rps,
        c.p50_us,
        c.p99_us,
        c.rejected_admission,
        c.lost,
    )
}

fn main() {
    let dir = experiments_dir();
    let _ = std::fs::create_dir_all(&dir);
    let bundle_path = dir.join("fleet.bundle");

    // Phase 1: pack per-arch shards into one bundle.
    let packed = pack_bundle(&bundle_path, &[GpuArch::tesla_t4(), GpuArch::a100()]);
    for arch in &packed {
        println!(
            "packed {}: {} tuned workloads, {:.1} s simulated tuning",
            arch.name, arch.entries, arch.tuning_seconds
        );
    }

    // Phase 2: a mixed fleet cold-boots every replica from the bundle.
    let boot = fleet("mixed", &bundle_path, PlacementPolicy::cost_slo());
    let mut boot_json = Vec::new();
    let mut max_boot_tuning = 0.0f64;
    for replica in boot.replicas() {
        let seconds = replica.tuning_seconds();
        max_boot_tuning = max_boot_tuning.max(seconds);
        println!(
            "cold boot: replica {} ({}, class {}) tuning_seconds = {seconds}",
            replica.id(),
            replica.arch().name,
            replica.class()
        );
        boot_json.push(format!(
            "    {{\"replica\": {}, \"class\": \"{}\", \"arch\": \"{}\", \"tuning_seconds\": {seconds:.3}}}",
            replica.id(),
            replica.class(),
            replica.arch().name
        ));
    }
    boot.shutdown();
    assert_eq!(
        max_boot_tuning, 0.0,
        "a bundle-booted replica must not re-measure anything"
    );

    // Phase 3: fixed-budget sweep, fleet composition x placement policy.
    let batch8_us = probe_batch8_us();
    let t4_capacity_rps = WORKERS_PER_REPLICA as f64 * MAX_BATCH as f64 * 1e6 / batch8_us;
    // Past one replica's capacity, well under four: arch-blind hashing
    // pins the model to a single ring owner and saturates it, while
    // cost-aware placement spreads by per-arch kernel cost.
    let offered = 2.5 * t4_capacity_rps;
    println!(
        "\nbench model: {LAYERS}x dense({HIDDEN}) shapes-only, T4 batch-8 kernel time {} \
         => ~{t4_capacity_rps:.0} rps per T4 replica; offering {offered:.0} rps",
        fmt_us(batch8_us),
    );

    let mut table = Table::new(&[
        "fleet",
        "policy",
        "offered rps",
        "goodput rps",
        "in-SLO",
        "sim p50",
        "sim p99",
        "queue full",
        "lost",
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    for fleet_kind in ["t4x4", "mixed"] {
        for policy in ["consistent_hash", "cost_slo"] {
            let cell = run_cell(fleet_kind, policy, &bundle_path, offered);
            table.row(&[
                cell.fleet.clone(),
                cell.policy.clone(),
                format!("{:.0}", cell.offered_rps),
                format!("{:.0}", cell.goodput_rps),
                format!("{}/{}", cell.in_slo, cell.completed),
                fmt_us(cell.p50_us),
                fmt_us(cell.p99_us),
                cell.rejected_admission.to_string(),
                cell.lost.to_string(),
            ]);
            cells.push(cell);
        }
    }
    table.print(&format!(
        "Fleet mix: SLO goodput (sim latency <= {}) at a fixed 4-replica budget, \
         composition x placement policy",
        fmt_us(SLO_US)
    ));
    table.write_csv("fleet_mix");

    let goodput = |fleet: &str, policy: &str| {
        cells
            .iter()
            .find(|c| c.fleet == fleet && c.policy == policy)
            .map(|c| c.goodput_rps)
            .expect("cell ran")
    };
    let blind = goodput("mixed", "consistent_hash");
    let aware = goodput("mixed", "cost_slo");
    println!(
        "\nmixed fleet at {offered:.0} offered rps: arch-blind hashing {blind:.0} goodput rps, \
         cost/SLO placement {aware:.0} goodput rps => {:.2}x",
        aware / blind.max(1e-9)
    );

    let json = format!(
        "{{\n  \"model\": {{\"name\": \"{MODEL}\", \"layers\": {LAYERS}, \"hidden\": {HIDDEN}, \
         \"t4_batch8_sim_us\": {batch8_us:.1}, \"t4_capacity_rps\": {t4_capacity_rps:.1}}},\n  \
         \"slo_us\": {SLO_US:.1},\n  \"pack\": [\n{}\n  ],\n  \
         \"cold_boot\": {{\"max_tuning_seconds\": {max_boot_tuning:.3}, \"replicas\": [\n{}\n  ]}},\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"headline\": {{\"offered_rps\": {offered:.0}, \
         \"mixed_arch_blind_goodput\": {blind:.1}, \"mixed_cost_slo_goodput\": {aware:.1}, \
         \"uplift\": {:.3}}}\n}}\n",
        packed
            .iter()
            .map(|a| format!(
                "    {{\"arch\": \"{}\", \"entries\": {}, \"tuning_seconds\": {:.1}}}",
                a.name, a.entries, a.tuning_seconds
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        boot_json.join(",\n"),
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
        aware / blind.max(1e-9),
    );
    let path = dir.join("fleet_mix.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_fleet.json", &json);
}
