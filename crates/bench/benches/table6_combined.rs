//! Table 6: the combined system-friendly design — 1×1 deepening +
//! Hardswish, trained 300 epochs with advanced augmentation (RepVGG-A0
//! keeps the simple recipe, as in the paper).
//!
//! Paper: A0 73.41 @ 7861, A1 74.89 @ 6253, B0 75.89 @ 4888;
//! Aug-A0 74.54 @ 6338, Aug-A1 76.72 @ 4868, Aug-B0 77.22 @ 3842.
//! Headline: Aug-A1 gains +1.83% over A1 with a speed overhead similar
//! to the A1→B0 step (which buys only +1.0%).

use bolt::{BoltCompiler, BoltConfig};
use bolt_bench::Table;
use bolt_gpu_sim::GpuArch;
use bolt_models::repvgg::RepVggVariant;
use bolt_models::{AccuracyModel, RepVggSpec, TrainRecipe};
use bolt_tensor::Activation;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let accuracy = AccuracyModel::default();
    let batch = 32;
    // (spec, recipe, paper top-1, paper img/s)
    let simple300 = TrainRecipe {
        epochs: 300,
        advanced_augmentation: false,
    };
    let rows: Vec<(RepVggSpec, TrainRecipe, f64, f64)> = vec![
        (
            RepVggSpec::original(RepVggVariant::A0),
            simple300,
            73.41,
            7861.0,
        ),
        (
            RepVggSpec::original(RepVggVariant::A1),
            TrainRecipe::TABLE6,
            74.89,
            6253.0,
        ),
        (
            RepVggSpec::original(RepVggVariant::B0),
            TrainRecipe::TABLE6,
            75.89,
            4888.0,
        ),
        (
            RepVggSpec::augmented(RepVggVariant::A0, Activation::Hardswish),
            TrainRecipe::TABLE6,
            74.54,
            6338.0,
        ),
        (
            RepVggSpec::augmented(RepVggVariant::A1, Activation::Hardswish),
            TrainRecipe::TABLE6,
            76.72,
            4868.0,
        ),
        (
            RepVggSpec::augmented(RepVggVariant::B0, Activation::Hardswish),
            TrainRecipe::TABLE6,
            77.22,
            3842.0,
        ),
    ];

    let mut table = Table::new(&[
        "model",
        "top-1 (%)",
        "paper top-1",
        "speed (img/s)",
        "paper speed",
    ]);
    let mut measured = Vec::new();
    for (spec, recipe, paper_acc, paper_speed) in rows {
        let graph = spec.deploy_graph(batch);
        let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
        let model = compiler.compile(&graph).expect("compiles");
        let ips = model.time().images_per_sec(batch);
        let top1 = accuracy.top1(&spec, recipe);
        measured.push((spec.name(), top1, ips));
        table.row(&[
            spec.name(),
            format!("{top1:.2}"),
            format!("{paper_acc:.2}"),
            format!("{ips:.0}"),
            format!("{paper_speed:.0}"),
        ]);
    }
    table.print("Table 6: combined codesign (1x1 deepening + Hardswish, 300 epochs)");
    table.write_csv("table6_combined");

    // The headline comparison.
    let a1 = measured.iter().find(|(n, _, _)| n == "RepVGG-A1").unwrap();
    let aug_a1 = measured
        .iter()
        .find(|(n, _, _)| n == "RepVGGAug-A1")
        .unwrap();
    println!(
        "\nAug-A1 vs A1: top-1 {:+.2}% (paper +1.83%), speed {:.0} vs {:.0} img/s",
        aug_a1.1 - a1.1,
        aug_a1.2,
        a1.2
    );
}
