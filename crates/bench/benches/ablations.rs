//! Ablations of Bolt's design choices (DESIGN.md §6):
//!
//! 1. end-to-end contribution of each optimization (epilogue fusion,
//!    persistent kernels, padding, layout folding);
//! 2. light-weight profiler (tens of candidates) vs exhaustive search —
//!    quality given up for minute-scale tuning;
//! 3. RF-resident vs smem-resident persistent kernels across GEMM_N.

use bolt::{BoltCompiler, BoltConfig, BoltProfiler};
use bolt_bench::{fmt_us, Table};
use bolt_cutlass::{B2bGemmKernel, BiasMode, Epilogue, GemmProblem, Residence, VendorLibrary};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_models::model_by_name;
use bolt_tensor::{Activation, DType};

fn ablation_end_to_end(t4: &GpuArch) {
    let mut table = Table::new(&["config", "repvggaug-a0 (img/s)", "resnet-50 (img/s)"]);
    let configs: Vec<(&str, BoltConfig)> = vec![
        ("all optimizations", BoltConfig::default()),
        (
            "no persistent kernels",
            BoltConfig {
                persistent_kernels: false,
                ..BoltConfig::default()
            },
        ),
        (
            "no epilogue fusion",
            BoltConfig {
                epilogue_fusion: false,
                ..BoltConfig::default()
            },
        ),
        (
            "no kernel padding",
            BoltConfig {
                kernel_padding: false,
                ..BoltConfig::default()
            },
        ),
        (
            "no layout folding",
            BoltConfig {
                layout_transform_folding: false,
                ..BoltConfig::default()
            },
        ),
        ("none", BoltConfig::no_optimizations()),
    ];
    let batch = 32;
    let models: Vec<_> = ["repvggaug-a0", "resnet-50"]
        .iter()
        .map(|name| {
            PassManager::deployment()
                .run(&model_by_name(name, batch).graph)
                .expect("passes")
        })
        .collect();
    for (label, config) in configs {
        let mut cells = vec![label.to_string()];
        for graph in &models {
            let model = BoltCompiler::new(t4.clone(), config.clone())
                .compile(graph)
                .expect("compiles");
            cells.push(format!("{:.0}", model.time().images_per_sec(batch)));
        }
        table.row(&cells);
    }
    table.print("Ablation 1: contribution of each Bolt optimization");
    table.write_csv("ablation_optimizations");
}

fn ablation_profiler_quality(t4: &GpuArch) {
    let vendor = VendorLibrary::new(t4); // exhaustive offline search
    let mut table = Table::new(&[
        "workload",
        "profiler best",
        "exhaustive best",
        "gap",
        "candidates",
    ]);
    for problem in [
        GemmProblem::fp16(4096, 4096, 4096),
        GemmProblem::fp16(1280, 3072, 768),
        GemmProblem::fp16(1280, 768, 3072),
        GemmProblem::fp16(512, 512, 512),
        GemmProblem::fp16(16384, 64, 256),
    ] {
        let profiler = BoltProfiler::new(t4, 30);
        let best = profiler
            .profile_gemm(&problem, &Epilogue::linear(DType::F16))
            .expect("profiled");
        let exhaustive = vendor.gemm_time_us(&problem);
        table.row(&[
            problem.to_string(),
            fmt_us(best.time_us),
            fmt_us(exhaustive),
            format!("{:+.1}%", 100.0 * (best.time_us / exhaustive - 1.0)),
            best.candidates.to_string(),
        ]);
    }
    table.print("Ablation 2: light-weight profiler vs exhaustive template search");
    table.write_csv("ablation_profiler");
}

fn ablation_residence(t4: &GpuArch) {
    let relu = Epilogue {
        beta: 0.0,
        bias: BiasMode::None,
        ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
    };
    let mut table = Table::new(&[
        "GEMM_N (both layers)",
        "RF-resident",
        "smem-resident",
        "winner",
    ]);
    for n in [16usize, 32, 64, 128, 256] {
        let g0 = GemmProblem::fp16(32768, n, 128);
        let g1 = GemmProblem::fp16(32768, n, n);
        let rf = B2bGemmKernel::with_residence(g0, g1, relu, relu, Residence::RegisterFile);
        let sm = B2bGemmKernel::with_residence(g0, g1, relu, relu, Residence::SharedMemory);
        let rf_cell = match rf.validate(t4) {
            Ok(()) => fmt_us(rf.time(t4).total_us),
            Err(_) => "illegal (RF pressure)".to_string(),
        };
        let sm_cell = match sm.validate(t4) {
            Ok(()) => fmt_us(sm.time(t4).total_us),
            Err(e) => format!("illegal: {e}"),
        };
        let winner = match (rf.validate(t4).is_ok(), sm.validate(t4).is_ok()) {
            (true, true) => {
                if rf.time(t4).total_us <= sm.time(t4).total_us {
                    "rf"
                } else {
                    "smem"
                }
            }
            (true, false) => "rf",
            (false, true) => "smem",
            (false, false) => "-",
        };
        table.row(&[n.to_string(), rf_cell, sm_cell, winner.to_string()]);
    }
    table.print("Ablation 3: RF- vs smem-resident persistent kernels across GEMM_N");
    table.write_csv("ablation_residence");
    println!("expected: RF wins for small N, becomes illegal (register pressure) for large N");
}

fn ablation_swizzle(t4: &GpuArch) {
    // Threadblock swizzle is one of the declarative template parameters
    // the paper lists; it controls wave locality in L2.
    use bolt_cutlass::perf::gemm_profile;
    use bolt_cutlass::GemmConfig;
    use bolt_gpu_sim::simulate_kernel;
    let mut table = Table::new(&["GEMM", "swizzle 1", "swizzle 4", "gain"]);
    for mnk in [2048usize, 4096, 8192] {
        let problem = GemmProblem::fp16(mnk, mnk, mnk);
        let ep = Epilogue::linear(DType::F16);
        let mut c1 = GemmConfig::turing_default();
        c1.swizzle = 1;
        let mut c4 = GemmConfig::turing_default();
        c4.swizzle = 4;
        let t1 = simulate_kernel(t4, &gemm_profile(t4, &problem, &c1, &ep, None)).total_us;
        let t4_ = simulate_kernel(t4, &gemm_profile(t4, &problem, &c4, &ep, None)).total_us;
        table.row(&[
            format!("{mnk}^3"),
            fmt_us(t1),
            fmt_us(t4_),
            format!("{:.2}x", t1 / t4_),
        ]);
    }
    table.print("Ablation 4: threadblock swizzle (L2 wave locality)");
    table.write_csv("ablation_swizzle");
}

fn main() {
    let t4 = GpuArch::tesla_t4();
    ablation_end_to_end(&t4);
    ablation_profiler_quality(&t4);
    ablation_residence(&t4);
    ablation_swizzle(&t4);
}
