//! Figure 8a: Bolt-generated vs Ansor-generated FP16 GEMM speed.
//!
//! Paper claim: Bolt is **6.1-9.5× faster** than Ansor on the
//! compute-intensive workloads and **1.9×** on the least
//! compute-intensive one (the batched attention GEMM in our set).

use bolt::BoltProfiler;
use bolt_ansor::AnsorTuner;
use bolt_bench::{fmt_us, Table};
use bolt_cutlass::Epilogue;
use bolt_gpu_sim::GpuArch;
use bolt_models::bert::{gemm_workloads, tuner_workload};
use bolt_tensor::DType;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let profiler = BoltProfiler::new(&t4, 30);
    let tuner = AnsorTuner::with_trials(&t4, 2000);

    let mut table = Table::new(&[
        "workload",
        "shape",
        "Ansor",
        "Bolt",
        "Bolt TFLOPS",
        "speedup",
    ]);
    for (label, problem) in gemm_workloads() {
        let bolt = profiler
            .profile_gemm(&problem, &Epilogue::linear(DType::F16))
            .expect("profiled");

        let workload = tuner_workload(&problem);
        let report = tuner.tune_workloads(&[workload]);
        let ansor_us = report.best_time_us(&workload).expect("tuned");

        let speedup = ansor_us / bolt.time_us;
        table.row(&[
            label.to_string(),
            problem.to_string(),
            fmt_us(ansor_us),
            fmt_us(bolt.time_us),
            format!("{:.1}", problem.flops() / (bolt.time_us * 1e6)),
            format!("{speedup:.1}x"),
        ]);
        println!("{label}: Bolt {speedup:.1}x over Ansor");
    }
    table.print("Figure 8a: GEMM speed, Bolt vs Ansor (Tesla T4, simulated)");
    table.write_csv("fig08a_gemm");
    println!(
        "paper bands: 6.1-9.5x on compute-intensive GEMMs, 1.9x on the least compute-intensive"
    );
}
