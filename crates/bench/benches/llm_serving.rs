//! Autoregressive LLM serving benchmark (ISSUE 9): decode-step
//! throughput of the continuous batcher vs. the legacy pad-to-bucket
//! static cohort, swept over concurrent sequence counts on the
//! simulated-GPU clock.
//!
//! Each sweep point runs twice on the same batcher: a **cold** pass
//! (unseen M buckets served on heuristic fallback engines while the
//! online tuner compiles in the background) and a **warm** pass after
//! `wait_tuned` (every bucket hot-swapped to its tuned engine — the
//! steady-state numbers CI gates on). Every pass is checked
//! token-for-token against a sequential oracle (the same model at
//! `max_slots = 1`, one sequence at a time): `lost_tokens` /
//! `duplicated_tokens` must be zero and the streams bit-identical, or
//! batching changed the math.
//!
//! A third sweep (ISSUE 10) measures the **KV memory governor** under
//! pressure: the same 32-sequence workload at shrinking block budgets —
//! unconstrained, moderate, and severe — forcing watermark stalls and
//! preempt-and-recompute. CI gates that pressure never loses or
//! duplicates a token, streams stay bit-identical, warm-pool steady
//! state allocates zero fresh blocks, and goodput at the moderate
//! budget holds ≥ 0.7× unconstrained.
//!
//! Results print as tables and are emitted to
//! `target/experiments/llm_serving.json` and `BENCH_llm.json` at the
//! workspace root; CI gates on the continuous path scaling from 1 to 32
//! concurrent sequences and on token conservation.
//!
//! Run with: `cargo bench --bench llm_serving`

use bolt::BoltConfig;
use bolt_bench::{experiments_dir, write_bench_json, Table};
use bolt_gpu_sim::GpuArch;
use bolt_models::{sample_prompts, PromptLengths};
use bolt_serve::{BatchMode, ContinuousBatcher, LlmServeConfig, SequenceRequest};

const CONCURRENCY: [usize; 3] = [1, 8, 32];
const MAX_SLOTS: usize = 8;
const PROMPT_SEED: u64 = 42;
/// Pressure sweep: sequences competing for the KV block pool.
const PRESSURE_SEQUENCES: usize = 32;
/// Block budgets for the pressure sweep: unconstrained (slots × full
/// context — preemption never fires), moderate, and severe. The
/// moderate budget is what the goodput gate compares against.
const PRESSURE_BUDGETS: [(&str, Option<usize>); 3] = [
    ("unconstrained", None),
    ("moderate", Some(16)),
    ("severe", Some(13)),
];

struct Workload {
    prompts: Vec<Vec<u32>>,
    max_new: Vec<usize>,
}

impl Workload {
    fn tiny_lm(sequences: usize) -> Workload {
        let prompts = sample_prompts(
            "tiny-lm",
            sequences,
            PromptLengths::uniform(4, 32),
            PROMPT_SEED,
        )
        .expect("tiny-lm in the zoo");
        // Ragged generation lengths: sequences retire at different
        // steps, which is where pad-to-bucket wastes flops.
        let max_new = (0..sequences).map(|i| 6 + i % 5).collect();
        Workload { prompts, max_new }
    }

    /// The pressure-sweep workload: same prompts, but generations long
    /// enough that sequences repeatedly cross 16-row block boundaries
    /// mid-decode — where the governor actually has to preempt — and
    /// long enough to amortize each preemption's recompute.
    fn tiny_lm_pressure(sequences: usize) -> Workload {
        let prompts = sample_prompts(
            "tiny-lm",
            sequences,
            PromptLengths::uniform(4, 32),
            PROMPT_SEED,
        )
        .expect("tiny-lm in the zoo");
        let max_new = (0..sequences).map(|i| 16 + i % 9).collect();
        Workload { prompts, max_new }
    }

    fn expected_tokens(&self) -> u64 {
        self.max_new.iter().map(|&n| n as u64).sum()
    }
}

struct Run {
    mode: &'static str,
    sequences: usize,
    tokens_per_sec: f64,
    ttft_p99_us: f64,
    padding_fraction: f64,
    steps: u64,
    expected_tokens: u64,
    generated_tokens: u64,
    lost_tokens: u64,
    duplicated_tokens: u64,
    bit_identical: bool,
}

fn batcher(max_slots: usize, mode: BatchMode) -> ContinuousBatcher {
    ContinuousBatcher::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots,
            mode,
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm engines")
}

fn submit(batcher: &mut ContinuousBatcher, workload: &Workload, upto: usize) {
    for (prompt, &max_new) in workload.prompts.iter().zip(&workload.max_new).take(upto) {
        batcher
            .submit(SequenceRequest {
                prompt: prompt.clone(),
                max_new_tokens: max_new,
                deadline_us: None,
            })
            .expect("valid request");
    }
}

/// One sequence at a time through a fresh single-slot batcher: the
/// ground truth every batched sweep point must reproduce bit-for-bit.
fn oracle_streams(workload: &Workload) -> Vec<Vec<u32>> {
    let mut oracle = batcher(1, BatchMode::Continuous);
    workload
        .prompts
        .iter()
        .zip(&workload.max_new)
        .map(|(prompt, &max_new)| {
            oracle
                .submit(SequenceRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: max_new,
                    deadline_us: None,
                })
                .expect("valid request");
            let mut done = oracle.run_to_completion();
            done.pop().expect("one sequence").tokens
        })
        .collect()
}

/// Snapshot of the cumulative batcher counters a pass is diffed against.
#[derive(Clone, Copy, Default)]
struct Baseline {
    sim_us: f64,
    generated: u64,
    steps: u64,
    real_flops: f64,
    launched_flops: f64,
}

fn baseline(batcher: &ContinuousBatcher) -> Baseline {
    let stats = batcher.stats();
    let metrics = batcher.metrics();
    Baseline {
        sim_us: batcher.sim_now_us(),
        generated: stats.generated_tokens,
        steps: stats.steps,
        real_flops: metrics.real_flops,
        launched_flops: metrics.launched_flops,
    }
}

/// Runs the workload once on `batcher` and reports the pass relative to
/// the counters at entry (so a warm pass excludes the cold pass).
fn run_pass(
    batcher: &mut ContinuousBatcher,
    label: &'static str,
    workload: &Workload,
    oracle: &[Vec<u32>],
) -> Run {
    let sequences = workload.prompts.len();
    let before = baseline(batcher);
    submit(batcher, workload, sequences);
    let mut results = batcher.run_to_completion();
    results.sort_by_key(|r| r.id);
    let after = baseline(batcher);

    let sim_us = (after.sim_us - before.sim_us).max(1.0);
    let generated = after.generated - before.generated;
    let launched = after.launched_flops - before.launched_flops;
    let real = after.real_flops - before.real_flops;

    let mut ttfts: Vec<f64> = results.iter().filter_map(|r| r.ttft_us).collect();
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite ttft"));
    let ttft_p99_us = ttfts
        .get(((ttfts.len() as f64 * 0.99).ceil() as usize).max(1) - 1)
        .copied()
        .unwrap_or(0.0);

    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut bit_identical = results.len() == sequences;
    for (i, seq) in results.iter().enumerate() {
        let expected = &oracle[i];
        lost += expected.len().saturating_sub(seq.tokens.len()) as u64;
        duplicated += seq.tokens.len().saturating_sub(expected.len()) as u64;
        bit_identical &= &seq.tokens == expected;
    }

    Run {
        mode: label,
        sequences,
        tokens_per_sec: generated as f64 * 1e6 / sim_us,
        ttft_p99_us,
        padding_fraction: if launched > 0.0 {
            ((launched - real) / launched).max(0.0)
        } else {
            0.0
        },
        steps: after.steps - before.steps,
        expected_tokens: workload.expected_tokens(),
        generated_tokens: generated,
        lost_tokens: lost,
        duplicated_tokens: duplicated,
        bit_identical,
    }
}

/// One pressure-sweep measurement: a [`Run`] plus the KV governor's
/// preemption and allocation accounting for the pass.
struct PressureRun {
    budget: &'static str,
    kv_budget_blocks: Option<usize>,
    run: Run,
    preemptions: u64,
    preemption_fraction: f64,
    recompute_tokens: u64,
    /// Fresh block-tensor allocations during the pass; must be zero in
    /// the warm pass (steady state is served entirely from the pool).
    fresh_allocations_delta: u64,
}

/// Cold pass, tuner drain, warm pass at one KV block budget — the
/// governor's preemption counters diffed per pass.
fn pressure_point(
    budget_label: &'static str,
    budget: Option<usize>,
    oracle: &[Vec<u32>],
) -> (PressureRun, PressureRun) {
    let workload = Workload::tiny_lm_pressure(PRESSURE_SEQUENCES);
    let mut batcher = ContinuousBatcher::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots: MAX_SLOTS,
            mode: BatchMode::Continuous,
            kv_budget_blocks: budget,
            // Admit optimistically (no decode-growth reserve): the sweep
            // measures preempt-and-recompute, not watermark throttling.
            kv_reserve_blocks: 0,
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm engines");
    let pass = |batcher: &mut ContinuousBatcher| {
        let stats_before = batcher.stats();
        let fresh_before = batcher.kv_governor().kv_fresh_allocations;
        let run = run_pass(batcher, "continuous", &workload, oracle);
        let stats_after = batcher.stats();
        let preemptions = stats_after.preemptions - stats_before.preemptions;
        PressureRun {
            budget: budget_label,
            kv_budget_blocks: budget,
            run,
            preemptions,
            preemption_fraction: preemptions as f64 / PRESSURE_SEQUENCES as f64,
            recompute_tokens: stats_after.recompute_tokens - stats_before.recompute_tokens,
            fresh_allocations_delta: batcher.kv_governor().kv_fresh_allocations - fresh_before,
        }
    };
    let cold = pass(&mut batcher);
    assert!(
        batcher.wait_tuned(std::time::Duration::from_secs(60)),
        "online tuner drains between passes"
    );
    let warm = pass(&mut batcher);
    (cold, warm)
}

/// Cold pass, tuner drain, warm pass — same batcher, same workload.
fn run_point(
    mode: BatchMode,
    label: &'static str,
    sequences: usize,
    oracle: &[Vec<u32>],
) -> (Run, Run) {
    let workload = Workload::tiny_lm(sequences);
    let mut batcher = batcher(MAX_SLOTS.min(sequences), mode);
    let cold = run_pass(&mut batcher, label, &workload, oracle);
    assert!(
        batcher.wait_tuned(std::time::Duration::from_secs(60)),
        "online tuner drains between passes"
    );
    let warm = run_pass(&mut batcher, label, &workload, oracle);
    (cold, warm)
}

fn json_rows(runs: &[Run]) -> String {
    runs.iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"sequences\": {}, \"tokens_per_sec\": {:.1}, \
                 \"ttft_p99_us\": {:.1}, \"padding_fraction\": {:.4}, \"steps\": {}, \
                 \"expected_tokens\": {}, \"generated_tokens\": {}, \"lost_tokens\": {}, \
                 \"duplicated_tokens\": {}, \"bit_identical\": {}}}",
                r.mode,
                r.sequences,
                r.tokens_per_sec,
                r.ttft_p99_us,
                r.padding_fraction,
                r.steps,
                r.expected_tokens,
                r.generated_tokens,
                r.lost_tokens,
                r.duplicated_tokens,
                r.bit_identical
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn pressure_json_rows(runs: &[PressureRun]) -> String {
    runs.iter()
        .map(|p| {
            let budget = p.kv_budget_blocks.map_or("null".into(), |b| b.to_string());
            format!(
                "    {{\"budget\": \"{}\", \"kv_budget_blocks\": {budget}, \
                 \"tokens_per_sec\": {:.1}, \"tokens_per_step\": {:.3}, \
                 \"ttft_p99_us\": {:.1}, \
                 \"preemptions\": {}, \"preemption_fraction\": {:.4}, \
                 \"recompute_tokens\": {}, \"fresh_allocations_delta\": {}, \
                 \"lost_tokens\": {}, \"duplicated_tokens\": {}, \
                 \"bit_identical\": {}}}",
                p.budget,
                p.run.tokens_per_sec,
                p.run.generated_tokens as f64 / p.run.steps.max(1) as f64,
                p.run.ttft_p99_us,
                p.preemptions,
                p.preemption_fraction,
                p.recompute_tokens,
                p.fresh_allocations_delta,
                p.run.lost_tokens,
                p.run.duplicated_tokens,
                p.run.bit_identical
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn pressure_table(runs: &[PressureRun]) -> Table {
    let mut table = Table::new(&[
        "budget",
        "blocks",
        "tokens/sec",
        "tok/step",
        "ttft p99 (us)",
        "preempt",
        "preempt frac",
        "recompute",
        "fresh allocs",
        "bit-identical",
    ]);
    for p in runs {
        table.row(&[
            p.budget.to_string(),
            p.kv_budget_blocks.map_or("∞".into(), |b| b.to_string()),
            format!("{:.0}", p.run.tokens_per_sec),
            format!(
                "{:.2}",
                p.run.generated_tokens as f64 / p.run.steps.max(1) as f64
            ),
            format!("{:.1}", p.run.ttft_p99_us),
            p.preemptions.to_string(),
            format!("{:.1}%", p.preemption_fraction * 100.0),
            p.recompute_tokens.to_string(),
            p.fresh_allocations_delta.to_string(),
            p.run.bit_identical.to_string(),
        ]);
    }
    table
}

fn table_for(runs: &[Run]) -> Table {
    let mut table = Table::new(&[
        "mode",
        "seqs",
        "tokens/sec",
        "ttft p99 (us)",
        "padding",
        "steps",
        "tokens (got/want)",
        "bit-identical",
    ]);
    for run in runs {
        table.row(&[
            run.mode.to_string(),
            run.sequences.to_string(),
            format!("{:.0}", run.tokens_per_sec),
            format!("{:.1}", run.ttft_p99_us),
            format!("{:.1}%", run.padding_fraction * 100.0),
            run.steps.to_string(),
            format!("{}/{}", run.generated_tokens, run.expected_tokens),
            run.bit_identical.to_string(),
        ]);
    }
    table
}

fn scaling(runs: &[Run], label: &str) -> f64 {
    let at = |n: usize| {
        runs.iter()
            .find(|r| r.mode == label && r.sequences == n)
            .map_or(0.0, |r| r.tokens_per_sec)
    };
    at(32) / at(1).max(1.0)
}

fn main() {
    // One oracle over the largest request set; smaller sweep points use
    // prefixes of the same seeded workload.
    let largest = Workload::tiny_lm(*CONCURRENCY.iter().max().expect("non-empty sweep"));
    let oracle = oracle_streams(&largest);

    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &sequences in &CONCURRENCY {
        for (label, mode) in [
            ("continuous", BatchMode::Continuous),
            ("static-cohort", BatchMode::StaticCohort),
        ] {
            let (c, w) = run_point(mode, label, sequences, &oracle);
            cold.push(c);
            warm.push(w);
        }
    }
    table_for(&cold).print(
        "LLM decode-step serving on tiny-lm, cold start (simulated T4, \
         8 slots): unseen M buckets served on heuristic fallbacks",
    );
    table_for(&warm).print(
        "LLM decode-step serving on tiny-lm, warm (every bucket tuned \
         and hot-swapped): steady-state continuous vs pad-to-bucket",
    );
    println!(
        "\nwarm tokens/sec scaling 1 -> 32 sequences: continuous {:.2}x, static-cohort {:.2}x",
        scaling(&warm, "continuous"),
        scaling(&warm, "static-cohort")
    );

    // KV memory-pressure sweep: longer generations, shrinking block
    // budgets, its own oracle.
    let pressure_oracle = oracle_streams(&Workload::tiny_lm_pressure(PRESSURE_SEQUENCES));
    let mut pressure_cold = Vec::new();
    let mut pressure_warm = Vec::new();
    for &(label, budget) in &PRESSURE_BUDGETS {
        let (c, w) = pressure_point(label, budget, &pressure_oracle);
        pressure_cold.push(c);
        pressure_warm.push(w);
    }
    pressure_table(&pressure_warm).print(
        "KV governor under memory pressure, warm (tiny-lm, 32 sequences, \
         8 slots): preempt-and-recompute at shrinking block budgets",
    );
    // Goodput is gated on tokens per scheduler step, not tokens/sec:
    // step counts are fully deterministic (admission, watermark stalls,
    // preemption replays), while wall-clock rates inherit tuner
    // measurement noise that would make a CI ratio gate flaky.
    let goodput_ratio = {
        let at = |label: &str| {
            pressure_warm
                .iter()
                .find(|p| p.budget == label)
                .map_or(0.0, |p| {
                    p.run.generated_tokens as f64 / p.run.steps.max(1) as f64
                })
        };
        at("moderate") / at("unconstrained").max(1e-9)
    };
    println!(
        "\nwarm goodput (tokens/step) at the moderate budget: {:.2}x unconstrained",
        goodput_ratio
    );

    let json = format!(
        "{{\n  \"model\": \"tiny-lm\",\n  \"max_slots\": {MAX_SLOTS},\n  \
         \"concurrency\": [1, 8, 32],\n  \"cold\": [\n{}\n  ],\n  \
         \"warm\": [\n{}\n  ],\n  \
         \"warm_continuous_scaling_1_to_32\": {:.3},\n  \
         \"pressure\": {{\n  \"sequences\": {PRESSURE_SEQUENCES},\n  \
         \"cold\": [\n{}\n  ],\n  \"warm\": [\n{}\n  ],\n  \
         \"warm_moderate_goodput_ratio\": {:.3}\n  }}\n}}\n",
        json_rows(&cold),
        json_rows(&warm),
        scaling(&warm, "continuous"),
        pressure_json_rows(&pressure_cold),
        pressure_json_rows(&pressure_warm),
        goodput_ratio,
    );
    let out_dir = experiments_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("llm_serving.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_llm.json", &json);
}
