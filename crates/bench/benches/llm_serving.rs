//! Autoregressive LLM serving benchmark (ISSUE 9): decode-step
//! throughput of the continuous batcher vs. the legacy pad-to-bucket
//! static cohort, swept over concurrent sequence counts on the
//! simulated-GPU clock.
//!
//! Each sweep point runs twice on the same batcher: a **cold** pass
//! (unseen M buckets served on heuristic fallback engines while the
//! online tuner compiles in the background) and a **warm** pass after
//! `wait_tuned` (every bucket hot-swapped to its tuned engine — the
//! steady-state numbers CI gates on). Every pass is checked
//! token-for-token against a sequential oracle (the same model at
//! `max_slots = 1`, one sequence at a time): `lost_tokens` /
//! `duplicated_tokens` must be zero and the streams bit-identical, or
//! batching changed the math.
//!
//! Results print as tables and are emitted to
//! `target/experiments/llm_serving.json` and `BENCH_llm.json` at the
//! workspace root; CI gates on the continuous path scaling from 1 to 32
//! concurrent sequences and on token conservation.
//!
//! Run with: `cargo bench --bench llm_serving`

use bolt::BoltConfig;
use bolt_bench::{experiments_dir, write_bench_json, Table};
use bolt_gpu_sim::GpuArch;
use bolt_models::{sample_prompts, PromptLengths};
use bolt_serve::{BatchMode, ContinuousBatcher, LlmServeConfig, SequenceRequest};

const CONCURRENCY: [usize; 3] = [1, 8, 32];
const MAX_SLOTS: usize = 8;
const PROMPT_SEED: u64 = 42;

struct Workload {
    prompts: Vec<Vec<u32>>,
    max_new: Vec<usize>,
}

impl Workload {
    fn tiny_lm(sequences: usize) -> Workload {
        let prompts = sample_prompts(
            "tiny-lm",
            sequences,
            PromptLengths::uniform(4, 32),
            PROMPT_SEED,
        )
        .expect("tiny-lm in the zoo");
        // Ragged generation lengths: sequences retire at different
        // steps, which is where pad-to-bucket wastes flops.
        let max_new = (0..sequences).map(|i| 6 + i % 5).collect();
        Workload { prompts, max_new }
    }

    fn expected_tokens(&self) -> u64 {
        self.max_new.iter().map(|&n| n as u64).sum()
    }
}

struct Run {
    mode: &'static str,
    sequences: usize,
    tokens_per_sec: f64,
    ttft_p99_us: f64,
    padding_fraction: f64,
    steps: u64,
    expected_tokens: u64,
    generated_tokens: u64,
    lost_tokens: u64,
    duplicated_tokens: u64,
    bit_identical: bool,
}

fn batcher(max_slots: usize, mode: BatchMode) -> ContinuousBatcher {
    ContinuousBatcher::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
        LlmServeConfig {
            max_slots,
            mode,
            ..LlmServeConfig::default()
        },
    )
    .expect("tiny-lm engines")
}

fn submit(batcher: &mut ContinuousBatcher, workload: &Workload, upto: usize) {
    for (prompt, &max_new) in workload.prompts.iter().zip(&workload.max_new).take(upto) {
        batcher
            .submit(SequenceRequest {
                prompt: prompt.clone(),
                max_new_tokens: max_new,
                deadline_us: None,
            })
            .expect("valid request");
    }
}

/// One sequence at a time through a fresh single-slot batcher: the
/// ground truth every batched sweep point must reproduce bit-for-bit.
fn oracle_streams(workload: &Workload) -> Vec<Vec<u32>> {
    let mut oracle = batcher(1, BatchMode::Continuous);
    workload
        .prompts
        .iter()
        .zip(&workload.max_new)
        .map(|(prompt, &max_new)| {
            oracle
                .submit(SequenceRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: max_new,
                    deadline_us: None,
                })
                .expect("valid request");
            let mut done = oracle.run_to_completion();
            done.pop().expect("one sequence").tokens
        })
        .collect()
}

/// Snapshot of the cumulative batcher counters a pass is diffed against.
#[derive(Clone, Copy, Default)]
struct Baseline {
    sim_us: f64,
    generated: u64,
    steps: u64,
    real_flops: f64,
    launched_flops: f64,
}

fn baseline(batcher: &ContinuousBatcher) -> Baseline {
    let stats = batcher.stats();
    let metrics = batcher.metrics();
    Baseline {
        sim_us: batcher.sim_now_us(),
        generated: stats.generated_tokens,
        steps: stats.steps,
        real_flops: metrics.real_flops,
        launched_flops: metrics.launched_flops,
    }
}

/// Runs the workload once on `batcher` and reports the pass relative to
/// the counters at entry (so a warm pass excludes the cold pass).
fn run_pass(
    batcher: &mut ContinuousBatcher,
    label: &'static str,
    workload: &Workload,
    oracle: &[Vec<u32>],
) -> Run {
    let sequences = workload.prompts.len();
    let before = baseline(batcher);
    submit(batcher, workload, sequences);
    let mut results = batcher.run_to_completion();
    results.sort_by_key(|r| r.id);
    let after = baseline(batcher);

    let sim_us = (after.sim_us - before.sim_us).max(1.0);
    let generated = after.generated - before.generated;
    let launched = after.launched_flops - before.launched_flops;
    let real = after.real_flops - before.real_flops;

    let mut ttfts: Vec<f64> = results.iter().filter_map(|r| r.ttft_us).collect();
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite ttft"));
    let ttft_p99_us = ttfts
        .get(((ttfts.len() as f64 * 0.99).ceil() as usize).max(1) - 1)
        .copied()
        .unwrap_or(0.0);

    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut bit_identical = results.len() == sequences;
    for (i, seq) in results.iter().enumerate() {
        let expected = &oracle[i];
        lost += expected.len().saturating_sub(seq.tokens.len()) as u64;
        duplicated += seq.tokens.len().saturating_sub(expected.len()) as u64;
        bit_identical &= &seq.tokens == expected;
    }

    Run {
        mode: label,
        sequences,
        tokens_per_sec: generated as f64 * 1e6 / sim_us,
        ttft_p99_us,
        padding_fraction: if launched > 0.0 {
            ((launched - real) / launched).max(0.0)
        } else {
            0.0
        },
        steps: after.steps - before.steps,
        expected_tokens: workload.expected_tokens(),
        generated_tokens: generated,
        lost_tokens: lost,
        duplicated_tokens: duplicated,
        bit_identical,
    }
}

/// Cold pass, tuner drain, warm pass — same batcher, same workload.
fn run_point(
    mode: BatchMode,
    label: &'static str,
    sequences: usize,
    oracle: &[Vec<u32>],
) -> (Run, Run) {
    let workload = Workload::tiny_lm(sequences);
    let mut batcher = batcher(MAX_SLOTS.min(sequences), mode);
    let cold = run_pass(&mut batcher, label, &workload, oracle);
    assert!(
        batcher.wait_tuned(std::time::Duration::from_secs(60)),
        "online tuner drains between passes"
    );
    let warm = run_pass(&mut batcher, label, &workload, oracle);
    (cold, warm)
}

fn json_rows(runs: &[Run]) -> String {
    runs.iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"sequences\": {}, \"tokens_per_sec\": {:.1}, \
                 \"ttft_p99_us\": {:.1}, \"padding_fraction\": {:.4}, \"steps\": {}, \
                 \"expected_tokens\": {}, \"generated_tokens\": {}, \"lost_tokens\": {}, \
                 \"duplicated_tokens\": {}, \"bit_identical\": {}}}",
                r.mode,
                r.sequences,
                r.tokens_per_sec,
                r.ttft_p99_us,
                r.padding_fraction,
                r.steps,
                r.expected_tokens,
                r.generated_tokens,
                r.lost_tokens,
                r.duplicated_tokens,
                r.bit_identical
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn table_for(runs: &[Run]) -> Table {
    let mut table = Table::new(&[
        "mode",
        "seqs",
        "tokens/sec",
        "ttft p99 (us)",
        "padding",
        "steps",
        "tokens (got/want)",
        "bit-identical",
    ]);
    for run in runs {
        table.row(&[
            run.mode.to_string(),
            run.sequences.to_string(),
            format!("{:.0}", run.tokens_per_sec),
            format!("{:.1}", run.ttft_p99_us),
            format!("{:.1}%", run.padding_fraction * 100.0),
            run.steps.to_string(),
            format!("{}/{}", run.generated_tokens, run.expected_tokens),
            run.bit_identical.to_string(),
        ]);
    }
    table
}

fn scaling(runs: &[Run], label: &str) -> f64 {
    let at = |n: usize| {
        runs.iter()
            .find(|r| r.mode == label && r.sequences == n)
            .map_or(0.0, |r| r.tokens_per_sec)
    };
    at(32) / at(1).max(1.0)
}

fn main() {
    // One oracle over the largest request set; smaller sweep points use
    // prefixes of the same seeded workload.
    let largest = Workload::tiny_lm(*CONCURRENCY.iter().max().expect("non-empty sweep"));
    let oracle = oracle_streams(&largest);

    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &sequences in &CONCURRENCY {
        for (label, mode) in [
            ("continuous", BatchMode::Continuous),
            ("static-cohort", BatchMode::StaticCohort),
        ] {
            let (c, w) = run_point(mode, label, sequences, &oracle);
            cold.push(c);
            warm.push(w);
        }
    }
    table_for(&cold).print(
        "LLM decode-step serving on tiny-lm, cold start (simulated T4, \
         8 slots): unseen M buckets served on heuristic fallbacks",
    );
    table_for(&warm).print(
        "LLM decode-step serving on tiny-lm, warm (every bucket tuned \
         and hot-swapped): steady-state continuous vs pad-to-bucket",
    );
    println!(
        "\nwarm tokens/sec scaling 1 -> 32 sequences: continuous {:.2}x, static-cohort {:.2}x",
        scaling(&warm, "continuous"),
        scaling(&warm, "static-cohort")
    );

    let json = format!(
        "{{\n  \"model\": \"tiny-lm\",\n  \"max_slots\": {MAX_SLOTS},\n  \
         \"concurrency\": [1, 8, 32],\n  \"cold\": [\n{}\n  ],\n  \
         \"warm\": [\n{}\n  ],\n  \
         \"warm_continuous_scaling_1_to_32\": {:.3}\n}}\n",
        json_rows(&cold),
        json_rows(&warm),
        scaling(&warm, "continuous"),
    );
    let out_dir = experiments_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("llm_serving.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_llm.json", &json);
}
