//! Figure 10: end-to-end inference speed and tuning time on six
//! widely-used CNNs (batch 32, FP16, simulated Tesla T4).
//!
//! Paper claims: Bolt is **4.2× faster on VGG**, **1.5× on ResNet**,
//! **2.6× on RepVGG** (2.8× average), finishes tuning **within 20
//! minutes** per model while Ansor (900 trials × #tasks) takes **~12
//! hours** on average.

use bolt::{AnsorBackend, BoltCompiler, BoltConfig};
use bolt_bench::{fmt_seconds, Table};
use bolt_gpu_sim::GpuArch;
use bolt_graph::passes::PassManager;
use bolt_models::{model_by_name, FIGURE10_MODELS};

fn main() {
    let t4 = GpuArch::tesla_t4();
    let batch = 32;
    // The paper configures Ansor with the recommended 900 trials per task.
    let ansor = AnsorBackend::with_trials(&t4, 900);

    let mut table = Table::new(&[
        "model",
        "tasks",
        "Ansor (img/s)",
        "Bolt (img/s)",
        "speedup",
        "Ansor tuning",
        "Bolt tuning",
    ]);
    let mut speedups = Vec::new();

    for name in FIGURE10_MODELS {
        let info = model_by_name(name, batch);
        // Both backends consume the same deployed graph.
        let graph = PassManager::deployment().run(&info.graph).expect("passes");

        let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
        let model = compiler.compile(&graph).expect("bolt compiles");
        let bolt_time = model.time();
        let bolt_ips = bolt_time.images_per_sec(batch);

        let (ansor_time, tuning) = ansor.evaluate(&graph).expect("ansor evaluates");
        let ansor_ips = batch as f64 / (ansor_time.total_us / 1e6);

        let speedup = bolt_ips / ansor_ips;
        speedups.push((name, speedup));
        table.row(&[
            name.to_string(),
            tuning.tasks.len().to_string(),
            format!("{ansor_ips:.0}"),
            format!("{bolt_ips:.0}"),
            format!("{speedup:.1}x"),
            fmt_seconds(tuning.tuning_seconds),
            fmt_seconds(model.tuning.tuning_seconds),
        ]);
        println!(
            "{name}: Bolt {speedup:.1}x ({bolt_ips:.0} vs {ansor_ips:.0} img/s); \
             tuning {} vs {}",
            fmt_seconds(model.tuning.tuning_seconds),
            fmt_seconds(tuning.tuning_seconds)
        );
    }
    table.print("Figure 10: end-to-end inference speed and tuning time (batch 32, FP16)");
    table.write_csv("fig10_end_to_end");

    let avg = speedups.iter().map(|(_, s)| s).sum::<f64>() / speedups.len() as f64;
    println!("\naverage Bolt speedup over Ansor: {avg:.2}x (paper: 2.8x avg)");
    println!("paper per-family: 4.2x VGG, 1.5x ResNet, 2.6x RepVGG");
}
