//! Section 2.1 motivation: "existing auto-tuners spend days or weeks when
//! models have many different workloads, e.g., ResNet-152 and
//! Inception-V3" (AutoTVM: 10 hours on x86, 7 days on GPUs for ResNet-50
//! alone). This bench measures the task counts and tuning times on the
//! deep-model family — the workloads-scaling argument behind Figure 10b.

use bolt::{BoltCompiler, BoltConfig};
use bolt_ansor::{AnsorTuner, SECONDS_PER_TRIAL};
use bolt_bench::{fmt_seconds, Table};
use bolt_gpu_sim::GpuArch;
use bolt_graph::extract_workloads;
use bolt_graph::passes::PassManager;
use bolt_models::model_by_name;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let batch = 32;
    let mut table = Table::new(&[
        "model",
        "unique tasks",
        "Bolt tuning",
        "Ansor (900 trials/task)",
        "speedup",
        "Bolt (img/s)",
        "Ansor (img/s)",
    ]);

    for name in ["resnet-50", "resnet-101", "resnet-152", "inception-v3"] {
        let info = model_by_name(name, batch);
        let graph = PassManager::deployment().run(&info.graph).expect("passes");
        let tasks = extract_workloads(&graph).len();

        let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
        let model = compiler.compile(&graph).expect("compiles");
        let bolt_report = model.time();

        let tuner = AnsorTuner::with_trials(&t4, 900);
        let tuning = tuner.tune_graph(&graph);
        let backend = bolt::AnsorBackend::with_trials(&t4, 900);
        let ansor_report = backend.time_graph(&graph, &tuning).expect("timed");

        table.row(&[
            name.to_string(),
            tasks.to_string(),
            fmt_seconds(model.tuning.tuning_seconds),
            fmt_seconds(tuning.tuning_seconds),
            format!("{:.1}x", ansor_report.total_us / bolt_report.total_us),
            format!("{:.0}", bolt_report.images_per_sec(batch)),
            format!("{:.0}", batch as f64 / (ansor_report.total_us / 1e6)),
        ]);
        println!(
            "{name}: {tasks} tasks; Bolt {} vs Ansor {}",
            fmt_seconds(model.tuning.tuning_seconds),
            fmt_seconds(tuning.tuning_seconds)
        );
    }
    table.print("Motivation (Section 2.1): tuning time scales with unique workloads");
    table.write_csv("motivation_tuning_time");
    println!(
        "\npaper: AutoTVM needs ~7 days on GPUs for ResNet-50; Ansor at 900\n\
         trials/task needs {} for Inception-V3-class task counts; Bolt stays\n\
         in minutes because sample programs are pre-generated per architecture.",
        fmt_seconds(900.0 * 67.0 * SECONDS_PER_TRIAL)
    );
}
