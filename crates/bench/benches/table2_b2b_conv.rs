//! Table 2: persistent-kernel fusion of back-to-back Conv2Ds.
//!
//! The 3×3 convolutions come from the first layers of the RepVGG models;
//! each gets a same-channel 1×1 companion (stride 1, no padding). Each
//! conv carries BiasAdd+ReLU epilogues; the pair fuses into one
//! persistent kernel. Batch 32, FP16, simulated T4.
//!
//! Paper claim: speedups **1.10-2.02×** across the six rows.

use bolt_bench::{fmt_us, Table};
use bolt_cutlass::{B2bConvKernel, Epilogue};
use bolt_gpu_sim::GpuArch;
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{Activation, DType};

/// (hw, ic, oc, stride, paper speedup)
type Row = (usize, usize, usize, (usize, usize), f64);

fn rows() -> Vec<Row> {
    vec![
        (224, 3, 48, (2, 2), 1.10),
        (112, 48, 48, (2, 2), 1.41),
        (56, 48, 48, (1, 1), 1.87),
        (224, 3, 64, (2, 2), 1.24),
        (112, 64, 64, (2, 2), 1.12),
        (56, 64, 64, (1, 1), 2.02),
    ]
}

fn main() {
    let t4 = GpuArch::tesla_t4();
    let ep = Epilogue::bias_activation(Activation::ReLU, DType::F16);
    let batch = 32;

    let mut table = Table::new(&[
        "3x3 conv (H,W / IC,OC / stride)",
        "1x1 conv (H,W / IC,OC)",
        "residence",
        "w/o fuse",
        "w/ fuse",
        "speedup",
        "paper",
    ]);
    for (hw, ic, oc, stride, paper_x) in rows() {
        let conv0 = Conv2dProblem::new(batch, hw, hw, ic, oc, 3, 3, stride, (1, 1));
        let (oh, ow) = (conv0.out_h(), conv0.out_w());
        let conv1 = Conv2dProblem::new(batch, oh, ow, oc, oc, 1, 1, (1, 1), (0, 0));
        let kernel =
            B2bConvKernel::auto(&t4, conv0, conv1, ep, ep, DType::F16).expect("fusible pair");
        let fused = kernel.time(&t4).total_us;
        let unfused = kernel.unfused_time_us(&t4);
        let speedup = unfused / fused;
        table.row(&[
            format!("{hw}^2 / {ic},{oc} / {stride:?}"),
            format!("{oh}x{ow} / {oc},{oc}"),
            kernel.residence.to_string(),
            fmt_us(unfused),
            fmt_us(fused),
            format!("{speedup:.2}x"),
            format!("{paper_x:.2}x"),
        ]);
    }
    table.print("Table 2: back-to-back Conv2D persistent-kernel fusion (batch 32)");
    table.write_csv("table2_b2b_conv");
}
