//! Table 5: deepening RepVGG with 1×1 Conv2Ds (codesign principle 2 —
//! persistent kernels make 1×1 deepening cheap).
//!
//! Paper (200 epochs + simple augmentation):
//! A0 73.05 @ 7861, A1 74.75 @ 6253, B0 75.28 @ 4888;
//! Aug-A0 73.87 @ 6716, Aug-A1 75.52 @ 5241, Aug-B0 76.02 @ 4145 —
//! +0.74-0.82% top-1 for ~15% speed loss.

use bolt::{BoltCompiler, BoltConfig};
use bolt_bench::Table;
use bolt_gpu_sim::GpuArch;
use bolt_models::repvgg::RepVggVariant;
use bolt_models::{AccuracyModel, RepVggSpec, TrainRecipe};
use bolt_tensor::Activation;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let accuracy = AccuracyModel::default();
    let batch = 32;
    let rows: Vec<(RepVggSpec, f64, f64)> = vec![
        (RepVggSpec::original(RepVggVariant::A0), 73.05, 7861.0),
        (RepVggSpec::original(RepVggVariant::A1), 74.75, 6253.0),
        (RepVggSpec::original(RepVggVariant::B0), 75.28, 4888.0),
        (
            RepVggSpec::augmented(RepVggVariant::A0, Activation::ReLU),
            73.87,
            6716.0,
        ),
        (
            RepVggSpec::augmented(RepVggVariant::A1, Activation::ReLU),
            75.52,
            5241.0,
        ),
        (
            RepVggSpec::augmented(RepVggVariant::B0, Activation::ReLU),
            76.02,
            4145.0,
        ),
    ];

    let mut table = Table::new(&[
        "model",
        "top-1 (%)",
        "paper top-1",
        "speed (img/s)",
        "paper speed",
        "params (M)",
        "b2b fused kernels",
    ]);
    for (spec, paper_acc, paper_speed) in rows {
        let graph = spec.deploy_graph(batch);
        let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
        let model = compiler.compile(&graph).expect("compiles");
        let ips = model.time().images_per_sec(batch);
        let fused = model
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, bolt::StepKind::B2bConv { .. }))
            .count();
        let top1 = accuracy.top1(&spec, TrainRecipe::TABLE5);
        table.row(&[
            spec.name(),
            format!("{top1:.2}"),
            format!("{paper_acc:.2}"),
            format!("{ips:.0}"),
            format!("{paper_speed:.0}"),
            format!("{:.2}", spec.paper_params_m()),
            fused.to_string(),
        ]);
    }
    table.print("Table 5: RepVGG vs RepVGGAug (+1x1 convs), 200 epochs");
    table.write_csv("table5_deepen");
    println!("paper: +0.74-0.82% top-1, speed drops 15.3% on average");
}
