//! Table 1: persistent-kernel fusion of back-to-back GEMMs.
//!
//! Workloads extracted from recommendation models (DCNv2, DLRM); each
//! GEMM carries a ReLU epilogue and the pair fuses into one kernel using
//! RF- or shared-memory-resident persistent kernels, whichever profiles
//! faster. Baseline: Bolt with epilogue fusion only (two kernels).
//!
//! Paper claim: speedups **1.24× / 1.34× / 1.28× / 1.46×**.

use bolt_bench::{fmt_us, Table};
use bolt_cutlass::{B2bGemmKernel, BiasMode, Epilogue};
use bolt_gpu_sim::GpuArch;
use bolt_models::mlp::table1_gemm_pairs;
use bolt_tensor::{Activation, DType};

fn main() {
    let t4 = GpuArch::tesla_t4();
    let relu = Epilogue {
        beta: 0.0,
        bias: BiasMode::None,
        ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
    };
    let paper = [1.24, 1.34, 1.28, 1.46];

    let mut table = Table::new(&[
        "1st GEMM (M,N,K)",
        "2nd GEMM (M,N,K)",
        "residence",
        "w/o fuse",
        "w/ fuse",
        "speedup",
        "paper",
    ]);
    for ((g0, g1), paper_x) in table1_gemm_pairs().into_iter().zip(paper) {
        let kernel = B2bGemmKernel::auto(&t4, g0, g1, relu, relu).expect("fusible pair");
        let fused = kernel.time(&t4).total_us;
        let unfused = kernel.unfused_time_us(&t4);
        let speedup = unfused / fused;
        table.row(&[
            format!("{},{},{}", g0.m, g0.n, g0.k),
            format!("{},{},{}", g1.m, g1.n, g1.k),
            kernel.residence.to_string(),
            fmt_us(unfused),
            fmt_us(fused),
            format!("{speedup:.2}x"),
            format!("{paper_x:.2}x"),
        ]);
    }
    table.print("Table 1: back-to-back GEMM persistent-kernel fusion");
    table.write_csv("table1_b2b_gemm");
}
