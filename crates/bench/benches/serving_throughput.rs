//! Serving-layer benchmark: offered load vs achieved throughput for the
//! dynamic-batching server over two compiled MLP engines.
//!
//! An open-loop pacer submits requests at a fixed arrival rate; the
//! server batches, executes functionally, and prices batches on the GPU
//! simulator. For each load level we report achieved throughput, mean
//! batch size, and the latency distribution — the classic serving curve:
//! batching efficiency rises with load until admission control (bounded
//! queues + deadlines) starts shedding.
//!
//! Results print as a table and are emitted as JSON to
//! `target/experiments/serving_throughput.json`.
//!
//! Run with: `cargo bench --bench serving_throughput`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::BoltConfig;
use bolt_bench::{experiments_dir, fmt_us, Table};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{BoltServer, EngineRegistry, MetricsSnapshot, ServeConfig, ServeError};
use bolt_tensor::{DType, Tensor};

const MODELS: [&str; 2] = ["mlp-small", "mlp-large"];

fn sample(model: &str, seed: u64) -> Vec<Tensor> {
    let width = if model == "mlp-small" { 128 } else { 256 };
    vec![Tensor::randn(&[1, width], DType::F16, seed)]
}

struct LevelRun {
    offered_rps: f64,
    requests: usize,
    rejected_admission: u64,
    stats: MetricsSnapshot,
}

/// Open-loop arrival process: request `i` is due at `start + i/rate`;
/// the pacer sleeps until each due time, so late service does not slow
/// the arrival process down (the server must absorb or shed the load).
fn run_level(registry: &Arc<EngineRegistry>, offered_rps: f64) -> LevelRun {
    let server = BoltServer::start(
        Arc::clone(registry),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            batch_timeout: Duration::from_millis(1),
            queue_capacity: 512,
            default_deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        },
    );

    // ~0.5 s of offered traffic per level, bounded for very slow/fast rates.
    let requests = ((offered_rps * 0.5) as usize).clamp(100, 4000);
    let start = Instant::now();
    let mut rejected_admission = 0u64;
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let model = MODELS[i % MODELS.len()];
        match server.submit(model, sample(model, i as u64), None) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::QueueFull { .. }) => rejected_admission += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    for handle in &handles {
        handle.wait();
    }
    LevelRun {
        offered_rps,
        requests,
        rejected_admission,
        stats: server.shutdown(),
    }
}

fn main() {
    let registry = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
    ));
    for model in MODELS {
        registry
            .register_zoo(model, &[1, 2, 4, 8])
            .expect("zoo model registers");
    }

    let mut table = Table::new(&[
        "offered rps",
        "requests",
        "achieved rps",
        "mean batch",
        "p50",
        "p99",
        "completed",
        "shed",
        "queue full",
    ]);
    let mut json_levels = Vec::new();

    for offered in [250.0, 1_000.0, 4_000.0, 16_000.0] {
        let run = run_level(&registry, offered);
        let s = &run.stats;
        table.row(&[
            format!("{:.0}", run.offered_rps),
            run.requests.to_string(),
            format!("{:.0}", s.throughput_rps),
            format!("{:.2}", s.mean_batch),
            fmt_us(s.latency_p50_us),
            fmt_us(s.latency_p99_us),
            s.completed.to_string(),
            s.deadline_shed.to_string(),
            run.rejected_admission.to_string(),
        ]);
        json_levels.push(format!(
            concat!(
                "    {{\"offered_rps\": {:.1}, \"requests\": {}, \"achieved_rps\": {:.1},\n",
                "     \"mean_batch\": {:.3}, \"batches\": {}, \"completed\": {}, ",
                "\"deadline_shed\": {}, \"rejected_queue_full\": {},\n",
                "     \"latency_us\": {{\"mean\": {:.1}, \"p50\": {:.1}, \"p95\": {:.1}, ",
                "\"p99\": {:.1}, \"max\": {:.1}}},\n",
                "     \"sim_images_per_sec\": {:.1}}}"
            ),
            run.offered_rps,
            run.requests,
            s.throughput_rps,
            s.mean_batch,
            s.batches,
            s.completed,
            s.deadline_shed,
            run.rejected_admission,
            s.latency_mean_us,
            s.latency_p50_us,
            s.latency_p95_us,
            s.latency_p99_us,
            s.latency_max_us,
            s.sim_images_per_sec,
        ));
    }

    table.print(
        "Serving throughput: dynamic batching under open-loop load \
         (4 workers, max_batch 8, 1 ms batch timeout, 250 ms deadline)",
    );
    table.write_csv("serving_throughput");

    let json = format!(
        "{{\n  \"models\": [\"mlp-small\", \"mlp-large\"],\n  \"workers\": 4,\n  \
         \"max_batch\": 8,\n  \"levels\": [\n{}\n  ]\n}}\n",
        json_levels.join(",\n")
    );
    let dir = experiments_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("serving_throughput.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
}
