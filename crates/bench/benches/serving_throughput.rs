//! Serving-layer benchmark: offered load vs achieved throughput for the
//! dynamic-batching server over two compiled MLP engines.
//!
//! An open-loop pacer submits requests at a fixed arrival rate; the
//! server batches, executes functionally, and prices batches on the GPU
//! simulator. For each load level we report achieved throughput, mean
//! batch size, and the latency distribution — the classic serving curve:
//! batching efficiency rises with load until admission control (bounded
//! queues + deadlines) starts shedding.
//!
//! A second section isolates the execution-plan refactor: per-request
//! host latency of the prepacked slot executor (`ExecutionPlan::run`)
//! vs. the retained pre-refactor interpreter
//! (`ExecutionPlan::run_reference`), which repacks every constant and
//! clones every fetched intermediate on each request.
//!
//! Results print as tables and are emitted as JSON to
//! `target/experiments/serving_throughput.json` and `BENCH_serve.json`
//! at the workspace root.
//!
//! Run with: `cargo bench --bench serving_throughput`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::BoltConfig;
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_gpu_sim::GpuArch;
use bolt_serve::{BoltServer, EngineRegistry, MetricsSnapshot, ServeConfig, ServeError};
use bolt_tensor::{DType, Tensor};

const MODELS: [&str; 2] = ["mlp-small", "mlp-large"];

/// Models in the executor-comparison section (the load curve stays on
/// the MLP pair for comparability with earlier runs).
const EXECUTOR_MODELS: [&str; 3] = ["mlp-small", "mlp-large", "cnn-small"];

fn sample(model: &str, seed: u64) -> Vec<Tensor> {
    let dims: Vec<usize> = match model {
        "mlp-small" => vec![1, 128],
        "mlp-large" => vec![1, 256],
        "cnn-small" => vec![1, 3, 8, 8],
        other => panic!("unexpected model {other}"),
    };
    vec![Tensor::randn(&dims, DType::F16, seed)]
}

struct LevelRun {
    offered_rps: f64,
    requests: usize,
    rejected_admission: u64,
    stats: MetricsSnapshot,
}

/// Open-loop arrival process: request `i` is due at `start + i/rate`;
/// the pacer sleeps until each due time, so late service does not slow
/// the arrival process down (the server must absorb or shed the load).
fn run_level(registry: &Arc<EngineRegistry>, offered_rps: f64) -> LevelRun {
    let server = BoltServer::start(
        Arc::clone(registry),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            batch_timeout: Duration::from_millis(1),
            queue_capacity: 512,
            default_deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        },
    )
    .expect("valid serve config");

    // ~0.5 s of offered traffic per level, bounded for very slow/fast rates.
    let requests = ((offered_rps * 0.5) as usize).clamp(100, 4000);
    let start = Instant::now();
    let mut rejected_admission = 0u64;
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        let due = start + Duration::from_secs_f64(i as f64 / offered_rps);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let model = MODELS[i % MODELS.len()];
        match server.submit(model, sample(model, i as u64), None) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::QueueFull { .. }) => rejected_admission += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    for handle in &handles {
        handle.wait();
    }
    LevelRun {
        offered_rps,
        requests,
        rejected_admission,
        stats: server.shutdown(),
    }
}

struct ExecutorRow {
    model: &'static str,
    steps: usize,
    slot_us: f64,
    reference_us: f64,
    workspace: u64,
    total_values: u64,
}

/// Mean per-request host latency of the slot executor vs. the reference
/// interpreter on each serving model's batch-1 engine.
fn executor_comparison(registry: &Arc<EngineRegistry>) -> Vec<ExecutorRow> {
    let mut rows = Vec::new();
    for model in EXECUTOR_MODELS {
        let engines = registry.get(model).expect("registered above");
        let (_, plan) = engines.engine_for(1).expect("batch-1 engine registered");
        let input = sample(model, 42);
        // Warm both paths (first reference call may pack lazily).
        plan.run(&input).expect("run");
        plan.run_reference(&input).expect("run_reference");

        // Interleave the two paths so clock-frequency drift over the
        // measurement window lands on both sides equally.
        let iters = 300;
        let (mut slot_total, mut ref_total) = (0.0f64, 0.0f64);
        for _ in 0..iters {
            let start = Instant::now();
            plan.run(&input).expect("run");
            slot_total += start.elapsed().as_secs_f64();
            let start = Instant::now();
            plan.run_reference(&input).expect("run_reference");
            ref_total += start.elapsed().as_secs_f64();
        }
        let slot_us = slot_total * 1e6 / iters as f64;
        let reference_us = ref_total * 1e6 / iters as f64;

        rows.push(ExecutorRow {
            model,
            steps: plan.steps().len(),
            slot_us,
            reference_us,
            workspace: plan.workspace_bytes(),
            total_values: plan.total_value_bytes(),
        });
    }
    rows
}

struct BatchedRow {
    model: &'static str,
    batch: usize,
    batched_us: f64,
    reference_us: f64,
}

/// Mean per-batch latency of the batch-native `run_batched` (pack once
/// into pooled zero-padded buffers, run, slice) vs. the retained
/// stack/interpret/slice baseline `run_batched_reference`, on each
/// model's batch-8 engine at 6/8 occupancy (so the zero-padded partial
/// tail is exercised, as in real serving).
fn batched_comparison(registry: &Arc<EngineRegistry>) -> Vec<BatchedRow> {
    let mut rows = Vec::new();
    for model in EXECUTOR_MODELS {
        let engines = registry.get(model).expect("registered above");
        let (bucket, plan) = engines.engine_for(8).expect("batch-8 engine registered");
        let samples: Vec<Vec<Tensor>> = (0..6).map(|s| sample(model, 100 + s as u64)).collect();
        plan.run_batched(&samples).expect("run_batched");
        plan.run_batched(&samples).expect("run_batched warm");
        plan.run_batched_reference(&samples)
            .expect("run_batched_reference");

        // Interleaved for the same drift-cancellation reason as the
        // executor comparison above.
        let iters = 100;
        let (mut batched_total, mut ref_total) = (0.0f64, 0.0f64);
        for _ in 0..iters {
            let start = Instant::now();
            plan.run_batched(&samples).expect("run_batched");
            batched_total += start.elapsed().as_secs_f64();
            let start = Instant::now();
            plan.run_batched_reference(&samples)
                .expect("run_batched_reference");
            ref_total += start.elapsed().as_secs_f64();
        }
        let batched_us = batched_total * 1e6 / iters as f64;
        let reference_us = ref_total * 1e6 / iters as f64;

        rows.push(BatchedRow {
            model,
            batch: bucket,
            batched_us,
            reference_us,
        });
    }
    rows
}

fn main() {
    let registry = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig::default(),
    ));
    for model in MODELS {
        registry
            .register_zoo(model, &[1, 2, 4, 8])
            .expect("zoo model registers");
    }
    // cnn-small joins the executor sections only (batch-1 latency and
    // the batch-8 batched-path comparison), not the load curve.
    registry
        .register_zoo("cnn-small", &[1, 8])
        .expect("cnn registers");

    let mut table = Table::new(&[
        "offered rps",
        "requests",
        "achieved rps",
        "mean batch",
        "p50",
        "p99",
        "completed",
        "shed",
        "queue full",
    ]);
    let mut json_levels = Vec::new();

    for offered in [250.0, 1_000.0, 4_000.0, 16_000.0] {
        let run = run_level(&registry, offered);
        let s = &run.stats;
        table.row(&[
            format!("{:.0}", run.offered_rps),
            run.requests.to_string(),
            format!("{:.0}", s.throughput_rps),
            format!("{:.2}", s.mean_batch),
            fmt_us(s.latency_p50_us),
            fmt_us(s.latency_p99_us),
            s.completed.to_string(),
            s.deadline_shed.to_string(),
            run.rejected_admission.to_string(),
        ]);
        json_levels.push(format!(
            concat!(
                "    {{\"offered_rps\": {:.1}, \"requests\": {}, \"achieved_rps\": {:.1},\n",
                "     \"mean_batch\": {:.3}, \"batches\": {}, \"completed\": {}, ",
                "\"deadline_shed\": {}, \"rejected_queue_full\": {},\n",
                "     \"latency_us\": {{\"mean\": {:.1}, \"p50\": {:.1}, \"p95\": {:.1}, ",
                "\"p99\": {:.1}, \"max\": {:.1}}},\n",
                "     \"sim_images_per_sec\": {:.1}}}"
            ),
            run.offered_rps,
            run.requests,
            s.throughput_rps,
            s.mean_batch,
            s.batches,
            s.completed,
            s.deadline_shed,
            run.rejected_admission,
            s.latency_mean_us,
            s.latency_p50_us,
            s.latency_p95_us,
            s.latency_p99_us,
            s.latency_max_us,
            s.sim_images_per_sec,
        ));
    }

    table.print(
        "Serving throughput: dynamic batching under open-loop load \
         (4 workers, max_batch 8, 1 ms batch timeout, 250 ms deadline)",
    );
    table.write_csv("serving_throughput");

    // Per-request host cost: prepacked slot executor vs. the reference
    // interpreter that repacks constants and clones fetches per request.
    let executor = executor_comparison(&registry);
    let mut exec_table = Table::new(&[
        "model",
        "steps",
        "plan.run",
        "run_reference",
        "speedup",
        "workspace",
        "sum of values",
    ]);
    let mut json_exec = Vec::new();
    for row in &executor {
        exec_table.row(&[
            row.model.to_string(),
            row.steps.to_string(),
            fmt_us(row.slot_us),
            fmt_us(row.reference_us),
            format!("{:.2}x", row.reference_us / row.slot_us),
            format!("{} B", row.workspace),
            format!("{} B", row.total_values),
        ]);
        json_exec.push(format!(
            concat!(
                "    {{\"model\": \"{}\", \"steps\": {}, \"run_us\": {:.2}, ",
                "\"run_reference_us\": {:.2},\n     \"speedup\": {:.3}, ",
                "\"workspace_bytes\": {}, \"total_value_bytes\": {}}}"
            ),
            row.model,
            row.steps,
            row.slot_us,
            row.reference_us,
            row.reference_us / row.slot_us,
            row.workspace,
            row.total_values,
        ));
    }
    exec_table.print(
        "Execution plan: prepacked slot executor vs. per-request repacking \
         interpreter (batch-1 engines, mean of 300 requests)",
    );
    exec_table.write_csv("serving_executor");

    // Per-batch host cost: the batch-native packed path vs. the old
    // stack/interpret/slice baseline.
    let batched = batched_comparison(&registry);
    let mut batch_table = Table::new(&["model", "bucket", "run_batched", "reference", "speedup"]);
    let mut json_batched = Vec::new();
    for row in &batched {
        batch_table.row(&[
            row.model.to_string(),
            row.batch.to_string(),
            fmt_us(row.batched_us),
            fmt_us(row.reference_us),
            format!("{:.2}x", row.reference_us / row.batched_us),
        ]);
        json_batched.push(format!(
            concat!(
                "    {{\"model\": \"{}\", \"bucket\": {}, \"run_batched_us\": {:.2}, ",
                "\"reference_us\": {:.2}, \"speedup\": {:.3}}}"
            ),
            row.model,
            row.batch,
            row.batched_us,
            row.reference_us,
            row.reference_us / row.batched_us,
        ));
    }
    batch_table.print(
        "Batched path: batch-native run_batched vs. stack/interpret/slice \
         baseline (batch-8 engines at 6/8 occupancy, mean of 100 batches)",
    );
    batch_table.write_csv("serving_batched");

    let json = format!(
        "{{\n  \"models\": [\"mlp-small\", \"mlp-large\"],\n  \"workers\": 4,\n  \
         \"max_batch\": 8,\n  \"levels\": [\n{}\n  ],\n  \"executor\": [\n{}\n  ],\n  \
         \"batched\": [\n{}\n  ]\n}}\n",
        json_levels.join(",\n"),
        json_exec.join(",\n"),
        json_batched.join(",\n")
    );
    let dir = experiments_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("serving_throughput.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    // Headline serving result at the workspace root for CI.
    write_bench_json("BENCH_serve.json", &json);
}
