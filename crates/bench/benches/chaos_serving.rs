//! Chaos serving benchmark: what hardware-native serving costs when the
//! world misbehaves. For each of three fixed seeds, a cold online server
//! takes a request storm while the seeded fault plan injects 30% compile
//! failures, a mid-batch worker panic, worker/tuner kills, and slow
//! batches — on top of a pre-corrupted autotune cache. We report, per
//! seed:
//!
//! * **availability** — completed requests / accepted requests (every
//!   non-completion is a typed rejection, never a hang),
//! * **p50/p99 latency under faults** — simulated end-to-end time of the
//!   completed requests, and
//! * **time-to-recovery** — wall-clock from the instant the fault plan
//!   is uninstalled until every `(model, bucket)` key is `Ready` and no
//!   circuit breaker is open (the self-healing loop: backoff retries +
//!   half-open probes). The mean across seeds is the headline MTTR.
//!
//! Results print as a table and are emitted to
//! `target/experiments/chaos_serving.json` and `BENCH_chaos.json` at the
//! workspace root.
//!
//! Run with: `cargo bench --bench chaos_serving --features chaos`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bolt::faults::{self, ChaosConfig};
use bolt::BoltConfig;
use bolt_bench::{experiments_dir, fmt_us, write_bench_json, Table};
use bolt_gpu_sim::GpuArch;
use bolt_models::zoo::sample_inputs;
use bolt_serve::{BoltServer, EngineRegistry, OnlineConfig, Outcome, ServeConfig};

const SEEDS: [u64; 3] = [7, 42, 20260806];
const REQUESTS: usize = 200;
const CLIENTS: usize = 4;

struct Row {
    seed: u64,
    accepted: u64,
    completed: u64,
    rejected: u64,
    availability: f64,
    p50_us: f64,
    p99_us: f64,
    recovery_ms: f64,
    compiles_failed: u64,
    worker_restarts: u64,
    tuner_restarts: u64,
}

fn chaos_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        compile_fail_ratio: 0.3,
        batch_panics: vec![2],
        worker_kills: vec![5],
        tuner_kills: vec![1],
        batch_stall_ratio: 0.05,
        batch_stall: Duration::from_micros(200),
        ..ChaosConfig::default()
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_seed(seed: u64) -> Row {
    let dir = std::env::temp_dir().join(format!("bolt-chaos-bench-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("autotune.tune");
    // The server warm-starts against a corrupted cache: load quarantines
    // it and the storm rebuilds a valid one.
    std::fs::write(&cache, b"bolt-autotune-cache v2 arch=sm75\ngarbage entry\n").expect("corrupt");

    let reg = Arc::new(EngineRegistry::new(
        GpuArch::tesla_t4(),
        BoltConfig {
            cache_path: Some(cache),
            ..BoltConfig::default()
        },
    ));
    reg.register_zoo_dynamic("mlp-small").expect("register");

    let guard = faults::install(chaos_config(seed));
    let server = Arc::new(
        BoltServer::start(
            Arc::clone(&reg),
            ServeConfig {
                workers: 2,
                max_batch: 8,
                batch_timeout: Duration::from_millis(1),
                queue_capacity: 1024,
                online: Some(OnlineConfig {
                    tuner_threads: 2,
                    retry_backoff: Duration::from_millis(5),
                    retry_backoff_max: Duration::from_millis(50),
                    breaker_threshold: 4,
                    breaker_cooldown: Duration::from_millis(20),
                    ..OnlineConfig::default()
                }),
                ..Default::default()
            },
        )
        .expect("valid serve config"),
    );

    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    (0..REQUESTS / CLIENTS)
                        .map(|i| {
                            let sample_seed = (t * 1000 + i) as u64;
                            server
                                .submit(
                                    "mlp-small",
                                    sample_inputs("mlp-small", sample_seed).unwrap(),
                                    None,
                                )
                                .expect("admitted")
                                .wait()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });

    let manager = server.online().expect("online mode");
    assert!(manager.wait_idle(Duration::from_secs(300)), "tuner drains");

    // Faults stop; the clock on recovery starts. Traffic (re-)requests
    // failed buckets, backoff gates retries, breaker probes half-open —
    // time until everything is Ready again is the recovery time.
    let recovery_started = Instant::now();
    drop(guard);
    loop {
        let snap = manager.snapshot();
        if snap.failed_buckets.is_empty() && snap.tripped_models.is_empty() {
            break;
        }
        assert!(
            recovery_started.elapsed() < Duration::from_secs(120),
            "recovery must converge, still failed: {:?}",
            snap.failed_buckets
        );
        std::thread::sleep(Duration::from_millis(10));
        let engines = reg.get("mlp-small").expect("registered");
        for failed in &snap.failed_buckets {
            let _ = manager.acquire(&engines, failed.bucket);
        }
        assert!(manager.wait_idle(Duration::from_secs(300)));
    }
    let recovery_ms = recovery_started.elapsed().as_secs_f64() * 1e3;

    let mut latencies: Vec<f64> = Vec::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for outcome in &outcomes {
        match outcome {
            Outcome::Completed(response) => {
                completed += 1;
                latencies.push(response.latency.total_us);
            }
            Outcome::Rejected { .. } => rejected += 1,
            Outcome::DeadlineExceeded { .. } => unreachable!("no deadlines set"),
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let stats = Arc::try_unwrap(server).expect("clients joined").shutdown();
    assert_eq!(stats.resolved(), stats.accepted, "zero lost requests");
    let online = stats.online.expect("online counters");
    let _ = std::fs::remove_dir_all(&dir);
    Row {
        seed,
        accepted: stats.accepted,
        completed,
        rejected,
        availability: completed as f64 / stats.accepted.max(1) as f64 * 100.0,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        recovery_ms,
        compiles_failed: online.compiles_failed,
        worker_restarts: stats.worker_restarts,
        tuner_restarts: online.tuner_restarts,
    }
}

fn json_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\"seed\": {}, \"accepted\": {}, \"completed\": {}, ",
                    "\"rejected\": {}, \"availability_pct\": {:.2},\n     ",
                    "\"p50_us\": {:.3}, \"p99_us\": {:.3}, \"recovery_ms\": {:.2}, ",
                    "\"compiles_failed\": {}, \"worker_restarts\": {}, \"tuner_restarts\": {}}}"
                ),
                row.seed,
                row.accepted,
                row.completed,
                row.rejected,
                row.availability,
                row.p50_us,
                row.p99_us,
                row.recovery_ms,
                row.compiles_failed,
                row.worker_restarts,
                row.tuner_restarts,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    // Injected panics are the benchmark working as intended; keep their
    // backtraces out of the report. Real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let rows: Vec<Row> = SEEDS.iter().map(|&seed| run_seed(seed)).collect();

    let mut table = Table::new(&[
        "seed",
        "accepted",
        "completed",
        "availability",
        "p50",
        "p99",
        "recovery",
        "failed compiles",
        "restarts (w/t)",
    ]);
    for row in &rows {
        table.row(&[
            row.seed.to_string(),
            row.accepted.to_string(),
            row.completed.to_string(),
            format!("{:.2}%", row.availability),
            fmt_us(row.p50_us),
            fmt_us(row.p99_us),
            format!("{:.0} ms", row.recovery_ms),
            row.compiles_failed.to_string(),
            format!("{}/{}", row.worker_restarts, row.tuner_restarts),
        ]);
    }
    table.print(
        "Serving under seeded faults: 30% compile failures, worker panic \
         + kills, tuner kill, slow batches, corrupted autotune cache \
         (200 requests per seed)",
    );

    let mean_availability = rows.iter().map(|r| r.availability).sum::<f64>() / rows.len() as f64;
    let mean_recovery_ms = rows.iter().map(|r| r.recovery_ms).sum::<f64>() / rows.len() as f64;
    let worst_p99 = rows.iter().map(|r| r.p99_us).fold(0.0, f64::max);
    println!(
        "\nmean availability {mean_availability:.2}%, mean time-to-recovery \
         {mean_recovery_ms:.0} ms, worst p99 under faults {}",
        fmt_us(worst_p99)
    );

    let json = format!(
        "{{\n  \"seeds\": [7, 42, 20260806],\n  \"requests_per_seed\": {REQUESTS},\n  \
         \"runs\": [\n{}\n  ],\n  \"mean_availability_pct\": {:.2},\n  \
         \"mean_recovery_ms\": {:.2},\n  \"worst_p99_us\": {:.3}\n}}\n",
        json_rows(&rows),
        mean_availability,
        mean_recovery_ms,
        worst_p99,
    );
    let out_dir = experiments_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("chaos_serving.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    }
    write_bench_json("BENCH_chaos.json", &json);
}
