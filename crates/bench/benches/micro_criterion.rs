//! Criterion micro-benchmarks of the reproduction's own machinery: how
//! fast the simulator, profiler, tuner and functional executors run on
//! the host CPU. These guard against regressions in the library itself
//! (they do not reproduce paper numbers — the paper benches do).

use criterion::{criterion_group, criterion_main, Criterion};

use bolt::BoltProfiler;
use bolt_ansor::{measure_schedule, BoostedStumps, GpuSchedule};
use bolt_cutlass::{Epilogue, GemmConfig, GemmKernel, GemmProblem};
use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile};
use bolt_graph::Workload;
use bolt_tensor::{DType, Tensor};

fn bench_simulator(c: &mut Criterion) {
    let t4 = GpuArch::tesla_t4();
    let profile = KernelProfile::memory_only("x", 1e8);
    c.bench_function("simulate_kernel", |b| {
        b.iter(|| std::hint::black_box(simulate_kernel(&t4, &profile)))
    });
}

fn bench_profiler(c: &mut Criterion) {
    let t4 = GpuArch::tesla_t4();
    c.bench_function("profile_gemm_30_candidates", |b| {
        b.iter(|| {
            // Fresh profiler each iteration so the cache doesn't short-circuit.
            let profiler = BoltProfiler::new(&t4, 30);
            std::hint::black_box(profiler.profile_gemm(
                &GemmProblem::fp16(1280, 3072, 768),
                &Epilogue::linear(DType::F16),
            ))
        })
    });
}

fn bench_ansor_measure(c: &mut Criterion) {
    let t4 = GpuArch::tesla_t4();
    let workload = Workload::Gemm {
        m: 2048,
        n: 2048,
        k: 2048,
    };
    let schedule = GpuSchedule {
        block_m: 64,
        block_n: 64,
        tile_k: 16,
        thread_m: 8,
        thread_n: 8,
        use_smem: true,
        vectorize: 4,
        unroll: 512,
    };
    c.bench_function("ansor_measure_schedule", |b| {
        b.iter(|| std::hint::black_box(measure_schedule(&t4, &workload, &schedule)))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..512)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, i as f64])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + x[1]).collect();
    c.bench_function("boosted_stumps_fit_512x64", |b| {
        b.iter(|| std::hint::black_box(BoostedStumps::fit(&xs, &ys, 64, 0.3)))
    });
}

fn bench_functional_gemm(c: &mut Criterion) {
    let problem = GemmProblem::fp16(64, 64, 64);
    let kernel = GemmKernel::new(
        problem,
        GemmConfig::turing_default(),
        Epilogue::linear(DType::F16),
    );
    let a = Tensor::randn(&[64, 64], DType::F16, 1);
    let b_op = Tensor::randn(&[64, 64], DType::F16, 2);
    c.bench_function("functional_tiled_gemm_64", |b| {
        b.iter(|| std::hint::black_box(kernel.run(&a, &b_op, None).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulator, bench_profiler, bench_ansor_measure, bench_cost_model, bench_functional_gemm
}
criterion_main!(benches);
