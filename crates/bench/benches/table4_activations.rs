//! Table 4: RepVGG-A0 with different activation functions (codesign
//! principle 1 — epilogue fusion makes activations nearly free).
//!
//! Paper (120 epochs + simple augmentation):
//! ReLU 72.31% @ 5909 img/s, GELU 72.38% @ 5645, Hardswish 72.98% @ 5713,
//! Softplus 72.57% @ 5453 — even Softplus costs only 7.7% speed.

use bolt::{BoltCompiler, BoltConfig};
use bolt_bench::Table;
use bolt_gpu_sim::GpuArch;
use bolt_models::repvgg::RepVggVariant;
use bolt_models::{AccuracyModel, RepVggSpec, TrainRecipe};
use bolt_tensor::Activation;

fn main() {
    let t4 = GpuArch::tesla_t4();
    let accuracy = AccuracyModel::default();
    let batch = 32;
    let paper: [(Activation, f64, f64); 4] = [
        (Activation::ReLU, 72.31, 5909.0),
        (Activation::Gelu, 72.38, 5645.0),
        (Activation::Hardswish, 72.98, 5713.0),
        (Activation::Softplus, 72.57, 5453.0),
    ];

    let mut table = Table::new(&[
        "activation",
        "top-1 (%)",
        "paper top-1",
        "speed (img/s)",
        "paper speed",
        "speed vs relu",
    ]);
    let mut relu_ips = 0.0;
    for (act, paper_acc, paper_speed) in paper {
        let spec = RepVggSpec {
            activation: act,
            ..RepVggSpec::original(RepVggVariant::A0)
        };
        let graph = spec.deploy_graph(batch);
        let compiler = BoltCompiler::new(t4.clone(), BoltConfig::default());
        let model = compiler.compile(&graph).expect("compiles");
        let ips = model.time().images_per_sec(batch);
        if act == Activation::ReLU {
            relu_ips = ips;
        }
        let top1 = accuracy.top1(&spec, TrainRecipe::TABLE4);
        table.row(&[
            act.to_string(),
            format!("{top1:.2}"),
            format!("{paper_acc:.2}"),
            format!("{ips:.0}"),
            format!("{paper_speed:.0}"),
            format!("{:+.1}%", 100.0 * (ips / relu_ips - 1.0)),
        ]);
    }
    table.print("Table 4: RepVGG-A0 activation sweep (accuracy via calibrated proxy)");
    table.write_csv("table4_activations");
    println!("paper: Hardswish +0.67% top-1; Softplus costs only 7.7% speed");
}
