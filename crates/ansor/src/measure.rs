//! Pricing auto-tuned schedules on the simulator ("on-device
//! measurement").
//!
//! An Ansor trial compiles the sampled program and runs it on the device.
//! Here the device is `bolt-gpu-sim`; the translation from a
//! [`GpuSchedule`] to a [`KernelProfile`] encodes what Ansor-generated
//! CUDA can and cannot do:
//!
//! * **CUDA-core pipeline only.** Auto-scheduler codegen cannot emit
//!   tensor-core MMA intrinsics (the paper's core observation), so all
//!   arithmetic is priced on the FMA pipeline.
//! * **Codegen efficiency ceiling.** Generated inner loops (no hand-tuned
//!   HFMA2 dual-issue, extra predicates and index math) top out at
//!   [`ANSOR_CODEGEN_EFFICIENCY_CAP`] of the FMA pipeline peak — the
//!   constant is calibrated so the best FP16 schedules reach ~9 TFLOPS on
//!   the simulated T4, ≈14% of cuBLAS (Figure 1 reports <20%).

use bolt_gpu_sim::{
    simulate_kernel, BlockResources, GpuArch, KernelProfile, KernelTime, PipelineFlops,
};
use bolt_graph::Workload;
use bolt_tensor::DType;

use crate::features::workload_mnk;
use crate::schedule::GpuSchedule;

/// Fraction of the CUDA-core pipeline peak the best auto-generated inner
/// loop achieves (see module docs).
pub const ANSOR_CODEGEN_EFFICIENCY_CAP: f64 = 0.45;

/// Simulated wall-clock cost of one tuning trial in seconds: program
/// generation + NVCC compilation + on-device measurement, matching the
/// ~1-1.5 s/trial of AutoTVM/Ansor in practice.
pub const SECONDS_PER_TRIAL: f64 = 1.3;

/// Builds the kernel profile of an auto-tuned schedule for `workload`.
pub fn schedule_profile(
    arch: &GpuArch,
    workload: &Workload,
    schedule: &GpuSchedule,
) -> KernelProfile {
    let (m, n, k) = workload_mnk(workload);
    let batch = crate::features::workload_batch(workload);
    let elt = 2.0_f64; // FP16
    let grid_m = m.div_ceil(schedule.block_m);
    let grid_n = n.div_ceil(schedule.block_n);
    let grid = (batch * grid_m * grid_n) as u64;

    let macs = (m * n * k) as f64 * batch as f64;
    let flops = 2.0 * macs;

    // --- Main-loop efficiency ---------------------------------------------
    // Vectorization quality (HFMA2 needs vec >= 2; full rate at 4+).
    let vec_factor: f64 = match schedule.vectorize {
        1 => 0.55,
        2 => 0.8,
        _ => 1.0,
    };
    // Unrolling hides loop overhead.
    let unroll_factor: f64 = match schedule.unroll {
        0 => 0.8,
        16 => 0.92,
        _ => 1.0,
    };
    // Per-thread tile: too small starves ILP, too large spills registers.
    let tile = (schedule.thread_m * schedule.thread_n) as f64;
    let tile_factor = (tile.sqrt() / 8.0).min(1.0) * if tile > 128.0 { 0.7 } else { 1.0 };
    // Without shared-memory staging, operands stream from L2/DRAM.
    let smem_factor = if schedule.use_smem { 1.0 } else { 0.45 };
    // Boundary waste.
    let util_m = m as f64 / (grid_m * schedule.block_m) as f64;
    let util_n = n as f64 / (grid_n * schedule.block_n) as f64;
    let k_fill = {
        let iters = (k as f64 / schedule.tile_k as f64).max(1.0);
        iters / (iters + 2.0)
    };
    let mainloop_efficiency = ANSOR_CODEGEN_EFFICIENCY_CAP
        * vec_factor
        * unroll_factor
        * tile_factor
        * smem_factor
        * util_m
        * util_n
        * k_fill;

    // --- Memory traffic ------------------------------------------------------
    // Per-block operand traffic with an unswizzled wave (poor L2 reuse vs
    // the templated kernels' swizzled grids).
    let compulsory = batch as f64 * elt * (m * k + k * n) as f64;
    let block_traffic = batch as f64 * elt * ((grid_n * m * k) as f64 + (grid_m * k * n) as f64);
    let wave_blocks = (arch.sm_count as f64 * 2.0).max(1.0);
    let leak = (3.0 / wave_blocks.sqrt()).min(1.0);
    let mut dram_read = compulsory + (block_traffic - compulsory).max(0.0) * leak;
    // Conv workloads re-read halos; generated conv code caches them worse
    // than the templated implicit-GEMM kernels.
    if let Workload::Conv2d { kernel, .. } = workload {
        let taps = (kernel.0 * kernel.1) as f64;
        let act = compulsory.min(batch as f64 * elt * (m * k) as f64);
        dram_read += act * (taps - 1.0) * 0.06;
    }
    let dram_write = batch as f64 * (m * n) as f64 * elt;

    let smem_bytes = if schedule.use_smem {
        2.0 * macs
            * elt
            * (1.0 / schedule.block_m as f64 + 1.0 / schedule.block_n as f64)
            * (schedule.block_m * schedule.block_n) as f64
            / (schedule.threads() as f64 * tile)
    } else {
        0.0
    };

    // Ansor tunes in the model's native layout; vectorized global accesses
    // are limited by the schedule's vector width and by the contiguous
    // extent of the output/B matrices.
    let alignment = schedule
        .vectorize
        .min(bolt_gpu_sim::memory::max_alignment(DType::F16, n))
        .min(8);

    KernelProfile {
        name: format!("ansor_{workload:?}"),
        grid_blocks: grid,
        block: BlockResources::new(
            schedule.threads() as u32,
            schedule.regs_per_thread() as u32,
            schedule.smem_bytes() as u32,
        ),
        flops: PipelineFlops {
            tensor_core: 0.0,
            cuda_core: flops,
            sfu: 0.0,
        },
        dram_read_bytes: dram_read,
        dram_write_bytes: dram_write,
        smem_bytes,
        dtype: DType::F16,
        alignment_elems: alignment,
        bank_conflict_ways: if schedule.use_smem { 1.3 } else { 1.0 },
        mainloop_efficiency,
        // Generated code double-buffers at best; no cp.async pipelining.
        pipelined_overlap: 0.0,
    }
}

/// Simulated execution time of a schedule ("one on-device measurement").
pub fn measure_schedule(arch: &GpuArch, workload: &Workload, schedule: &GpuSchedule) -> KernelTime {
    simulate_kernel(arch, &schedule_profile(arch, workload, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    fn good_schedule() -> GpuSchedule {
        GpuSchedule {
            block_m: 64,
            block_n: 64,
            tile_k: 16,
            thread_m: 8,
            thread_n: 8,
            use_smem: true,
            vectorize: 4,
            unroll: 512,
        }
    }

    #[test]
    fn best_case_fp16_gemm_lands_under_20pct_of_tensor_cores() {
        let w = Workload::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let t = measure_schedule(&t4(), &w, &good_schedule());
        let tflops = 2.0 * 4096f64.powi(3) / (t.total_us * 1e6);
        assert!(
            tflops > 4.0 && tflops < 13.0,
            "Ansor-class FP16 GEMM should land at 5-13 TFLOPS on T4, got {tflops:.1}"
        );
    }

    #[test]
    fn schedule_quality_orders_sensibly() {
        let w = Workload::Gemm {
            m: 2048,
            n: 2048,
            k: 2048,
        };
        let good = measure_schedule(&t4(), &w, &good_schedule());
        let mut bad_sched = good_schedule();
        bad_sched.vectorize = 1;
        bad_sched.use_smem = false;
        bad_sched.thread_m = 1;
        bad_sched.thread_n = 2;
        let bad = measure_schedule(&t4(), &w, &bad_sched);
        assert!(
            bad.total_us > good.total_us * 2.0,
            "{} vs {}",
            bad.total_us,
            good.total_us
        );
    }

    #[test]
    fn random_schedules_are_measurable() {
        // Structurally valid schedules may still fail to launch (occupancy
        // zero) — a failed trial, priced as infinite, exactly like a real
        // on-device measurement error. Most must succeed, none may be NaN.
        let mut rng = StdRng::seed_from_u64(11);
        let w = Workload::Gemm {
            m: 1280,
            n: 768,
            k: 768,
        };
        let mut finite = 0;
        for _ in 0..50 {
            let s = GpuSchedule::random_valid(&mut rng);
            let t = measure_schedule(&t4(), &w, &s);
            assert!(!t.total_us.is_nan() && t.total_us > 0.0);
            if t.total_us.is_finite() {
                finite += 1;
            }
        }
        assert!(finite > 35, "only {finite}/50 schedules launchable");
    }

    #[test]
    fn conv_measurement_includes_halo_penalty() {
        let conv = Workload::Conv2d {
            n: 32,
            h: 56,
            w: 56,
            c: 64,
            k: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        let gemm_equiv = {
            let (m, n, k) = workload_mnk(&conv);
            Workload::Gemm { m, n, k }
        };
        let s = good_schedule();
        let pc = schedule_profile(&t4(), &conv, &s);
        let pg = schedule_profile(&t4(), &gemm_equiv, &s);
        assert!(pc.dram_read_bytes > pg.dram_read_bytes);
    }
}
