//! Feature extraction for the learned cost model.
//!
//! Ansor featurizes the generated loop nest (arithmetic intensity, touched
//! memory, vectorization, parallelism, ...) and regresses measured
//! throughput. We extract the analogous features from a
//! ([`GpuSchedule`], workload) pair.

use bolt_graph::Workload;

use crate::schedule::GpuSchedule;

/// Number of features produced by [`featurize`].
pub const NUM_FEATURES: usize = 12;

/// Extracts the feature vector of a schedule on a workload.
pub fn featurize(workload: &Workload, schedule: &GpuSchedule) -> [f64; NUM_FEATURES] {
    let (m, n, k) = workload_mnk(workload);
    let batch = workload_batch(workload) as f64;
    let threads = schedule.threads() as f64;
    let grid = (batch
        * (m as f64 / schedule.block_m as f64).ceil()
        * (n as f64 / schedule.block_n as f64).ceil())
    .max(1.0);
    [
        (schedule.block_m as f64).log2(),
        (schedule.block_n as f64).log2(),
        (schedule.tile_k as f64).log2(),
        (schedule.thread_m * schedule.thread_n) as f64,
        threads.log2(),
        grid.log2(),
        if schedule.use_smem { 1.0 } else { 0.0 },
        (schedule.vectorize as f64).log2(),
        (schedule.unroll.max(1) as f64).log2(),
        schedule.regs_per_thread() as f64 / 255.0,
        // Tile waste fractions.
        m as f64 / ((m as f64 / schedule.block_m as f64).ceil() * schedule.block_m as f64),
        (k as f64).log2(),
    ]
}

/// The implicit GEMM dimensions of a workload (per batch entry).
pub fn workload_mnk(workload: &Workload) -> (usize, usize, usize) {
    match *workload {
        Workload::Gemm { m, n, k } | Workload::BatchedGemm { m, n, k, .. } => (m, n, k),
        Workload::Conv2d { .. } => {
            let p = workload.to_conv_problem().expect("conv workload");
            p.implicit_gemm_mnk()
        }
    }
}

/// The batch count of a workload (1 unless strided-batched).
pub fn workload_batch(workload: &Workload) -> usize {
    match *workload {
        Workload::BatchedGemm { batch, .. } => batch,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn features_are_finite_and_distinct() {
        let w = Workload::Gemm {
            m: 1024,
            n: 1024,
            k: 512,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let a = GpuSchedule::random_valid(&mut rng);
        let b = GpuSchedule::random_valid(&mut rng);
        let fa = featurize(&w, &a);
        let fb = featurize(&w, &b);
        assert!(fa.iter().all(|v| v.is_finite()));
        assert_ne!(fa, fb);
    }

    #[test]
    fn conv_workload_maps_to_implicit_gemm() {
        let w = Workload::Conv2d {
            n: 32,
            h: 56,
            w: 56,
            c: 64,
            k: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        let (m, n, k) = workload_mnk(&w);
        assert_eq!(m, 32 * 56 * 56);
        assert_eq!(n, 64);
        assert_eq!(k, 3 * 3 * 64);
    }
}
