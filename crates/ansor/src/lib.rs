#![warn(missing_docs)]
//! # bolt-ansor
//!
//! A search-based auto-tuner in the style of Ansor (Zheng et al., OSDI
//! 2020) — the baseline of every comparison in the Bolt paper.
//!
//! Ansor treats the device as an opaque cost model: it samples tensor
//! programs from a large schedule space, measures them on the hardware,
//! learns a cost model from the measurements, and evolves the population
//! toward predicted-fast programs. Two consequences — the premises of the
//! Bolt paper — are faithfully reproduced here:
//!
//! 1. **No hardware-native performance.** The generated CUDA kernels use
//!    the ordinary FMA pipeline; they cannot emit tensor-core MMA
//!    instructions, so FP16 GEMMs top out well below 20% of cuBLAS speed
//!    (Figure 1). The schedules in [`schedule`] therefore price on
//!    [`Pipeline::CudaCore`](bolt_gpu_sim::Pipeline), with a codegen
//!    efficiency ceiling documented at
//!    [`measure::ANSOR_CODEGEN_EFFICIENCY_CAP`].
//! 2. **Long tuning time.** Every trial pays program generation +
//!    compilation + on-device measurement (~1.3 s wall-clock, matching
//!    AutoTVM/Ansor practice); at the recommended 900 trials per task a
//!    ResNet-sized model takes hours (Figure 10b).
//!
//! The tuner really searches: random population → learned
//! gradient-boosted-stump cost model → evolutionary mutation, measuring
//! the most promising candidates on the GPU simulator each round.

pub mod cost_model;
pub mod features;
pub mod measure;
pub mod schedule;
pub mod search;
pub mod tuner;

pub use cost_model::BoostedStumps;
pub use measure::{measure_schedule, ANSOR_CODEGEN_EFFICIENCY_CAP, SECONDS_PER_TRIAL};
pub use schedule::GpuSchedule;
pub use search::{EvolutionarySearch, SearchOptions};
pub use tuner::{AnsorTuner, TaskResult, TuningReport};
