//! The GPU schedule space the auto-tuner searches.
//!
//! A [`GpuSchedule`] captures the loop-nest decisions Ansor's sketch rules
//! make for a matmul/conv on a CUDA-core GPU: block tile, per-thread tile,
//! reduction split, shared-memory staging, vectorization, and unrolling.
//! The space is combinatorial (~10^4 points) — tiny next to real Ansor's,
//! but large enough that random sampling is poor and guided search pays,
//! which is the behaviour the reproduction needs.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Legal values for each tiling knob.
pub const BLOCK_TILES: &[usize] = &[16, 32, 64, 128, 256];
/// Legal per-thread tile extents.
pub const THREAD_TILES: &[usize] = &[1, 2, 4, 8, 16];
/// Legal reduction tile extents.
pub const K_TILES: &[usize] = &[4, 8, 16, 32, 64];
/// Legal vectorization widths (elements).
pub const VECTORS: &[usize] = &[1, 2, 4, 8];
/// Legal unroll depths.
pub const UNROLLS: &[usize] = &[0, 16, 64, 512];

/// One point in the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GpuSchedule {
    /// Output rows computed per threadblock.
    pub block_m: usize,
    /// Output columns computed per threadblock.
    pub block_n: usize,
    /// Reduction slice staged per iteration.
    pub tile_k: usize,
    /// Output rows per thread.
    pub thread_m: usize,
    /// Output columns per thread.
    pub thread_n: usize,
    /// Whether operands are staged through shared memory.
    pub use_smem: bool,
    /// Vectorized access width in elements.
    pub vectorize: usize,
    /// Unroll pragma depth.
    pub unroll: usize,
}

impl GpuSchedule {
    /// Threads per block implied by the tiling.
    pub fn threads(&self) -> usize {
        (self.block_m / self.thread_m) * (self.block_n / self.thread_n)
    }

    /// Estimated registers per thread: f32 accumulators plus operand
    /// copies and bookkeeping. Ansor's register-greedy schedules blow
    /// through this quickly, which is the "aggressively consumes all
    /// register files" behaviour Section 4.1.1 describes.
    pub fn regs_per_thread(&self) -> usize {
        self.thread_m * self.thread_n + 2 * (self.thread_m + self.thread_n) + 24
    }

    /// Shared memory per block in bytes for FP16 operands (double
    /// buffered), zero when staging is disabled.
    pub fn smem_bytes(&self) -> usize {
        if self.use_smem {
            2 * (self.block_m + self.block_n) * self.tile_k * 2
        } else {
            0
        }
    }

    /// Structural legality (divisibility and launchability bounds).
    pub fn is_valid(&self) -> bool {
        self.block_m.is_multiple_of(self.thread_m)
            && self.block_n.is_multiple_of(self.thread_n)
            && (32..=1024).contains(&self.threads())
            && self.regs_per_thread() <= 255
            && self.smem_bytes() <= 64 * 1024
    }

    /// Samples a uniformly random (not necessarily valid) point.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        GpuSchedule {
            block_m: BLOCK_TILES[rng.gen_range(0..BLOCK_TILES.len())],
            block_n: BLOCK_TILES[rng.gen_range(0..BLOCK_TILES.len())],
            tile_k: K_TILES[rng.gen_range(0..K_TILES.len())],
            thread_m: THREAD_TILES[rng.gen_range(0..THREAD_TILES.len())],
            thread_n: THREAD_TILES[rng.gen_range(0..THREAD_TILES.len())],
            use_smem: rng.gen_bool(0.8),
            vectorize: VECTORS[rng.gen_range(0..VECTORS.len())],
            unroll: UNROLLS[rng.gen_range(0..UNROLLS.len())],
        }
    }

    /// Samples a random *valid* point (rejection sampling).
    pub fn random_valid<R: Rng>(rng: &mut R) -> Self {
        loop {
            let s = Self::random(rng);
            if s.is_valid() {
                return s;
            }
        }
    }

    /// Mutates one knob, returning a valid neighbour.
    pub fn mutate<R: Rng>(&self, rng: &mut R) -> Self {
        for _ in 0..64 {
            let mut s = *self;
            match rng.gen_range(0..7) {
                0 => s.block_m = BLOCK_TILES[rng.gen_range(0..BLOCK_TILES.len())],
                1 => s.block_n = BLOCK_TILES[rng.gen_range(0..BLOCK_TILES.len())],
                2 => s.tile_k = K_TILES[rng.gen_range(0..K_TILES.len())],
                3 => s.thread_m = THREAD_TILES[rng.gen_range(0..THREAD_TILES.len())],
                4 => s.thread_n = THREAD_TILES[rng.gen_range(0..THREAD_TILES.len())],
                5 => s.vectorize = VECTORS[rng.gen_range(0..VECTORS.len())],
                _ => {
                    s.use_smem = !s.use_smem;
                    s.unroll = UNROLLS[rng.gen_range(0..UNROLLS.len())];
                }
            }
            if s.is_valid() {
                return s;
            }
        }
        *self
    }

    /// Single-point crossover of two schedules, returning a valid child
    /// (falls back to `self` if no valid child is found).
    pub fn crossover<R: Rng>(&self, other: &Self, rng: &mut R) -> Self {
        for _ in 0..16 {
            let child = GpuSchedule {
                block_m: if rng.gen_bool(0.5) {
                    self.block_m
                } else {
                    other.block_m
                },
                block_n: if rng.gen_bool(0.5) {
                    self.block_n
                } else {
                    other.block_n
                },
                tile_k: if rng.gen_bool(0.5) {
                    self.tile_k
                } else {
                    other.tile_k
                },
                thread_m: if rng.gen_bool(0.5) {
                    self.thread_m
                } else {
                    other.thread_m
                },
                thread_n: if rng.gen_bool(0.5) {
                    self.thread_n
                } else {
                    other.thread_n
                },
                use_smem: if rng.gen_bool(0.5) {
                    self.use_smem
                } else {
                    other.use_smem
                },
                vectorize: if rng.gen_bool(0.5) {
                    self.vectorize
                } else {
                    other.vectorize
                },
                unroll: if rng.gen_bool(0.5) {
                    self.unroll
                } else {
                    other.unroll
                },
            };
            if child.is_valid() {
                return child;
            }
        }
        *self
    }
}

impl fmt::Display for GpuSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {}x{} k{} thread {}x{} smem={} vec{} unroll{}",
            self.block_m,
            self.block_n,
            self.tile_k,
            self.thread_m,
            self.thread_n,
            self.use_smem,
            self.vectorize,
            self.unroll
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validity_rules() {
        let good = GpuSchedule {
            block_m: 64,
            block_n: 64,
            tile_k: 16,
            thread_m: 4,
            thread_n: 4,
            use_smem: true,
            vectorize: 4,
            unroll: 16,
        };
        assert!(good.is_valid());
        assert_eq!(good.threads(), 256);
        let mut bad = good;
        bad.thread_m = 16;
        bad.thread_n = 16; // 256 regs of accumulators alone
        assert!(!bad.is_valid());
        let mut indivisible = good;
        indivisible.block_m = 16;
        indivisible.thread_m = 8;
        indivisible.thread_n = 1; // 16/8 * 64 = 128 threads, fine; make indivisible:
        indivisible.block_n = 16;
        indivisible.thread_n = 16;
        assert_eq!(indivisible.block_n % indivisible.thread_n, 0);
    }

    #[test]
    fn random_valid_always_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(GpuSchedule::random_valid(&mut rng).is_valid());
        }
    }

    #[test]
    fn mutation_stays_valid_and_local() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = GpuSchedule::random_valid(&mut rng);
        for _ in 0..100 {
            let m = base.mutate(&mut rng);
            assert!(m.is_valid());
        }
    }

    #[test]
    fn crossover_produces_valid_children() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = GpuSchedule::random_valid(&mut rng);
        let b = GpuSchedule::random_valid(&mut rng);
        for _ in 0..50 {
            assert!(a.crossover(&b, &mut rng).is_valid());
        }
    }

    #[test]
    fn smem_accounting() {
        let s = GpuSchedule {
            block_m: 64,
            block_n: 64,
            tile_k: 16,
            thread_m: 4,
            thread_n: 4,
            use_smem: true,
            vectorize: 4,
            unroll: 0,
        };
        assert_eq!(s.smem_bytes(), 2 * 128 * 16 * 2);
        let mut no = s;
        no.use_smem = false;
        assert_eq!(no.smem_bytes(), 0);
    }
}
