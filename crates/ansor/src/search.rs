//! Evolutionary search guided by the learned cost model.
//!
//! One Ansor tuning task alternates: sample/evolve a population → rank
//! with the cost model → measure the most promising candidates on the
//! device → retrain the model on all measurements so far. The measured
//! trial count is the budget the paper's Figure 10b charges wall-clock
//! time for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use bolt_gpu_sim::GpuArch;
use bolt_graph::Workload;

use crate::cost_model::BoostedStumps;
use crate::features::featurize;
use crate::measure::measure_schedule;
use crate::schedule::GpuSchedule;

/// Search hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// Total measured trials (the paper's "tuning trials").
    pub trials: usize,
    /// Candidates measured per round.
    pub measure_batch: usize,
    /// Population size evolved per round.
    pub population: usize,
    /// RNG seed (search is deterministic given the seed).
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            trials: 512,
            measure_batch: 64,
            population: 256,
            seed: 0xA450,
        }
    }
}

/// One measured candidate.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// The schedule.
    pub schedule: GpuSchedule,
    /// Simulated kernel time in microseconds.
    pub time_us: f64,
}

/// The evolutionary search engine for one task.
#[derive(Debug)]
pub struct EvolutionarySearch {
    arch: GpuArch,
    workload: Workload,
    options: SearchOptions,
}

impl EvolutionarySearch {
    /// Creates a search for `workload` on `arch`.
    pub fn new(arch: &GpuArch, workload: Workload, options: SearchOptions) -> Self {
        EvolutionarySearch {
            arch: arch.clone(),
            workload,
            options,
        }
    }

    /// Runs the search, returning all measurements (best first) and the
    /// number of trials actually spent.
    pub fn run(&self) -> (Vec<Measured>, usize) {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut measured: Vec<Measured> = Vec::new();
        let mut seen: HashSet<GpuSchedule> = HashSet::new();
        let mut model = BoostedStumps::default();

        let mut population: Vec<GpuSchedule> = (0..self.options.population)
            .map(|_| GpuSchedule::random_valid(&mut rng))
            .collect();

        while measured.len() < self.options.trials {
            // Rank the population: cost model if trained, else random.
            let mut ranked: Vec<(f64, GpuSchedule)> = population
                .iter()
                .map(|s| {
                    let score = if model.is_empty() {
                        rng.gen::<f64>()
                    } else {
                        model.predict(&featurize(&self.workload, s))
                    };
                    (score, *s)
                })
                .collect();
            ranked.sort_by(|a, b| b.0.total_cmp(&a.0));

            // Measure the top unmeasured candidates.
            let budget = self
                .options
                .measure_batch
                .min(self.options.trials - measured.len());
            let mut this_round = 0;
            for (_, s) in &ranked {
                if this_round >= budget {
                    break;
                }
                if !seen.insert(*s) {
                    continue;
                }
                let t = measure_schedule(&self.arch, &self.workload, s);
                measured.push(Measured {
                    schedule: *s,
                    time_us: t.total_us,
                });
                this_round += 1;
            }
            if this_round == 0 {
                // Population exhausted: inject fresh randomness.
                population = (0..self.options.population)
                    .map(|_| GpuSchedule::random_valid(&mut rng))
                    .collect();
                continue;
            }

            // Retrain on throughput (higher = better).
            let xs: Vec<Vec<f64>> = measured
                .iter()
                .map(|m| featurize(&self.workload, &m.schedule).to_vec())
                .collect();
            let ys: Vec<f64> = measured.iter().map(|m| 1e3 / m.time_us.max(1e-3)).collect();
            model = BoostedStumps::fit(&xs, &ys, 64, 0.3);

            // Evolve: elites + mutations + crossovers + fresh blood.
            let mut elites: Vec<Measured> = measured.clone();
            elites.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
            elites.truncate(16);
            let mut next = Vec::with_capacity(self.options.population);
            for e in &elites {
                next.push(e.schedule);
            }
            while next.len() < self.options.population {
                let pick = rng.gen_range(0..3);
                let parent = elites[rng.gen_range(0..elites.len())].schedule;
                let child = match pick {
                    0 => parent.mutate(&mut rng),
                    1 => {
                        let other = elites[rng.gen_range(0..elites.len())].schedule;
                        parent.crossover(&other, &mut rng)
                    }
                    _ => GpuSchedule::random_valid(&mut rng),
                };
                next.push(child);
            }
            population = next;
        }

        measured.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
        let spent = measured.len();
        (measured, spent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn search_improves_over_random_sampling() {
        let workload = Workload::Gemm {
            m: 2048,
            n: 2048,
            k: 2048,
        };
        let opts = SearchOptions {
            trials: 192,
            measure_batch: 32,
            population: 128,
            seed: 3,
        };
        let (measured, spent) = EvolutionarySearch::new(&t4(), workload, opts).run();
        assert_eq!(spent, 192);
        let best = measured[0].time_us;

        // Pure random baseline with the same budget.
        let mut rng = StdRng::seed_from_u64(3);
        let mut best_random = f64::INFINITY;
        for _ in 0..192 {
            let s = GpuSchedule::random_valid(&mut rng);
            best_random = best_random.min(measure_schedule(&t4(), &workload, &s).total_us);
        }
        assert!(
            best <= best_random * 1.05,
            "guided search ({best:.1} us) should at least match random ({best_random:.1} us)"
        );
    }

    #[test]
    fn search_is_deterministic() {
        let workload = Workload::Gemm {
            m: 1280,
            n: 768,
            k: 768,
        };
        let opts = SearchOptions {
            trials: 64,
            measure_batch: 16,
            population: 64,
            seed: 9,
        };
        let (a, _) = EvolutionarySearch::new(&t4(), workload, opts).run();
        let (b, _) = EvolutionarySearch::new(&t4(), workload, opts).run();
        assert_eq!(a[0].schedule, b[0].schedule);
        assert_eq!(a[0].time_us, b[0].time_us);
    }

    #[test]
    fn respects_trial_budget() {
        let workload = Workload::Gemm {
            m: 512,
            n: 512,
            k: 512,
        };
        let opts = SearchOptions {
            trials: 40,
            measure_batch: 64,
            population: 64,
            seed: 1,
        };
        let (measured, spent) = EvolutionarySearch::new(&t4(), workload, opts).run();
        assert_eq!(spent, 40);
        assert_eq!(measured.len(), 40);
    }
}
