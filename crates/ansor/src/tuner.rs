//! The end-to-end tuner: extract tasks, search each, account wall-clock.

use std::collections::HashMap;

use bolt_gpu_sim::GpuArch;
use bolt_graph::{extract_workloads, Graph, Workload};

use crate::measure::SECONDS_PER_TRIAL;
use crate::schedule::GpuSchedule;
use crate::search::{EvolutionarySearch, SearchOptions};

/// Tuning outcome for one task (workload).
#[derive(Debug, Clone, Copy)]
pub struct TaskResult {
    /// The workload tuned.
    pub workload: Workload,
    /// Best schedule found.
    pub best_schedule: GpuSchedule,
    /// Simulated kernel time of the best schedule, microseconds.
    pub best_time_us: f64,
    /// Trials spent on this task.
    pub trials: usize,
}

/// Whole-model tuning report.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Per-task results keyed by workload.
    pub tasks: HashMap<Workload, TaskResult>,
    /// Total measured trials.
    pub total_trials: usize,
    /// Simulated tuning wall-clock in seconds (trials × per-trial cost) —
    /// the y-axis of Figure 10b.
    pub tuning_seconds: f64,
}

impl TuningReport {
    /// Best kernel time for `workload`, if it was tuned.
    pub fn best_time_us(&self, workload: &Workload) -> Option<f64> {
        self.tasks.get(workload).map(|t| t.best_time_us)
    }

    /// Tuning wall-clock in hours.
    pub fn tuning_hours(&self) -> f64 {
        self.tuning_seconds / 3600.0
    }
}

/// An Ansor-style auto-tuner bound to one device.
#[derive(Debug, Clone)]
pub struct AnsorTuner {
    arch: GpuArch,
    /// Measured trials per task. The TVM official example recommends 900 ×
    /// the number of tasks in total, i.e. ~900 per task.
    pub trials_per_task: usize,
    /// Search hyperparameters (trial budget is overridden per task).
    pub options: SearchOptions,
}

impl AnsorTuner {
    /// Creates a tuner with the paper's recommended budget.
    pub fn new(arch: &GpuArch) -> Self {
        AnsorTuner {
            arch: arch.clone(),
            trials_per_task: 900,
            options: SearchOptions::default(),
        }
    }

    /// Creates a tuner with a smaller budget (for tests and quick runs).
    pub fn with_trials(arch: &GpuArch, trials_per_task: usize) -> Self {
        AnsorTuner {
            trials_per_task,
            ..Self::new(arch)
        }
    }

    /// Tunes every workload in the list.
    pub fn tune_workloads(&self, workloads: &[Workload]) -> TuningReport {
        let mut tasks = HashMap::new();
        let mut total_trials = 0;
        for (i, &workload) in workloads.iter().enumerate() {
            let opts = SearchOptions {
                trials: self.trials_per_task,
                seed: self.options.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                ..self.options
            };
            let (measured, spent) = EvolutionarySearch::new(&self.arch, workload, opts).run();
            let best = measured.first().expect("at least one trial");
            total_trials += spent;
            tasks.insert(
                workload,
                TaskResult {
                    workload,
                    best_schedule: best.schedule,
                    best_time_us: best.time_us,
                    trials: spent,
                },
            );
        }
        TuningReport {
            tasks,
            total_trials,
            tuning_seconds: total_trials as f64 * SECONDS_PER_TRIAL,
        }
    }

    /// Extracts tasks from `graph` and tunes them all.
    pub fn tune_graph(&self, graph: &Graph) -> TuningReport {
        let workloads: Vec<Workload> = extract_workloads(graph)
            .into_iter()
            .map(|(w, _)| w)
            .collect();
        self.tune_workloads(&workloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_graph::GraphBuilder;
    use bolt_tensor::{Activation, DType};

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    #[test]
    fn tunes_all_graph_tasks_and_accounts_time() {
        let mut b = GraphBuilder::shapes_only(DType::F16);
        let x = b.input(&[32, 256]);
        let h = b.dense_bias(x, 512, "fc1");
        let r = b.activation(h, Activation::ReLU, "relu");
        let o = b.dense_bias(r, 128, "fc2");
        let g = b.finish(&[o]);

        let tuner = AnsorTuner::with_trials(&t4(), 48);
        let report = tuner.tune_graph(&g);
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.total_trials, 96);
        assert!((report.tuning_seconds - 96.0 * SECONDS_PER_TRIAL).abs() < 1e-9);
        for task in report.tasks.values() {
            assert!(task.best_time_us.is_finite() && task.best_time_us > 0.0);
        }
    }

    #[test]
    fn more_trials_do_not_regress() {
        let w = Workload::Gemm {
            m: 1280,
            n: 3072,
            k: 768,
        };
        let small = AnsorTuner::with_trials(&t4(), 32).tune_workloads(&[w]);
        let large = AnsorTuner::with_trials(&t4(), 160).tune_workloads(&[w]);
        assert!(
            large.best_time_us(&w).unwrap() <= small.best_time_us(&w).unwrap() * 1.001,
            "more search must not be worse"
        );
    }

    #[test]
    fn default_budget_matches_paper() {
        let tuner = AnsorTuner::new(&t4());
        assert_eq!(tuner.trials_per_task, 900);
    }
}
