//! A learned cost model: gradient-boosted regression stumps.
//!
//! Ansor uses gradient-boosted trees (XGBoost) trained online on measured
//! programs. We implement the same idea from scratch — L2 gradient
//! boosting with depth-1 trees (stumps) — which is plenty for the ~12-
//! dimensional feature space of [`crate::features`] and keeps the crate
//! dependency-free.

use serde::{Deserialize, Serialize};

/// One depth-1 regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

impl Stump {
    fn predict(&self, x: &[f64]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// Gradient-boosted stumps with squared-error loss.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BoostedStumps {
    base: f64,
    learning_rate: f64,
    stumps: Vec<Stump>,
}

impl BoostedStumps {
    /// Fits `rounds` stumps on `(xs, ys)` with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], rounds: usize, learning_rate: f64) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and targets must align");
        if xs.is_empty() {
            return BoostedStumps {
                base: 0.0,
                learning_rate,
                stumps: Vec::new(),
            };
        }
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut stumps = Vec::with_capacity(rounds);
        let num_features = xs[0].len();

        for _ in 0..rounds {
            let Some(stump) = best_stump(xs, &residuals, num_features) else {
                break;
            };
            for (r, x) in residuals.iter_mut().zip(xs) {
                *r -= learning_rate * stump.predict(x);
            }
            stumps.push(stump);
        }
        BoostedStumps {
            base,
            learning_rate,
            stumps,
        }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.stumps.iter().map(|s| s.predict(x)).sum::<f64>()
    }

    /// Number of fitted stumps.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// True if the model is untrained.
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }
}

/// Finds the stump minimizing SSE against `residuals`, trying quantile
/// thresholds per feature.
fn best_stump(xs: &[Vec<f64>], residuals: &[f64], num_features: usize) -> Option<Stump> {
    let n = xs.len();
    let mut best: Option<(f64, Stump)> = None;

    for f in 0..num_features {
        let mut values: Vec<f64> = xs.iter().map(|x| x[f]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        // Try up to 8 quantile thresholds.
        let step = (values.len() / 8).max(1);
        for t in values.iter().step_by(step) {
            let mut sum_l = 0.0;
            let mut cnt_l = 0usize;
            let mut sum_r = 0.0;
            let mut cnt_r = 0usize;
            for (x, &r) in xs.iter().zip(residuals) {
                if x[f] <= *t {
                    sum_l += r;
                    cnt_l += 1;
                } else {
                    sum_r += r;
                    cnt_r += 1;
                }
            }
            if cnt_l == 0 || cnt_r == 0 {
                continue;
            }
            let left = sum_l / cnt_l as f64;
            let right = sum_r / cnt_r as f64;
            // SSE reduction = sum of squared means weighted by counts.
            let gain = left * left * cnt_l as f64 + right * right * cnt_r as f64;
            let stump = Stump {
                feature: f,
                threshold: *t,
                left,
                right,
            };
            if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                best = Some((gain, stump));
            }
        }
    }
    let _ = n;
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 3.0 }).collect();
        let model = BoostedStumps::fit(&xs, &ys, 20, 0.5);
        assert!((model.predict(&[10.0]) - 1.0).abs() < 0.2);
        assert!((model.predict(&[90.0]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn fits_additive_structure() {
        // y = 2*[x0 > 0.5] + [x1 > 0.5]
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..4 {
            for _ in 0..25 {
                let x0 = (i & 1) as f64;
                let x1 = ((i >> 1) & 1) as f64;
                xs.push(vec![x0, x1]);
                ys.push(2.0 * x0 + x1);
            }
        }
        let model = BoostedStumps::fit(&xs, &ys, 50, 0.3);
        for (x, y) in xs.iter().zip(&ys).step_by(25) {
            assert!((model.predict(x) - y).abs() < 0.3, "{x:?} -> {y}");
        }
    }

    #[test]
    fn ranks_better_than_random_on_noisy_data() {
        // Ranking quality is what the search uses the model for.
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, ((i * 7) % 13) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0 + x[1]).collect();
        let model = BoostedStumps::fit(&xs, &ys, 80, 0.3);
        // Check pairwise order agreement on well-separated pairs.
        let mut agree = 0;
        let mut total = 0;
        for i in (0..xs.len()).step_by(7) {
            for j in (0..xs.len()).step_by(13) {
                if (ys[i] - ys[j]).abs() < 10.0 {
                    continue;
                }
                total += 1;
                if (model.predict(&xs[i]) > model.predict(&xs[j])) == (ys[i] > ys[j]) {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.85, "{agree}/{total}");
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let model = BoostedStumps::fit(&[], &[], 10, 0.3);
        assert!(model.is_empty());
        assert_eq!(model.predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn constant_targets_return_base() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 10];
        let model = BoostedStumps::fit(&xs, &ys, 10, 0.3);
        assert!((model.predict(&[3.0]) - 5.0).abs() < 1e-9);
    }
}
