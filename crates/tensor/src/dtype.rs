//! Data types supported by the templated kernel library.
//!
//! The set mirrors what CUTLASS 2.x supports on Turing/Ampere tensor cores
//! (the paper lists B1, INT4, INT8, FP16, BF16, FP32, TF32, FP64). The
//! reproduction exercises FP16/BF16/TF32/FP32 end to end; the integer types
//! participate in sizing/alignment logic and the performance model.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::half::{round_bf16, round_f16, round_tf32};

/// Element data type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 1-bit binary (B1).
    B1,
    /// 4-bit signed integer.
    I4,
    /// 8-bit signed integer.
    I8,
    /// 32-bit signed integer (accumulator for integer GEMMs).
    I32,
    /// IEEE binary16.
    F16,
    /// bfloat16.
    Bf16,
    /// TensorFloat-32 (stored as f32, computed with a 10-bit mantissa).
    Tf32,
    /// IEEE binary32.
    F32,
    /// IEEE binary64.
    F64,
}

impl DType {
    /// Size of one element in bits.
    ///
    /// ```
    /// use bolt_tensor::DType;
    /// assert_eq!(DType::F16.size_bits(), 16);
    /// assert_eq!(DType::B1.size_bits(), 1);
    /// ```
    pub const fn size_bits(self) -> usize {
        match self {
            DType::B1 => 1,
            DType::I4 => 4,
            DType::I8 => 8,
            DType::I32 => 32,
            DType::F16 | DType::Bf16 => 16,
            DType::Tf32 | DType::F32 => 32,
            DType::F64 => 64,
        }
    }

    /// Size of one element in bytes, rounded up for sub-byte types.
    pub const fn size_bytes(self) -> usize {
        let bits = self.size_bits();
        if bits < 8 {
            1
        } else {
            bits / 8
        }
    }

    /// The widest vectorized access (in elements) that a 128-bit load/store
    /// can move for this dtype. NVIDIA GPUs vectorize up to `ld.128`, so for
    /// FP16 this is 8 — the "alignment 8" the paper's kernel-padding
    /// optimization targets.
    ///
    /// ```
    /// use bolt_tensor::DType;
    /// assert_eq!(DType::F16.max_vector_elems(), 8);
    /// assert_eq!(DType::F32.max_vector_elems(), 4);
    /// ```
    pub const fn max_vector_elems(self) -> usize {
        128 / self.size_bits()
    }

    /// True for floating-point types.
    pub const fn is_float(self) -> bool {
        matches!(
            self,
            DType::F16 | DType::Bf16 | DType::Tf32 | DType::F32 | DType::F64
        )
    }

    /// True for types natively consumed by tensor cores (Turing/Ampere).
    pub const fn tensor_core_eligible(self) -> bool {
        matches!(
            self,
            DType::B1 | DType::I4 | DType::I8 | DType::F16 | DType::Bf16 | DType::Tf32
        )
    }

    /// Rounds an `f32` value to this dtype's precision and back to `f32`.
    ///
    /// This is how the functional executors emulate reduced-precision
    /// storage while keeping all arithmetic in `f32` (the tensor-core
    /// accumulator precision).
    #[inline]
    pub fn quantize(self, value: f32) -> f32 {
        match self {
            DType::F16 => round_f16(value),
            DType::Bf16 => round_bf16(value),
            DType::Tf32 => round_tf32(value),
            DType::F32 | DType::F64 => value,
            DType::I8 => value.round().clamp(-128.0, 127.0),
            DType::I4 => value.round().clamp(-8.0, 7.0),
            DType::I32 => value.round().clamp(i32::MIN as f32, i32::MAX as f32),
            DType::B1 => {
                if value >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Short lowercase name (`"f16"`, `"i8"`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            DType::B1 => "b1",
            DType::I4 => "i4",
            DType::I8 => "i8",
            DType::I32 => "i32",
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::Tf32 => "tf32",
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }

    /// The CUTLASS C++ element type name, used by the code emitter.
    pub const fn cutlass_name(self) -> &'static str {
        match self {
            DType::B1 => "cutlass::uint1b_t",
            DType::I4 => "cutlass::int4b_t",
            DType::I8 => "int8_t",
            DType::I32 => "int32_t",
            DType::F16 => "cutlass::half_t",
            DType::Bf16 => "cutlass::bfloat16_t",
            DType::Tf32 => "cutlass::tfloat32_t",
            DType::F32 => "float",
            DType::F64 => "double",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I4.size_bytes(), 1);
        assert_eq!(DType::I4.size_bits(), 4);
    }

    #[test]
    fn vector_widths() {
        assert_eq!(DType::F16.max_vector_elems(), 8);
        assert_eq!(DType::I8.max_vector_elems(), 16);
        assert_eq!(DType::F32.max_vector_elems(), 4);
        assert_eq!(DType::F64.max_vector_elems(), 2);
    }

    #[test]
    fn tensor_core_eligibility() {
        assert!(DType::F16.tensor_core_eligible());
        assert!(DType::I8.tensor_core_eligible());
        assert!(!DType::F32.tensor_core_eligible());
        assert!(!DType::F64.tensor_core_eligible());
    }

    #[test]
    fn quantize_f16_loses_precision() {
        let v = 1.0 + 2f32.powi(-12);
        assert_eq!(DType::F16.quantize(v), 1.0);
        assert_eq!(DType::F32.quantize(v), v);
    }

    #[test]
    fn quantize_i8_clamps() {
        assert_eq!(DType::I8.quantize(300.0), 127.0);
        assert_eq!(DType::I8.quantize(-300.0), -128.0);
        assert_eq!(DType::I8.quantize(2.4), 2.0);
    }

    #[test]
    fn quantize_b1_thresholds() {
        assert_eq!(DType::B1.quantize(0.9), 1.0);
        assert_eq!(DType::B1.quantize(0.1), 0.0);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DType::Bf16.to_string(), "bf16");
        assert_eq!(DType::Tf32.name(), "tf32");
    }
}
