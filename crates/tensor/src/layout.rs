//! Memory layouts for matrices and 4-D activation tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Layout of a 2-D matrix operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixLayout {
    /// Row-major: element (r, c) at offset `r * ld + c`.
    RowMajor,
    /// Column-major: element (r, c) at offset `c * ld + r`.
    ColMajor,
}

impl MatrixLayout {
    /// Linear offset of element `(row, col)` with leading dimension `ld`.
    #[inline]
    pub fn offset(self, row: usize, col: usize, ld: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => row * ld + col,
            MatrixLayout::ColMajor => col * ld + row,
        }
    }

    /// Default leading dimension of a `rows x cols` matrix in this layout.
    pub fn default_ld(self, rows: usize, cols: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => cols,
            MatrixLayout::ColMajor => rows,
        }
    }

    /// The size of the contiguous (fastest-varying) dimension — the one
    /// whose divisibility determines vectorized-access alignment.
    pub fn contiguous_extent(self, rows: usize, cols: usize) -> usize {
        match self {
            MatrixLayout::RowMajor => cols,
            MatrixLayout::ColMajor => rows,
        }
    }

    /// The CUTLASS C++ layout type name, used by the code emitter.
    pub const fn cutlass_name(self) -> &'static str {
        match self {
            MatrixLayout::RowMajor => "cutlass::layout::RowMajor",
            MatrixLayout::ColMajor => "cutlass::layout::ColumnMajor",
        }
    }
}

impl fmt::Display for MatrixLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixLayout::RowMajor => f.write_str("row-major"),
            MatrixLayout::ColMajor => f.write_str("col-major"),
        }
    }
}

/// Layout of a tensor. 4-D activation tensors are either NCHW (PyTorch
/// default) or NHWC (the layout CUTLASS conv kernels require); matrices are
/// row- or column-major; everything else is plain row-major contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Batch, channels, height, width — the PyTorch default.
    Nchw,
    /// Batch, height, width, channels — required by the templated conv
    /// kernels (and faster on tensor cores, per the paper).
    Nhwc,
    /// 2-D matrix layout.
    Matrix(MatrixLayout),
    /// Row-major contiguous for arbitrary rank.
    Contiguous,
}

impl Layout {
    /// Row-major matrix layout shorthand.
    pub const ROW_MAJOR: Layout = Layout::Matrix(MatrixLayout::RowMajor);
    /// Column-major matrix layout shorthand.
    pub const COL_MAJOR: Layout = Layout::Matrix(MatrixLayout::ColMajor);

    /// Short lowercase name for error messages.
    pub const fn name(self) -> &'static str {
        match self {
            Layout::Nchw => "nchw",
            Layout::Nhwc => "nhwc",
            Layout::Matrix(MatrixLayout::RowMajor) => "row-major",
            Layout::Matrix(MatrixLayout::ColMajor) => "col-major",
            Layout::Contiguous => "contiguous",
        }
    }

    /// For a 4-D activation shape given in *logical* NCHW terms, the linear
    /// offset of `(n, c, h, w)` under this layout.
    ///
    /// # Panics
    ///
    /// Panics if called on a matrix layout.
    #[inline]
    pub fn offset_nchw(
        self,
        (n, c, h, w): (usize, usize, usize, usize),
        (_nn, cc, hh, ww): (usize, usize, usize, usize),
    ) -> usize {
        match self {
            Layout::Nchw | Layout::Contiguous => ((n * cc + c) * hh + h) * ww + w,
            Layout::Nhwc => ((n * hh + h) * ww + w) * cc + c,
            Layout::Matrix(_) => panic!("offset_nchw called on a matrix layout"),
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_offsets() {
        assert_eq!(MatrixLayout::RowMajor.offset(2, 3, 10), 23);
        assert_eq!(MatrixLayout::ColMajor.offset(2, 3, 10), 32);
    }

    #[test]
    fn default_lds() {
        assert_eq!(MatrixLayout::RowMajor.default_ld(4, 7), 7);
        assert_eq!(MatrixLayout::ColMajor.default_ld(4, 7), 4);
    }

    #[test]
    fn nchw_vs_nhwc_offsets() {
        let dims = (2, 3, 4, 5);
        // NCHW: w fastest.
        assert_eq!(Layout::Nchw.offset_nchw((0, 0, 0, 1), dims), 1);
        assert_eq!(Layout::Nchw.offset_nchw((0, 1, 0, 0), dims), 20);
        // NHWC: c fastest.
        assert_eq!(Layout::Nhwc.offset_nchw((0, 1, 0, 0), dims), 1);
        assert_eq!(Layout::Nhwc.offset_nchw((0, 0, 0, 1), dims), 3);
    }

    #[test]
    fn offsets_are_bijective_nhwc() {
        let dims = (2, 3, 4, 5);
        let mut seen = std::collections::HashSet::new();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        assert!(seen.insert(Layout::Nhwc.offset_nchw((n, c, h, w), dims)));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 120);
        assert_eq!(*seen.iter().max().unwrap(), 119);
    }

    #[test]
    fn contiguous_extent() {
        assert_eq!(MatrixLayout::RowMajor.contiguous_extent(4, 7), 7);
        assert_eq!(MatrixLayout::ColMajor.contiguous_extent(4, 7), 4);
    }
}
