//! Dense tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a dense tensor, outermost first.
///
/// ```
/// use bolt_tensor::Shape;
/// let s = Shape::new(&[32, 56, 56, 64]);
/// assert_eq!(s.numel(), 32 * 56 * 56 * 64);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns dimension `i`, or an informative panic.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major (C-contiguous) strides in elements.
    pub fn contiguous_strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn contiguous_strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.contiguous_strides(), vec![12, 4, 1]);
        let v = Shape::new(&[5]);
        assert_eq!(v.contiguous_strides(), vec![1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn conversions() {
        let a: Shape = [1, 2, 3].into();
        let b: Shape = vec![1, 2, 3].into();
        assert_eq!(a, b);
    }
}
