//! Error type shared by the tensor substrate.

use std::fmt;

/// Errors produced by tensor construction and the reference operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// The shape that was expected.
        expected: Vec<usize>,
        /// The shape that was provided.
        actual: Vec<usize>,
    },
    /// An operation was asked to run on an unsupported data type.
    UnsupportedDType {
        /// The operation that rejected the dtype.
        context: String,
        /// Name of the offending dtype.
        dtype: &'static str,
    },
    /// An operation received a tensor in an unsupported memory layout.
    UnsupportedLayout {
        /// The operation that rejected the layout.
        context: String,
        /// Name of the offending layout.
        layout: &'static str,
    },
    /// A parameter was out of its legal range.
    InvalidArgument {
        /// Description of the invalid parameter and its legal range.
        message: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        TensorError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`TensorError::ShapeMismatch`].
    pub fn shape(context: impl Into<String>, expected: &[usize], actual: &[usize]) -> Self {
        TensorError::ShapeMismatch {
            context: context.into(),
            expected: expected.to_vec(),
            actual: actual.to_vec(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
                )
            }
            TensorError::UnsupportedDType { context, dtype } => {
                write!(f, "unsupported dtype {dtype} in {context}")
            }
            TensorError::UnsupportedLayout { context, layout } => {
                write!(f, "unsupported layout {layout} in {context}")
            }
            TensorError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::shape("gemm", &[2, 3], &[3, 2]);
        let text = err.to_string();
        assert!(text.contains("gemm"));
        assert!(text.contains("[2, 3]"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
