//! Reference 2-D convolution (forward propagation).
//!
//! Implements the direct convolution the implicit-GEMM kernels in
//! `bolt-cutlass` are validated against, plus the im2col lowering that maps
//! a convolution onto a GEMM (the mapping templated libraries use
//! internally).

use crate::activation::Activation;
use crate::dtype::DType;
use crate::error::TensorError;
use crate::layout::Layout;
use crate::tensor::Tensor;
use crate::Result;

/// A forward Conv2D problem description (no groups, NHWC activation layout,
/// `KRSC` filter layout to match CUTLASS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Conv2dProblem {
    /// Batch size.
    pub n: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Output channels (number of filters).
    pub k: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Stride (vertical, horizontal).
    pub stride: (usize, usize),
    /// Zero padding (vertical, horizontal).
    pub padding: (usize, usize),
    /// Dilation (vertical, horizontal).
    pub dilation: (usize, usize),
}

impl Conv2dProblem {
    /// Creates a problem with dilation 1.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        h: usize,
        w: usize,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Conv2dProblem {
            n,
            h,
            w,
            c,
            k,
            r,
            s,
            stride,
            padding,
            dilation: (1, 1),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.padding.0).saturating_sub(self.dilation.0 * (self.r - 1) + 1)
            / self.stride.0
            + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.padding.1).saturating_sub(self.dilation.1 * (self.s - 1) + 1)
            / self.stride.1
            + 1
    }

    /// The implicit-GEMM problem size `(M, N, K)` of this convolution:
    /// `M = N*P*Q`, `N = K`, `K = R*S*C`.
    pub fn implicit_gemm_mnk(&self) -> (usize, usize, usize) {
        (
            self.n * self.out_h() * self.out_w(),
            self.k,
            self.r * self.s * self.c,
        )
    }

    /// Multiply-accumulate count of the whole convolution.
    pub fn macs(&self) -> u64 {
        let (m, n, k) = self.implicit_gemm_mnk();
        m as u64 * n as u64 * k as u64
    }

    /// True if this is a 1×1, stride-1, unpadded convolution — the only
    /// shape eligible as the *second* operator of a persistent Conv fusion
    /// (paper Section 3.1.1).
    pub fn is_pointwise_unit(&self) -> bool {
        self.r == 1
            && self.s == 1
            && self.stride == (1, 1)
            && self.padding == (0, 0)
            && self.dilation == (1, 1)
    }
}

/// Direct-convolution reference: NHWC input `(n, h, w, c)`, filter
/// `(k, r, s, c)` row-major contiguous, optional per-channel bias `(k,)`,
/// fused activation, f32 accumulation.
///
/// # Errors
///
/// Returns an error if tensor shapes disagree with `problem` or the input
/// is not NHWC.
pub fn conv2d_ref(
    problem: &Conv2dProblem,
    input: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
    activation: Activation,
) -> Result<Tensor> {
    validate_conv_args(problem, input, filter, bias)?;
    let (p, q) = (problem.out_h(), problem.out_w());
    // Output tensor is NHWC as well.
    let mut out_nhwc = Tensor::zeros_nhwc(problem.n, problem.k, p, q, input.dtype());
    let fdims = (problem.k, problem.c, problem.r, problem.s);
    for n in 0..problem.n {
        for oy in 0..p {
            for ox in 0..q {
                for k in 0..problem.k {
                    let mut acc = 0.0f32;
                    for r in 0..problem.r {
                        let iy = (oy * problem.stride.0 + r * problem.dilation.0) as isize
                            - problem.padding.0 as isize;
                        if iy < 0 || iy >= problem.h as isize {
                            continue;
                        }
                        for s in 0..problem.s {
                            let ix = (ox * problem.stride.1 + s * problem.dilation.1) as isize
                                - problem.padding.1 as isize;
                            if ix < 0 || ix >= problem.w as isize {
                                continue;
                            }
                            for c in 0..problem.c {
                                let x = input.get4(n, c, iy as usize, ix as usize);
                                let f = filter_get(filter, fdims, k, c, r, s);
                                acc += x * f;
                            }
                        }
                    }
                    let b = bias.map_or(0.0, |b| b.data()[k]);
                    out_nhwc.set4(n, k, oy, ox, activation.apply(acc + b));
                }
            }
        }
    }
    Ok(out_nhwc)
}

/// Lowers an NHWC input into the im2col matrix of shape
/// `(N*P*Q, R*S*C)`, so `conv == im2col(x) @ filter_matrix`. This is the
/// explicit form of the mapping the implicit-GEMM kernels perform on the
/// fly.
///
/// # Errors
///
/// Returns an error if the input shape disagrees with `problem`.
pub fn im2col(problem: &Conv2dProblem, input: &Tensor) -> Result<Tensor> {
    validate_input(problem, input)?;
    let (p, q) = (problem.out_h(), problem.out_w());
    let (m, _, kk) = problem.implicit_gemm_mnk();
    let mut out = Tensor::zeros(&[m, kk], input.dtype());
    for n in 0..problem.n {
        for oy in 0..p {
            for ox in 0..q {
                let row = (n * p + oy) * q + ox;
                for r in 0..problem.r {
                    for s in 0..problem.s {
                        for c in 0..problem.c {
                            let col = (r * problem.s + s) * problem.c + c;
                            let iy = (oy * problem.stride.0 + r * problem.dilation.0) as isize
                                - problem.padding.0 as isize;
                            let ix = (ox * problem.stride.1 + s * problem.dilation.1) as isize
                                - problem.padding.1 as isize;
                            let v = if iy < 0
                                || iy >= problem.h as isize
                                || ix < 0
                                || ix >= problem.w as isize
                            {
                                0.0
                            } else {
                                input.get4(n, c, iy as usize, ix as usize)
                            };
                            out.set2(row, col, v);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// [`im2col`] into a caller-provided buffer, reading the input from a raw
/// NHWC slice with `in_c` physical channels. Channels `in_c..problem.c`
/// are read as zero, which folds Bolt's channel padding (§3.2.3) into the
/// lowering itself: callers can feed an unpadded activation to a kernel
/// compiled for the padded channel count without materializing the pad.
/// Value-identical to [`im2col`] on the channel-padded input.
///
/// # Errors
///
/// Returns an error if `in_c` exceeds `problem.c`, or if `input`/`out`
/// disagree with the problem's input/im2col extents.
pub fn im2col_into(
    problem: &Conv2dProblem,
    input_nhwc: &[f32],
    in_c: usize,
    out: &mut [f32],
) -> Result<()> {
    let (p, q) = (problem.out_h(), problem.out_w());
    let (m, _, kk) = problem.implicit_gemm_mnk();
    if in_c > problem.c {
        return Err(TensorError::shape(
            "im2col_into input channels",
            &[problem.c],
            &[in_c],
        ));
    }
    if input_nhwc.len() != problem.n * problem.h * problem.w * in_c {
        return Err(TensorError::shape(
            "im2col_into input",
            &[problem.n * problem.h * problem.w * in_c],
            &[input_nhwc.len()],
        ));
    }
    if out.len() != m * kk {
        return Err(TensorError::shape(
            "im2col_into output",
            &[m * kk],
            &[out.len()],
        ));
    }
    for n in 0..problem.n {
        for oy in 0..p {
            for ox in 0..q {
                let row = (n * p + oy) * q + ox;
                for r in 0..problem.r {
                    for s in 0..problem.s {
                        for c in 0..problem.c {
                            let col = (r * problem.s + s) * problem.c + c;
                            let iy = (oy * problem.stride.0 + r * problem.dilation.0) as isize
                                - problem.padding.0 as isize;
                            let ix = (ox * problem.stride.1 + s * problem.dilation.1) as isize
                                - problem.padding.1 as isize;
                            let v = if c >= in_c
                                || iy < 0
                                || iy >= problem.h as isize
                                || ix < 0
                                || ix >= problem.w as isize
                            {
                                0.0
                            } else {
                                let (iy, ix) = (iy as usize, ix as usize);
                                input_nhwc[((n * problem.h + iy) * problem.w + ix) * in_c + c]
                            };
                            out[row * kk + col] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reshapes a `(k, r, s, c)` filter tensor into the `(R*S*C, K)` matrix that
/// pairs with [`im2col`].
pub fn filter_as_matrix(problem: &Conv2dProblem, filter: &Tensor) -> Result<Tensor> {
    validate_filter(problem, filter)?;
    let kk = problem.r * problem.s * problem.c;
    let mut out = Tensor::zeros(&[kk, problem.k], filter.dtype());
    let fdims = (problem.k, problem.c, problem.r, problem.s);
    for k in 0..problem.k {
        for r in 0..problem.r {
            for s in 0..problem.s {
                for c in 0..problem.c {
                    let row = (r * problem.s + s) * problem.c + c;
                    out.set2(row, k, filter_get(filter, fdims, k, c, r, s));
                }
            }
        }
    }
    Ok(out)
}

#[inline]
fn filter_get(
    filter: &Tensor,
    (_k, c, _r, s): (usize, usize, usize, usize),
    ki: usize,
    ci: usize,
    ri: usize,
    si: usize,
) -> f32 {
    // Filter stored contiguously as (K, R, S, C) — CUTLASS's KRSC.
    let idx = ((ki * _r_of(filter) + ri) * s + si) * c + ci;
    filter.data()[idx]
}

#[inline]
fn _r_of(filter: &Tensor) -> usize {
    filter.shape().dim(1)
}

fn validate_conv_args(
    problem: &Conv2dProblem,
    input: &Tensor,
    filter: &Tensor,
    bias: Option<&Tensor>,
) -> Result<()> {
    validate_input(problem, input)?;
    validate_filter(problem, filter)?;
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.shape().dim(0) != problem.k {
            return Err(TensorError::shape(
                "conv2d bias",
                &[problem.k],
                b.shape().dims(),
            ));
        }
    }
    Ok(())
}

fn validate_input(problem: &Conv2dProblem, input: &Tensor) -> Result<()> {
    if input.layout() != Layout::Nhwc {
        return Err(TensorError::UnsupportedLayout {
            context: "conv2d_ref input".into(),
            layout: input.layout().name(),
        });
    }
    let expect = [problem.n, problem.h, problem.w, problem.c];
    if input.shape().dims() != expect {
        return Err(TensorError::shape(
            "conv2d input",
            &expect,
            input.shape().dims(),
        ));
    }
    Ok(())
}

fn validate_filter(problem: &Conv2dProblem, filter: &Tensor) -> Result<()> {
    let expect = [problem.k, problem.r, problem.s, problem.c];
    if filter.shape().dims() != expect {
        return Err(TensorError::shape(
            "conv2d filter (KRSC)",
            &expect,
            filter.shape().dims(),
        ));
    }
    Ok(())
}

/// Creates an NHWC input tensor for `problem` with deterministic normal
/// entries.
pub fn random_input(problem: &Conv2dProblem, dtype: DType, seed: u64) -> Tensor {
    Tensor::randn(&[problem.n, problem.c, problem.h, problem.w], dtype, seed)
        .to_activation_layout(Layout::Nhwc)
        .expect("rank-4 tensor converts to NHWC")
}

/// Creates a KRSC filter tensor for `problem` with deterministic normal
/// entries.
pub fn random_filter(problem: &Conv2dProblem, dtype: DType, seed: u64) -> Tensor {
    // Contiguous rank-4 (K,R,S,C); scale down so deep chains stay in f16
    // range.
    let t = Tensor::randn(&[problem.k, problem.r, problem.s, problem.c], dtype, seed);
    let scale = 1.0 / ((problem.r * problem.s * problem.c) as f32).sqrt();
    let data = t.data().iter().map(|v| v * scale).collect();
    Tensor::from_vec(&[problem.k, problem.r, problem.s, problem.c], dtype, data)
        .expect("same length")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> Conv2dProblem {
        Conv2dProblem::new(1, 5, 5, 3, 4, 3, 3, (1, 1), (1, 1))
    }

    #[test]
    fn output_dims() {
        let p = small_problem();
        assert_eq!(p.out_h(), 5);
        assert_eq!(p.out_w(), 5);
        let strided = Conv2dProblem::new(1, 224, 224, 3, 64, 3, 3, (2, 2), (1, 1));
        assert_eq!(strided.out_h(), 112);
        let pw = Conv2dProblem::new(1, 56, 56, 64, 64, 1, 1, (1, 1), (0, 0));
        assert_eq!(pw.out_h(), 56);
        assert!(pw.is_pointwise_unit());
        assert!(!strided.is_pointwise_unit());
    }

    #[test]
    fn implicit_gemm_shape() {
        let p = small_problem();
        assert_eq!(p.implicit_gemm_mnk(), (25, 4, 27));
        assert_eq!(p.macs(), 25 * 4 * 27);
    }

    #[test]
    fn identity_filter_passthrough() {
        // A 1x1 conv with identity-matrix filters must reproduce the input.
        let p = Conv2dProblem::new(1, 4, 4, 3, 3, 1, 1, (1, 1), (0, 0));
        let x = random_input(&p, DType::F32, 11);
        let mut f = Tensor::zeros(&[3, 1, 1, 3], DType::F32);
        for k in 0..3 {
            let idx = k * 3 + k;
            f.data_mut()[idx] = 1.0;
        }
        let y = conv2d_ref(&p, &x, &f, None, Activation::Identity).unwrap();
        assert!(y.allclose(&x, 1e-6).unwrap());
    }

    #[test]
    fn conv_matches_im2col_gemm() {
        let p = small_problem();
        let x = random_input(&p, DType::F32, 3);
        let f = random_filter(&p, DType::F32, 4);
        let direct = conv2d_ref(&p, &x, &f, None, Activation::Identity).unwrap();

        let cols = im2col(&p, &x).unwrap();
        let fm = filter_as_matrix(&p, &f).unwrap();
        let gemm = crate::gemm_ref::gemm_f32(&cols, &fm, None, 1.0, 0.0).unwrap();

        let (m, n, _) = p.implicit_gemm_mnk();
        assert_eq!(gemm.shape().dims(), &[m, n]);
        // Compare elementwise through the NPQK <-> (N*P*Q, K) mapping.
        let (pn, pk) = (p.out_h(), p.out_w());
        for row in 0..m {
            let n_i = row / (pn * pk);
            let oy = (row / pk) % pn;
            let ox = row % pk;
            for k in 0..n {
                let d = direct.get4(n_i, k, oy, ox);
                let g = gemm.get2(row, k);
                assert!((d - g).abs() < 1e-4, "mismatch at {row},{k}: {d} vs {g}");
            }
        }
    }

    #[test]
    fn bias_and_activation() {
        let p = Conv2dProblem::new(1, 2, 2, 1, 1, 1, 1, (1, 1), (0, 0));
        let x = Tensor::from_vec(&[1, 1, 2, 2], DType::F32, vec![-1.0, 2.0, -3.0, 4.0])
            .unwrap()
            .to_activation_layout(Layout::Nhwc)
            .unwrap();
        let f = Tensor::ones(&[1, 1, 1, 1], DType::F32);
        let b = Tensor::from_vec(&[1], DType::F32, vec![0.5]).unwrap();
        let y = conv2d_ref(&p, &x, &f, Some(&b), Activation::ReLU).unwrap();
        assert_eq!(y.get4(0, 0, 0, 0), 0.0); // relu(-1 + 0.5)
        assert_eq!(y.get4(0, 0, 0, 1), 2.5);
    }

    #[test]
    fn padding_zero_contribution() {
        // All-ones input and filter: corner outputs see fewer taps.
        let p = Conv2dProblem::new(1, 3, 3, 1, 1, 3, 3, (1, 1), (1, 1));
        let x = Tensor::ones(&[1, 1, 3, 3], DType::F32)
            .to_activation_layout(Layout::Nhwc)
            .unwrap();
        let f = Tensor::ones(&[1, 3, 3, 1], DType::F32);
        let y = conv2d_ref(&p, &x, &f, None, Activation::Identity).unwrap();
        assert_eq!(y.get4(0, 0, 1, 1), 9.0); // center sees all 9
        assert_eq!(y.get4(0, 0, 0, 0), 4.0); // corner sees 4
        assert_eq!(y.get4(0, 0, 0, 1), 6.0); // edge sees 6
    }

    #[test]
    fn shape_validation() {
        let p = small_problem();
        let bad_input = Tensor::randn(&[1, 3, 5, 5], DType::F32, 1); // NCHW layout
        let f = random_filter(&p, DType::F32, 2);
        assert!(conv2d_ref(&p, &bad_input, &f, None, Activation::Identity).is_err());
        let x = random_input(&p, DType::F32, 1);
        let bad_filter = Tensor::zeros(&[4, 3, 3, 2], DType::F32);
        assert!(conv2d_ref(&p, &x, &bad_filter, None, Activation::Identity).is_err());
        let bad_bias = Tensor::zeros(&[3], DType::F32);
        assert!(conv2d_ref(&p, &x, &f, Some(&bad_bias), Activation::Identity).is_err());
    }

    #[test]
    fn strided_dilated_output_dims() {
        let p = Conv2dProblem {
            n: 1,
            h: 10,
            w: 10,
            c: 1,
            k: 1,
            r: 3,
            s: 3,
            stride: (2, 2),
            padding: (0, 0),
            dilation: (2, 2),
        };
        // Effective kernel span = 5 -> out = (10-5)/2+1 = 3.
        assert_eq!(p.out_h(), 3);
        assert_eq!(p.out_w(), 3);
    }
}
