#![warn(missing_docs)]
//! # bolt-tensor
//!
//! Tensor substrate for the Bolt (MLSys 2022) reproduction.
//!
//! This crate provides the numerical foundation every other crate builds on:
//!
//! * [`DType`] — the mixed-precision data types CUTLASS-style templated
//!   libraries operate on (FP16, BF16, FP32, TF32, INT8, ...).
//! * [`F16`] / [`Bf16`] — software half-precision floats used to emulate
//!   tensor-core numerics bit-faithfully on the CPU.
//! * [`Shape`], [`Layout`], [`Tensor`] — dense tensors with NCHW/NHWC and
//!   row/column-major matrix layouts.
//! * Reference operators ([`gemm_ref`], [`conv_ref`], [`activation`]) that
//!   serve as ground truth for the tiled kernel executors in `bolt-cutlass`.
//!
//! # Example
//!
//! ```
//! use bolt_tensor::{Tensor, DType, gemm_ref::gemm_f32};
//!
//! let a = Tensor::randn(&[4, 8], DType::F16, 1);
//! let b = Tensor::randn(&[8, 3], DType::F16, 2);
//! let c = gemm_f32(&a, &b, None, 1.0, 0.0).unwrap();
//! assert_eq!(c.shape().dims(), &[4, 3]);
//! ```

pub mod activation;
pub mod conv_ref;
pub mod dtype;
pub mod error;
pub mod gemm_ref;
pub mod half;
pub mod layout;
pub mod shape;
pub mod tensor;

pub use activation::Activation;
pub use dtype::DType;
pub use error::TensorError;
pub use half::{Bf16, F16};
pub use layout::{Layout, MatrixLayout};
pub use shape::Shape;
pub use tensor::{alloc_count, clone_count, Tensor};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
