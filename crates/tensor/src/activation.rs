//! Activation functions and their per-element cost profiles.
//!
//! The Bolt paper's epilogue fusion (Section 3.1) fuses these into the GEMM
//! and Conv epilogues; its system-model codesign study (Table 4) swaps them
//! inside RepVGG. Each activation also declares how many FMA-equivalent
//! operations and special-function-unit (SFU) operations it costs per
//! element so the GPU simulator can charge fused epilogues accurately.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// The identity (no activation).
    Identity,
    /// `max(0, x)` (Nair & Hinton, 2010).
    ReLU,
    /// Gaussian Error Linear Unit, tanh approximation (Hendrycks & Gimpel).
    Gelu,
    /// `x * clamp(x + 3, 0, 6) / 6` (Howard et al., 2019).
    Hardswish,
    /// `ln(1 + e^x)` (Zheng et al., 2015).
    Softplus,
    /// Logistic sigmoid.
    Sigmoid,
    /// `x * sigmoid(x)` — Swish/SiLU (Ramachandran et al., 2017).
    Silu,
}

impl Activation {
    /// All activations the RepVGG case study sweeps (Table 4), in paper
    /// order.
    pub const REPVGG_SWEEP: [Activation; 4] = [
        Activation::ReLU,
        Activation::Gelu,
        Activation::Hardswish,
        Activation::Softplus,
    ];

    /// Applies the activation to a single value.
    ///
    /// ```
    /// use bolt_tensor::Activation;
    /// assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
    /// assert_eq!(Activation::ReLU.apply(3.0), 3.0);
    /// ```
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::ReLU => x.max(0.0),
            Activation::Gelu => {
                // tanh approximation used by CUTLASS's GELU_taylor epilogue.
                const SQRT_2_OVER_PI: f32 = 0.797_884_6;
                0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Hardswish => x * ((x + 3.0).clamp(0.0, 6.0)) / 6.0,
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Silu => x / (1.0 + (-x).exp()),
        }
    }

    /// FMA-equivalent arithmetic operations per element (excluding SFU ops).
    pub const fn fma_ops_per_elem(self) -> f64 {
        match self {
            Activation::Identity => 0.0,
            Activation::ReLU => 1.0,
            Activation::Gelu => 6.0,
            Activation::Hardswish => 4.0,
            Activation::Softplus => 3.0,
            Activation::Sigmoid => 2.0,
            Activation::Silu => 3.0,
        }
    }

    /// Special-function-unit (exp/tanh/log) operations per element. SFU
    /// throughput is much lower than FMA throughput, which is why Softplus
    /// costs the most in Table 4 (7.7% speed drop).
    pub const fn sfu_ops_per_elem(self) -> f64 {
        match self {
            Activation::Identity | Activation::ReLU | Activation::Hardswish => 0.0,
            Activation::Gelu => 1.0,
            Activation::Softplus => 2.0,
            Activation::Sigmoid => 1.0,
            Activation::Silu => 1.0,
        }
    }

    /// Short lowercase name (`"relu"`, `"hardswish"`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::ReLU => "relu",
            Activation::Gelu => "gelu",
            Activation::Hardswish => "hardswish",
            Activation::Softplus => "softplus",
            Activation::Sigmoid => "sigmoid",
            Activation::Silu => "silu",
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies an activation to every element of a slice in place.
pub fn apply_slice(activation: Activation, values: &mut [f32]) {
    if activation == Activation::Identity {
        return;
    }
    for v in values {
        *v = activation.apply(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu() {
        assert_eq!(Activation::ReLU.apply(-1.0), 0.0);
        assert_eq!(Activation::ReLU.apply(0.0), 0.0);
        assert_eq!(Activation::ReLU.apply(2.5), 2.5);
    }

    #[test]
    fn gelu_matches_known_points() {
        // GELU(0)=0, GELU is ~x for large x, ~0 for very negative x.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(6.0) - 6.0).abs() < 1e-3);
        assert!(Activation::Gelu.apply(-6.0).abs() < 1e-3);
        // GELU(1) ≈ 0.8412 (tanh approximation).
        assert!((Activation::Gelu.apply(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn hardswish_matches_definition() {
        assert_eq!(Activation::Hardswish.apply(-4.0), 0.0);
        assert_eq!(Activation::Hardswish.apply(4.0), 4.0);
        assert_eq!(Activation::Hardswish.apply(0.0), 0.0);
        assert!((Activation::Hardswish.apply(1.0) - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn softplus_is_stable_and_positive() {
        let large = Activation::Softplus.apply(100.0);
        assert!((large - 100.0).abs() < 1e-4);
        let small = Activation::Softplus.apply(-100.0);
        assert!((0.0..1e-4).contains(&small));
        assert!((Activation::Softplus.apply(0.0) - 2f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn silu_and_sigmoid_consistent() {
        let x = 1.7f32;
        let s = Activation::Sigmoid.apply(x);
        assert!((Activation::Silu.apply(x) - x * s).abs() < 1e-6);
    }

    #[test]
    fn monotone_activations() {
        for act in [Activation::ReLU, Activation::Softplus, Activation::Sigmoid] {
            let mut prev = f32::NEG_INFINITY;
            for i in -50..=50 {
                let y = act.apply(i as f32 * 0.2);
                assert!(y >= prev - 1e-6, "{act} not monotone at {i}");
                prev = y;
            }
        }
    }

    #[test]
    fn cost_profile_ordering() {
        // Softplus must be the most SFU-hungry of the Table 4 sweep.
        let sweep = Activation::REPVGG_SWEEP;
        let softplus_cost = Activation::Softplus.sfu_ops_per_elem();
        for act in sweep {
            assert!(act.sfu_ops_per_elem() <= softplus_cost);
        }
        assert_eq!(Activation::Identity.fma_ops_per_elem(), 0.0);
    }

    #[test]
    fn apply_slice_identity_is_noop() {
        let mut values = vec![1.0, -2.0, 3.0];
        apply_slice(Activation::Identity, &mut values);
        assert_eq!(values, vec![1.0, -2.0, 3.0]);
        apply_slice(Activation::ReLU, &mut values);
        assert_eq!(values, vec![1.0, 0.0, 3.0]);
    }
}
