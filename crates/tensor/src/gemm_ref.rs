//! Reference GEMM implementations used as ground truth.
//!
//! The kernels in `bolt-cutlass` are validated against these naive
//! implementations. Two variants are provided:
//!
//! * [`gemm_f32`] — plain `D = alpha * A @ B + beta * C` with all math in
//!   f32, results rounded to the output dtype.
//! * [`gemm_mixed`] — the tensor-core numerical contract: operands are
//!   rounded to their storage dtype *before* multiplication and accumulated
//!   in f32, mirroring HMMA semantics.

use crate::activation::Activation;
use crate::dtype::DType;
use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// `D = alpha * A @ B + beta * C` in f32 arithmetic.
///
/// `a` is `(m, k)`, `b` is `(k, n)`, and the optional `c` is `(m, n)` or a
/// broadcast row vector `(n,)` (the bias case). The output dtype matches
/// `a.dtype()`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
pub fn gemm_f32(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    alpha: f32,
    beta: f32,
) -> Result<Tensor> {
    gemm_with_epilogue(a, b, c, alpha, beta, Activation::Identity, a.dtype())
}

/// Reference GEMM with a fused epilogue: bias/residual `C`, scalars, an
/// activation, and an explicit output dtype (the "data type conversion"
/// epilogue pattern from the paper).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on inner-dimension or `C` shape
/// mismatches.
pub fn gemm_with_epilogue(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    alpha: f32,
    beta: f32,
    activation: Activation,
    out_dtype: DType,
) -> Result<Tensor> {
    let (m, k) = matrix_dims(a, "gemm A")?;
    let (kb, n) = matrix_dims(b, "gemm B")?;
    if k != kb {
        return Err(TensorError::shape(
            "gemm inner dimension",
            &[m, k],
            &[kb, n],
        ));
    }
    if let Some(c) = c {
        validate_c(c, m, n)?;
    }

    let mut out = Tensor::zeros(&[m, n], out_dtype);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get2(i, p) * b.get2(p, j);
            }
            let bias = c.map_or(0.0, |c| c_value(c, i, j));
            out.set2(i, j, activation.apply(alpha * acc + beta * bias));
        }
    }
    Ok(out)
}

/// Reference GEMM with the tensor-core numerical contract: every operand
/// element is rounded to its tensor's dtype before the multiply, products
/// are accumulated in f32, and the epilogue output is rounded to
/// `out_dtype`. For FP16 tensors (already rounded on store) this equals
/// [`gemm_with_epilogue`]; it differs for TF32.
///
/// # Errors
///
/// Same as [`gemm_with_epilogue`].
pub fn gemm_mixed(
    a: &Tensor,
    b: &Tensor,
    c: Option<&Tensor>,
    alpha: f32,
    beta: f32,
    activation: Activation,
    out_dtype: DType,
) -> Result<Tensor> {
    let (m, k) = matrix_dims(a, "gemm A")?;
    let (kb, n) = matrix_dims(b, "gemm B")?;
    if k != kb {
        return Err(TensorError::shape(
            "gemm inner dimension",
            &[m, k],
            &[kb, n],
        ));
    }
    if let Some(c) = c {
        validate_c(c, m, n)?;
    }
    let da = a.dtype();
    let db = b.dtype();
    let mut out = Tensor::zeros(&[m, n], out_dtype);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += da.quantize(a.get2(i, p)) * db.quantize(b.get2(p, j));
            }
            let bias = c.map_or(0.0, |c| c_value(c, i, j));
            out.set2(i, j, activation.apply(alpha * acc + beta * bias));
        }
    }
    Ok(out)
}

/// Back-to-back reference: `D0 = act0(alpha0*A@W0 + beta0*C0)`,
/// `D1 = act1(alpha1*D0@W1 + beta1*C1)` — the definition of the paper's
/// persistent-kernel fusion target (Equations 1–2). Used to validate the
/// fused B2B kernels in `bolt-cutlass`.
///
/// # Errors
///
/// Propagates shape errors from either GEMM.
#[allow(clippy::too_many_arguments)]
pub fn b2b_gemm_ref(
    a: &Tensor,
    w0: &Tensor,
    c0: Option<&Tensor>,
    alpha0: f32,
    beta0: f32,
    act0: Activation,
    w1: &Tensor,
    c1: Option<&Tensor>,
    alpha1: f32,
    beta1: f32,
    act1: Activation,
) -> Result<Tensor> {
    let d0 = gemm_with_epilogue(a, w0, c0, alpha0, beta0, act0, a.dtype())?;
    gemm_with_epilogue(&d0, w1, c1, alpha1, beta1, act1, a.dtype())
}

fn matrix_dims(t: &Tensor, context: &str) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::invalid(format!(
            "{context} must be rank 2, got rank {}",
            t.shape().rank()
        )));
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

fn validate_c(c: &Tensor, m: usize, n: usize) -> Result<()> {
    let ok = match c.shape().rank() {
        1 => c.shape().dim(0) == n,
        2 => c.shape().dim(0) == m && c.shape().dim(1) == n,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(TensorError::shape("gemm C/bias", &[m, n], c.shape().dims()))
    }
}

#[inline]
fn c_value(c: &Tensor, i: usize, j: usize) -> f32 {
    if c.shape().rank() == 1 {
        c.data()[j] // broadcast a row vector over rows (bias)
    } else {
        c.get2(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MatrixLayout;

    #[test]
    fn identity_times_matrix() {
        let mut a = Tensor::zeros(&[3, 3], DType::F32);
        for i in 0..3 {
            a.set2(i, i, 1.0);
        }
        let b = Tensor::randn(&[3, 3], DType::F32, 9);
        let d = gemm_f32(&a, &b, None, 1.0, 0.0).unwrap();
        assert!(d.allclose(&b, 1e-6).unwrap());
    }

    #[test]
    fn known_small_product() {
        let a = Tensor::from_vec(&[2, 2], DType::F32, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], DType::F32, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let d = gemm_f32(&a, &b, None, 1.0, 0.0).unwrap();
        assert_eq!(d.get2(0, 0), 19.0);
        assert_eq!(d.get2(0, 1), 22.0);
        assert_eq!(d.get2(1, 0), 43.0);
        assert_eq!(d.get2(1, 1), 50.0);
    }

    #[test]
    fn alpha_beta_and_full_c() {
        let a = Tensor::ones(&[2, 3], DType::F32);
        let b = Tensor::ones(&[3, 2], DType::F32);
        let c = Tensor::full(&[2, 2], DType::F32, 10.0);
        let d = gemm_f32(&a, &b, Some(&c), 2.0, 0.5).unwrap();
        // 2*3 + 0.5*10 = 11.
        assert!(d.data().iter().all(|&v| v == 11.0));
    }

    #[test]
    fn bias_broadcast_over_rows() {
        let a = Tensor::ones(&[2, 2], DType::F32);
        let b = Tensor::ones(&[2, 2], DType::F32);
        let bias = Tensor::from_vec(&[2], DType::F32, vec![1.0, -1.0]).unwrap();
        let d = gemm_with_epilogue(
            &a,
            &b,
            Some(&bias),
            1.0,
            1.0,
            Activation::Identity,
            DType::F32,
        )
        .unwrap();
        assert_eq!(d.get2(0, 0), 3.0);
        assert_eq!(d.get2(0, 1), 1.0);
        assert_eq!(d.get2(1, 0), 3.0);
    }

    #[test]
    fn epilogue_activation_applies() {
        let a = Tensor::from_vec(&[1, 1], DType::F32, vec![-5.0]).unwrap();
        let b = Tensor::ones(&[1, 1], DType::F32);
        let d = gemm_with_epilogue(&a, &b, None, 1.0, 0.0, Activation::ReLU, DType::F32).unwrap();
        assert_eq!(d.get2(0, 0), 0.0);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::ones(&[2, 3], DType::F32);
        let b = Tensor::ones(&[4, 2], DType::F32);
        assert!(gemm_f32(&a, &b, None, 1.0, 0.0).is_err());
        let c_bad = Tensor::ones(&[3, 3], DType::F32);
        let b_ok = Tensor::ones(&[3, 2], DType::F32);
        assert!(gemm_f32(&a, &b_ok, Some(&c_bad), 1.0, 1.0).is_err());
    }

    #[test]
    fn layout_invariance() {
        let a = Tensor::randn(&[4, 6], DType::F32, 1);
        let b = Tensor::randn(&[6, 5], DType::F32, 2);
        let d_rr = gemm_f32(&a, &b, None, 1.0, 0.0).unwrap();
        let a_col = a
            .clone()
            .with_matrix_layout(MatrixLayout::ColMajor)
            .unwrap();
        let d_cr = gemm_f32(&a_col, &b, None, 1.0, 0.0).unwrap();
        assert!(d_rr.allclose(&d_cr, 1e-5).unwrap());
    }

    #[test]
    fn mixed_precision_tf32_differs_from_f32() {
        let a = Tensor::from_vec(&[1, 1], DType::Tf32, vec![1.0 + 2f32.powi(-12)]).unwrap();
        let b = Tensor::ones(&[1, 1], DType::Tf32);
        // Tensor stores f32 verbatim for Tf32? quantize on store rounds it.
        let exact = gemm_mixed(&a, &b, None, 1.0, 0.0, Activation::Identity, DType::F32).unwrap();
        assert_eq!(exact.get2(0, 0), 1.0);
    }

    #[test]
    fn b2b_matches_two_sequential_gemms() {
        let a = Tensor::randn(&[8, 4], DType::F16, 1);
        let w0 = Tensor::randn(&[4, 6], DType::F16, 2);
        let w1 = Tensor::randn(&[6, 3], DType::F16, 3);
        let fused = b2b_gemm_ref(
            &a,
            &w0,
            None,
            1.0,
            0.0,
            Activation::ReLU,
            &w1,
            None,
            1.0,
            0.0,
            Activation::ReLU,
        )
        .unwrap();
        let d0 = gemm_with_epilogue(&a, &w0, None, 1.0, 0.0, Activation::ReLU, DType::F16).unwrap();
        let d1 =
            gemm_with_epilogue(&d0, &w1, None, 1.0, 0.0, Activation::ReLU, DType::F16).unwrap();
        assert_eq!(fused, d1);
    }
}
