//! Dense tensors with canonical `f32` storage and dtype-faithful rounding.
//!
//! All arithmetic in the reproduction happens in `f32` (the tensor-core
//! accumulator precision); reduced-precision dtypes are emulated by rounding
//! every stored element through the dtype ([`DType::quantize`]). This gives
//! bit-reproducible numerics for FP16 kernels without carrying a generic
//! element type through every API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dtype::DType;
use crate::error::TensorError;
use crate::layout::{Layout, MatrixLayout};
use crate::shape::Shape;
use crate::Result;

/// A dense tensor.
#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    dtype: DType,
    shape: Shape,
    layout: Layout,
    data: Vec<f32>,
}

/// Process-wide count of full-tensor deep copies (every `Tensor::clone`).
///
/// The executor tests use deltas of this counter to prove the hot path
/// stays copy-free: cloning a tensor duplicates its entire `data` buffer,
/// so an interpreter that clones per step shows up as a count that grows
/// with model depth.
static CLONE_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Returns the number of full-tensor clones performed by this process so
/// far. Monotonic; take deltas around the region under test.
pub fn clone_count() -> u64 {
    CLONE_COUNT.load(std::sync::atomic::Ordering::Relaxed)
}

/// Process-wide count of fresh tensor data buffers. Every constructor
/// that brings a new backing `Vec<f32>` into existence bumps it (zeros,
/// randn, clones, layout transforms); constructors that take ownership of
/// an existing buffer ([`Tensor::from_vec`],
/// [`Tensor::from_quantized_vec`]) do not.
///
/// The executor tests use deltas of this counter to prove the pooled hot
/// path allocates nothing per step after warmup: a runtime that allocates
/// its outputs per kernel shows up as a count that grows with model depth.
static ALLOC_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Returns the number of tensor data-buffer allocations performed by this
/// process so far. Monotonic; take deltas around the region under test.
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(std::sync::atomic::Ordering::Relaxed)
}

#[inline]
fn note_alloc() {
    ALLOC_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        CLONE_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        note_alloc();
        Tensor {
            dtype: self.dtype,
            shape: self.shape.clone(),
            layout: self.layout,
            data: self.data.clone(),
        }
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize], dtype: DType) -> Self {
        let shape = Shape::new(dims);
        let layout = default_layout(&shape);
        note_alloc();
        Tensor {
            dtype,
            data: vec![0.0; shape.numel()],
            shape,
            layout,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize], dtype: DType) -> Self {
        Self::full(dims, dtype, 1.0)
    }

    /// Creates a zero-filled NHWC activation tensor with logical dimensions
    /// `(n, c, h, w)` (NCHW order, matching [`Tensor::dims4`]).
    pub fn zeros_nhwc(n: usize, c: usize, h: usize, w: usize, dtype: DType) -> Self {
        note_alloc();
        Tensor {
            dtype,
            shape: Shape::new(&[n, h, w, c]),
            layout: Layout::Nhwc,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor filled with `value` (rounded to `dtype`).
    pub fn full(dims: &[usize], dtype: DType, value: f32) -> Self {
        let shape = Shape::new(dims);
        let layout = default_layout(&shape);
        let v = dtype.quantize(value);
        note_alloc();
        Tensor {
            dtype,
            data: vec![v; shape.numel()],
            shape,
            layout,
        }
    }

    /// Creates a tensor with standard-normal entries from a deterministic
    /// seed, rounded to `dtype`. The same seed always yields the same
    /// tensor, which keeps every test and benchmark reproducible.
    pub fn randn(dims: &[usize], dtype: DType, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let layout = default_layout(&shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.numel())
            .map(|_| {
                // Box-Muller from two uniforms; cheap and dependency-free.
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                dtype.quantize(z * 0.5)
            })
            .collect();
        note_alloc();
        Tensor {
            dtype,
            shape,
            layout,
            data,
        }
    }

    /// Creates a tensor from existing data (rounded to `dtype`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(dims: &[usize], dtype: DType, data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::shape("Tensor::from_vec", dims, &[data.len()]));
        }
        let layout = default_layout(&shape);
        let data = data.into_iter().map(|v| dtype.quantize(v)).collect();
        Ok(Tensor {
            dtype,
            shape,
            layout,
            data,
        })
    }

    /// Creates a tensor by taking ownership of `data` whose values are
    /// already rounded to `dtype`, skipping [`from_vec`](Tensor::from_vec)'s
    /// quantization pass. The workspace-pool executor uses this to wrap
    /// recycled buffers it filled through dtype-quantizing stores.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_quantized_vec(dims: &[usize], dtype: DType, data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::shape(
                "Tensor::from_quantized_vec",
                dims,
                &[data.len()],
            ));
        }
        let layout = default_layout(&shape);
        Ok(Tensor {
            dtype,
            shape,
            layout,
            data,
        })
    }

    /// [`Tensor::from_quantized_vec`] for NHWC activations: takes ownership
    /// of an NHWC-ordered buffer with logical dimensions `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != n*c*h*w`.
    pub fn from_quantized_vec_nhwc(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        dtype: DType,
        data: Vec<f32>,
    ) -> Result<Self> {
        if data.len() != n * c * h * w {
            return Err(TensorError::shape(
                "Tensor::from_quantized_vec_nhwc",
                &[n, h, w, c],
                &[data.len()],
            ));
        }
        Ok(Tensor {
            dtype,
            shape: Shape::new(&[n, h, w, c]),
            layout: Layout::Nhwc,
            data,
        })
    }

    /// Consumes the tensor and returns its backing buffer, so the executor
    /// can recycle a retired intermediate's storage instead of freeing it.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The element data type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The logical shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The memory layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Raw storage, in layout order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage. Callers are responsible for keeping values
    /// representable in `self.dtype()`; prefer [`Tensor::set2`]/[`Tensor::set4`].
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Storage footprint in bytes at the tensor's dtype (not the canonical
    /// f32 backing store) — what the GPU simulator charges for.
    pub fn size_bytes(&self) -> usize {
        (self.numel() * self.dtype.size_bits()).div_ceil(8)
    }

    /// Reinterprets the tensor with a new matrix layout **without moving
    /// data** (logical indexing changes accordingly).
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not rank 2.
    pub fn with_matrix_layout(mut self, layout: MatrixLayout) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::invalid(format!(
                "with_matrix_layout requires rank 2, got rank {}",
                self.shape.rank()
            )));
        }
        // Physically transpose the storage if the layout actually changes.
        if self.layout != Layout::Matrix(layout) {
            let (r, c) = (self.shape.dim(0), self.shape.dim(1));
            let mut out = vec![0.0f32; r * c];
            let old = match self.layout {
                Layout::Matrix(m) => m,
                _ => MatrixLayout::RowMajor,
            };
            for i in 0..r {
                for j in 0..c {
                    let src = old.offset(i, j, old.default_ld(r, c));
                    let dst = layout.offset(i, j, layout.default_ld(r, c));
                    out[dst] = self.data[src];
                }
            }
            self.data = out;
            self.layout = Layout::Matrix(layout);
        }
        Ok(self)
    }

    /// Logical matrix element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of bounds.
    #[inline]
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        debug_assert!(
            row < r && col < c,
            "index ({row},{col}) out of bounds ({r},{c})"
        );
        match self.layout {
            Layout::Matrix(m) => self.data[m.offset(row, col, m.default_ld(r, c))],
            _ => self.data[row * c + col],
        }
    }

    /// Sets logical matrix element `(row, col)`, rounding to dtype.
    #[inline]
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        debug_assert!(row < r && col < c);
        let v = self.dtype.quantize(value);
        match self.layout {
            Layout::Matrix(m) => {
                let off = m.offset(row, col, m.default_ld(r, c));
                self.data[off] = v;
            }
            _ => self.data[row * c + col] = v,
        }
    }

    /// Logical 4-D element `(n, c, h, w)` (NCHW coordinates regardless of
    /// the physical layout).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or indices are out of bounds.
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let dims = self.dims4();
        self.data[self.layout.offset_nchw((n, c, h, w), dims)]
    }

    /// Sets logical 4-D element `(n, c, h, w)`, rounding to dtype.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let dims = self.dims4();
        let off = self.layout.offset_nchw((n, c, h, w), dims);
        self.data[off] = self.dtype.quantize(value);
    }

    /// The logical `(N, C, H, W)` dimensions of a rank-4 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.shape.rank(), 4, "dims4 requires a rank-4 tensor");
        match self.layout {
            Layout::Nhwc => (
                self.shape.dim(0),
                self.shape.dim(3),
                self.shape.dim(1),
                self.shape.dim(2),
            ),
            _ => (
                self.shape.dim(0),
                self.shape.dim(1),
                self.shape.dim(2),
                self.shape.dim(3),
            ),
        }
    }

    /// Converts a rank-4 activation tensor between NCHW and NHWC, moving the
    /// data. A no-op when the layout already matches.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 tensors.
    pub fn to_activation_layout(&self, target: Layout) -> Result<Tensor> {
        if self.shape.rank() != 4 {
            return Err(TensorError::invalid(format!(
                "to_activation_layout requires rank 4, got {}",
                self.shape.rank()
            )));
        }
        if !matches!(target, Layout::Nchw | Layout::Nhwc) {
            return Err(TensorError::UnsupportedLayout {
                context: "to_activation_layout".into(),
                layout: target.name(),
            });
        }
        if self.layout == target {
            return Ok(self.clone());
        }
        let (n, c, h, w) = self.dims4();
        let dims = match target {
            Layout::Nchw => vec![n, c, h, w],
            _ => vec![n, h, w, c],
        };
        note_alloc();
        let mut out = Tensor {
            dtype: self.dtype,
            shape: Shape::new(&dims),
            layout: target,
            data: vec![0.0; self.numel()],
        };
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        out.set4(ni, ci, hi, wi, self.get4(ni, ci, hi, wi));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Pads the channel dimension of an NHWC tensor with zeros up to
    /// `new_c` channels. This is the data movement behind Bolt's automated
    /// kernel padding (Section 3.2.3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not NHWC or `new_c` is smaller than
    /// the current channel count.
    pub fn pad_channels_nhwc(&self, new_c: usize) -> Result<Tensor> {
        if self.layout != Layout::Nhwc {
            return Err(TensorError::UnsupportedLayout {
                context: "pad_channels_nhwc".into(),
                layout: self.layout.name(),
            });
        }
        let (n, c, h, w) = self.dims4();
        if new_c < c {
            return Err(TensorError::invalid(format!(
                "pad_channels_nhwc: new_c {new_c} < current channels {c}"
            )));
        }
        note_alloc();
        let mut out = Tensor {
            dtype: self.dtype,
            shape: Shape::new(&[n, h, w, new_c]),
            layout: Layout::Nhwc,
            data: vec![0.0; n * h * w * new_c],
        };
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    for ci in 0..c {
                        out.set4(ni, ci, hi, wi, self.get4(ni, ci, hi, wi));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Pads a row-major matrix with zeros to `(new_rows, new_cols)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not a matrix or the target is
    /// smaller than the current shape.
    pub fn pad_matrix(&self, new_rows: usize, new_cols: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::invalid("pad_matrix requires rank 2"));
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        if new_rows < r || new_cols < c {
            return Err(TensorError::invalid(format!(
                "pad_matrix: target ({new_rows},{new_cols}) smaller than ({r},{c})"
            )));
        }
        let mut out = Tensor::zeros(&[new_rows, new_cols], self.dtype);
        for i in 0..r {
            for j in 0..c {
                out.set2(i, j, self.get2(i, j));
            }
        }
        Ok(out)
    }

    /// Largest absolute elementwise difference against `other`.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::shape(
                "max_abs_diff",
                self.shape.dims(),
                other.shape.dims(),
            ));
        }
        // Compare in logical order so layout differences don't matter.
        if self.layout == other.layout {
            Ok(self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max))
        } else if self.shape.rank() == 4 {
            let (n, c, h, w) = self.dims4();
            let mut worst = 0.0f32;
            for ni in 0..n {
                for ci in 0..c {
                    for hi in 0..h {
                        for wi in 0..w {
                            let d = (self.get4(ni, ci, hi, wi) - other.get4(ni, ci, hi, wi)).abs();
                            worst = worst.max(d);
                        }
                    }
                }
            }
            Ok(worst)
        } else {
            Err(TensorError::UnsupportedLayout {
                context: "max_abs_diff with differing layouts".into(),
                layout: other.layout.name(),
            })
        }
    }

    /// True if every element of `self` is within `tol` of `other`.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(other)? <= tol)
    }
}

fn default_layout(shape: &Shape) -> Layout {
    match shape.rank() {
        2 => Layout::Matrix(MatrixLayout::RowMajor),
        4 => Layout::Nchw,
        _ => Layout::Contiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3], DType::F32);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4], DType::F16);
        assert!(o.data().iter().all(|&v| v == 1.0));
        assert_eq!(o.layout(), Layout::Contiguous);
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn(&[16, 16], DType::F16, 42);
        let b = Tensor::randn(&[16, 16], DType::F16, 42);
        assert_eq!(a, b);
        let c = Tensor::randn(&[16, 16], DType::F16, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn f16_tensor_quantizes_on_store() {
        let mut t = Tensor::zeros(&[2, 2], DType::F16);
        t.set2(0, 0, 1.0 + 2f32.powi(-12));
        assert_eq!(t.get2(0, 0), 1.0);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(&[2, 2], DType::F32, vec![1.0; 3]).is_err());
        let t = Tensor::from_vec(&[2, 2], DType::F32, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.get2(1, 0), 3.0);
    }

    #[test]
    fn matrix_layout_transpose_preserves_logical_values() {
        let t = Tensor::from_vec(&[2, 3], DType::F32, (0..6).map(|v| v as f32).collect()).unwrap();
        let col = t
            .clone()
            .with_matrix_layout(MatrixLayout::ColMajor)
            .unwrap();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get2(i, j), col.get2(i, j));
            }
        }
        // Physical storage differs.
        assert_ne!(t.data(), col.data());
    }

    #[test]
    fn nchw_nhwc_round_trip() {
        let t = Tensor::randn(&[2, 3, 4, 5], DType::F32, 7);
        let nhwc = t.to_activation_layout(Layout::Nhwc).unwrap();
        assert_eq!(nhwc.shape().dims(), &[2, 4, 5, 3]);
        let back = nhwc.to_activation_layout(Layout::Nchw).unwrap();
        assert_eq!(t, back);
        // Logical values agree across layouts.
        assert_eq!(t.get4(1, 2, 3, 4), nhwc.get4(1, 2, 3, 4));
    }

    #[test]
    fn pad_channels() {
        let t = Tensor::randn(&[1, 3, 2, 2], DType::F16, 5)
            .to_activation_layout(Layout::Nhwc)
            .unwrap();
        let p = t.pad_channels_nhwc(8).unwrap();
        let (_, c, _, _) = p.dims4();
        assert_eq!(c, 8);
        assert_eq!(p.get4(0, 1, 1, 1), t.get4(0, 1, 1, 1));
        assert_eq!(p.get4(0, 7, 0, 0), 0.0);
        assert!(t.pad_channels_nhwc(2).is_err());
    }

    #[test]
    fn pad_matrix_zero_fills() {
        let t = Tensor::ones(&[2, 3], DType::F16);
        let p = t.pad_matrix(4, 8).unwrap();
        assert_eq!(p.shape().dims(), &[4, 8]);
        assert_eq!(p.get2(1, 2), 1.0);
        assert_eq!(p.get2(3, 7), 0.0);
    }

    #[test]
    fn size_bytes_uses_dtype() {
        let t = Tensor::zeros(&[10, 10], DType::F16);
        assert_eq!(t.size_bytes(), 200);
        let b = Tensor::zeros(&[16], DType::B1);
        assert_eq!(b.size_bytes(), 2);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::ones(&[2, 2], DType::F32);
        let mut b = a.clone();
        b.set2(1, 1, 1.5);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.allclose(&b, 0.5).unwrap());
        assert!(!a.allclose(&b, 0.4).unwrap());
        let c = Tensor::ones(&[4], DType::F32);
        assert!(a.max_abs_diff(&c).is_err());
    }
}
