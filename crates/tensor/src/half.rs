//! Software half-precision floats.
//!
//! Tensor cores consume FP16/BF16 inputs and accumulate in FP32. To emulate
//! those numerics bit-faithfully on the CPU, this module implements IEEE 754
//! binary16 ([`F16`]) and bfloat16 ([`Bf16`]) as `u16` newtypes with
//! round-to-nearest-even conversions from `f32`. The functional kernel
//! executors in `bolt-cutlass` round every loaded element through these
//! types so that fused and unfused kernels can be compared for *exact*
//! equality, the same property the CUTLASS test suite relies on.

use std::fmt;

/// IEEE 754 binary16 (half precision) stored as its raw bit pattern.
///
/// Conversions use round-to-nearest-even, matching `__float2half_rn` on
/// NVIDIA GPUs.
///
/// ```
/// use bolt_tensor::F16;
/// let x = F16::from_f32(1.0 / 3.0);
/// assert!((x.to_f32() - 1.0 / 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts this `F16` to `f32` exactly (every f16 is representable).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Returns `true` if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// bfloat16: the upper 16 bits of an IEEE 754 binary32, with
/// round-to-nearest-even truncation.
///
/// ```
/// use bolt_tensor::Bf16;
/// let x = Bf16::from_f32(3.14159);
/// assert!((x.to_f32() - 3.14159).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Creates a `Bf16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet NaN, preserving the sign.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + lsb);
        // Round-to-nearest-even on the truncated mantissa bits.
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts this `Bf16` to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Returns `true` if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Self {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` to the nearest representable f16 value and returns it as
/// an `f32`. This is the "quantize through f16" helper the functional kernel
/// executors use on every load/store, so the common case — a result in the
/// f16 normal range — runs branch-light in f32 bit arithmetic: adding
/// `0xFFF + lsb` before truncating the low 13 mantissa bits implements
/// round-to-nearest-even exactly (a carry propagates into the exponent on
/// the all-ones mantissa, which is the correct rounded value). Inputs whose
/// result could be subnormal, infinite, or NaN take the full conversion.
#[inline]
pub fn round_f16(value: f32) -> f32 {
    let bits = value.to_bits();
    let exp = (bits >> 23) & 0xFF;
    // f32 exponents 113..=141 are |v| in [2^-14, 2^14 * (2 - 2^-23)):
    // the result is a normal f16 (rounding up from the top of the range
    // lands on 2^15, still finite in f16).
    if (113..=141).contains(&exp) {
        let lsb = (bits >> 13) & 1;
        let rounded = bits.wrapping_add(0xFFF + lsb);
        return f32::from_bits(rounded & !0x1FFF);
    }
    if bits & 0x7FFF_FFFF == 0 {
        return value; // signed zero passes through
    }
    F16::from_f32(value).to_f32()
}

/// Rounds an `f32` through bf16 precision and back.
#[inline]
pub fn round_bf16(value: f32) -> f32 {
    Bf16::from_f32(value).to_f32()
}

/// Rounds an `f32` to TF32 precision (19-bit mantissa truncated to 10 bits),
/// the tensor-core input format for FP32 GEMMs on Ampere.
pub fn round_tf32(value: f32) -> f32 {
    if value.is_nan() {
        return value;
    }
    let bits = value.to_bits();
    // TF32 keeps 10 explicit mantissa bits; round-to-nearest-even the rest.
    let shift = 13u32;
    let lsb = (bits >> shift) & 1;
    let rounded = bits.wrapping_add((1 << (shift - 1)) - 1 + lsb);
    f32::from_bits(rounded & !((1 << shift) - 1))
}

fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mantissa = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if mantissa == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7C00 | ((mantissa >> 13) as u16).max(1)
        };
    }

    // Re-bias the exponent from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal range. Round the 23-bit mantissa to 10 bits (RNE).
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_man = (mantissa >> 13) as u16;
        let round_bits = mantissa & 0x1FFF;
        let halfway = 0x1000;
        let mut result = sign | half_exp | half_man;
        if round_bits > halfway || (round_bits == halfway && (half_man & 1) == 1) {
            result = result.wrapping_add(1); // may carry into exponent: correct
        }
        return result;
    }
    if unbiased >= -25 {
        // Subnormal range: value = man * 2^(unbiased - 23), subnormal unit
        // is 2^-24, so the f16 mantissa is man >> (-unbiased - 1).
        let shift = (-unbiased - 1) as u32; // 14..=24
        let man = mantissa | 0x0080_0000; // implicit leading 1
        let half_man = (man >> shift) as u16;
        let round_mask = (1u32 << shift) - 1;
        let round_bits = man & round_mask;
        let halfway = 1u32 << (shift - 1);
        let mut result = sign | half_man;
        if round_bits > halfway || (round_bits == halfway && (half_man & 1) == 1) {
            result = result.wrapping_add(1);
        }
        return result;
    }
    // Underflow to signed zero.
    sign
}

fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mantissa = (bits & 0x03FF) as u32;

    if exp == 0 {
        if mantissa == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value = mantissa * 2^-24. Normalize so the top set bit
        // becomes the implicit leading 1.
        let shift = mantissa.leading_zeros() - 21; // 1..=10 for 10-bit field
        let exp32 = 113 - shift; // 127 - 14 - shift
        let man32 = (mantissa << shift) & 0x03FF;
        return f32::from_bits(sign | (exp32 << 23) | (man32 << 13));
    }
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (mantissa << 13));
    }
    let exp32 = exp + 127 - 15;
    f32::from_bits(sign | (exp32 << 23) | (mantissa << 13))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn f16_constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2f32.powi(-14));
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
    }

    #[test]
    fn f16_underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-10).to_f32(), 0.0);
    }

    #[test]
    fn f16_subnormals() {
        let smallest = 2f32.powi(-24);
        assert_eq!(F16::from_f32(smallest).to_f32(), smallest);
        let sub = 3.0 * 2f32.powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn f16_nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 in f16; RNE picks 2048.
        assert_eq!(F16::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is exactly between 2050 and 2052; RNE picks 2052.
        assert_eq!(F16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn f16_rounding_carry_into_exponent() {
        // 2047.9999 rounds up to 2048 which needs an exponent bump.
        let v = 2047.9999f32;
        assert_eq!(F16::from_f32(v).to_f32(), 2048.0);
    }

    #[test]
    fn bf16_round_trips() {
        for v in [0.0f32, 1.0, -2.5, 3.0e38, 1.0e-38] {
            let r = Bf16::from_f32(v).to_f32();
            if v == 0.0 {
                assert_eq!(r, v);
            } else {
                assert!((r - v).abs() / v.abs() < 0.01, "value {v} -> {r}");
            }
        }
    }

    #[test]
    fn bf16_nan() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn tf32_keeps_10_mantissa_bits() {
        let v = 1.0 + 2f32.powi(-10);
        assert_eq!(round_tf32(v), v);
        let w = 1.0 + 2f32.powi(-13);
        assert_eq!(round_tf32(w), 1.0);
    }

    #[test]
    fn round_f16_is_idempotent() {
        for i in 0..2000 {
            let v = (i as f32) * 0.37 - 350.0;
            let once = round_f16(v);
            assert_eq!(round_f16(once), once);
        }
    }

    #[test]
    fn round_f16_matches_full_conversion() {
        // Sweep every f32 exponent crossed with mantissa rounding
        // boundaries (below/at/above halfway, carry-propagating all-ones)
        // so the fast normal-range path and its range edges agree with
        // the full conversion bit-for-bit.
        for exp in 0u32..=0xFF {
            for man in [
                0u32, 1, 0xFFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x3F_FFFF, 0x7F_FFFF,
            ] {
                for sign in [0u32, 0x8000_0000] {
                    let v = f32::from_bits(sign | (exp << 23) | man);
                    let fast = round_f16(v);
                    let full = F16::from_f32(v).to_f32();
                    if full.is_nan() {
                        assert!(fast.is_nan(), "exp {exp} man {man:#x}");
                    } else {
                        assert_eq!(
                            fast.to_bits(),
                            full.to_bits(),
                            "exp {exp} man {man:#x} sign {sign:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_f16_bits_round_trip() {
        // Every finite f16 bit pattern must survive f16 -> f32 -> f16.
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }
}
