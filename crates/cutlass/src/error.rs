//! Error type for the templated kernel library.

use std::fmt;

use bolt_tensor::TensorError;

/// Errors produced when validating or executing templated kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The template parameters violate a CUTLASS legality rule.
    IllegalConfig {
        /// Which rule was violated and the offending values.
        reason: String,
    },
    /// The kernel cannot serve this problem (e.g. threadblock residence
    /// does not hold for a persistent kernel).
    UnsupportedProblem {
        /// Why the problem is outside the kernel's domain.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl KernelError {
    /// Convenience constructor for [`KernelError::IllegalConfig`].
    pub fn illegal(reason: impl Into<String>) -> Self {
        KernelError::IllegalConfig {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`KernelError::UnsupportedProblem`].
    pub fn unsupported(reason: impl Into<String>) -> Self {
        KernelError::UnsupportedProblem {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::IllegalConfig { reason } => write!(f, "illegal template config: {reason}"),
            KernelError::UnsupportedProblem { reason } => {
                write!(f, "unsupported problem: {reason}")
            }
            KernelError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for KernelError {
    fn from(e: TensorError) -> Self {
        KernelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = KernelError::illegal("warp count 3 not in {1,2,4,8,16}");
        assert!(e.to_string().contains("warp count"));
        assert!(e.source().is_none());
        let t = KernelError::from(TensorError::invalid("x"));
        assert!(t.source().is_some());
    }
}
