//! Implicit-GEMM Conv2D (forward) kernels.
//!
//! CUTLASS lowers NHWC convolutions onto the GEMM hierarchy without
//! materializing the im2col matrix ("implicit GEMM"): the GEMM's M axis is
//! `N*P*Q`, N is the output channels `K`, and K is `R*S*C`. The functional
//! executor here performs the same lowering explicitly (im2col + the tiled
//! GEMM executor), so fused epilogues and persistent Conv fusion share all
//! of the GEMM machinery; the performance model accounts for the traffic
//! differences (halo re-reads, channel-count alignment).

use serde::{Deserialize, Serialize};

use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile, KernelTime};
use bolt_tensor::conv_ref::{filter_as_matrix, im2col, im2col_into, Conv2dProblem};
use bolt_tensor::{DType, Tensor, TensorError};

use crate::epilogue::Epilogue;
use crate::error::KernelError;
use crate::gemm::{GemmKernel, GemmProblem};
use crate::perf;
use crate::template::GemmConfig;
use crate::tiles::TileShape;
use crate::Result;

/// Template parameters of an implicit-GEMM Conv2D kernel. Identical to the
/// GEMM parameter space, plus conv-specific defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dConfig {
    /// The underlying GEMM tiling.
    pub gemm: GemmConfig,
}

impl Conv2dConfig {
    /// A solid Turing default for FP16 convolutions.
    pub fn turing_default() -> Self {
        let mut gemm = GemmConfig::turing_default();
        gemm.threadblock = TileShape::new(128, 64, 32);
        gemm.warp = TileShape::new(64, 32, 32);
        Conv2dConfig { gemm }
    }
}

/// A fully instantiated Conv2D kernel: problem + config + epilogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2dKernel {
    /// Convolution geometry.
    pub problem: Conv2dProblem,
    /// Template parameters.
    pub config: Conv2dConfig,
    /// Fused epilogue (bias is per output channel).
    pub epilogue: Epilogue,
    /// Element type of activations and filters.
    pub element: DType,
}

impl Conv2dKernel {
    /// Creates a kernel, clamping alignments to the channel counts (the
    /// NHWC/KRSC contiguous dimension is `C`; the output's is `K`).
    pub fn new(
        problem: Conv2dProblem,
        mut config: Conv2dConfig,
        epilogue: Epilogue,
        element: DType,
    ) -> Self {
        use bolt_gpu_sim::memory::max_alignment;
        let in_align = max_alignment(element, problem.c);
        let out_align = max_alignment(element, problem.k);
        config.gemm.alignment_a = config.gemm.alignment_a.min(in_align);
        config.gemm.alignment_b = config.gemm.alignment_b.min(in_align);
        config.gemm.alignment_c = config.gemm.alignment_c.min(out_align);
        Conv2dKernel {
            problem,
            config,
            epilogue,
            element,
        }
    }

    /// The implicit-GEMM problem this convolution lowers to.
    pub fn implicit_gemm(&self) -> GemmProblem {
        let (m, n, k) = self.problem.implicit_gemm_mnk();
        GemmProblem {
            m,
            n,
            k,
            batch: 1,
            element: self.element,
            ..GemmProblem::fp16(m, n, k)
        }
    }

    /// Validates the template against `arch`.
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError::IllegalConfig`] from the config check.
    pub fn validate(&self, arch: &GpuArch) -> Result<()> {
        self.config.gemm.validate(arch, self.element)
    }

    /// Functional execution: NHWC `input`, KRSC `filter`, optional
    /// per-channel `bias` of length `K`. Returns the NHWC output.
    ///
    /// # Errors
    ///
    /// Returns shape/layout errors for mismatched operands.
    pub fn run(&self, input: &Tensor, filter: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
        if let Some(b) = bias {
            if b.shape().rank() != 1 || b.shape().dim(0) != self.problem.k {
                return Err(KernelError::Tensor(TensorError::shape(
                    "conv2d bias",
                    &[self.problem.k],
                    b.shape().dims(),
                )));
            }
        }
        // Lower to the implicit GEMM and reuse the tiled GEMM executor so
        // the tiling/rounding behaviour is identical to the GEMM path.
        let cols = im2col(&self.problem, input)?;
        let fm = filter_as_matrix(&self.problem, filter)?;
        let gemm = GemmKernel {
            problem: self.implicit_gemm(),
            config: self.config.gemm,
            epilogue: self.epilogue,
            parallel_m_rows: crate::gemm::PARALLEL_M_ROWS,
        };
        let (d, _) = gemm.run(&cols, &fm, bias)?;

        // Fold the (N*P*Q, K) result back into NHWC.
        let (p, q) = (self.problem.out_h(), self.problem.out_w());
        let mut out = Tensor::zeros_nhwc(
            self.problem.n,
            self.problem.k,
            p,
            q,
            self.epilogue.out_dtype,
        );
        for n in 0..self.problem.n {
            for oy in 0..p {
                for ox in 0..q {
                    let row = (n * p + oy) * q + ox;
                    for k in 0..self.problem.k {
                        out.set4(n, k, oy, ox, d.get2(row, k));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Allocation-free execution into a caller-provided NHWC buffer.
    ///
    /// `input_nhwc` is the raw NHWC activation with `in_c` physical
    /// channels (`in_c <= problem.c`; missing channels read as zero, which
    /// folds Bolt's channel padding into the im2col lowering instead of
    /// materializing a padded copy). `filter_matrix` is the prepacked
    /// `(R*S*C, K)` operand from `filter_as_matrix`, `cols`/`acc` are
    /// reusable scratch buffers, and `out` receives the NHWC output.
    ///
    /// No fold-back pass exists on this path: the implicit GEMM's
    /// row-major `(N*P*Q, K)` result *is* the NHWC layout (`row * K + k`
    /// equals `((n*P + oy)*Q + ox)*K + k`), so the GEMM epilogue writes
    /// the output activation directly. Bit-identical to
    /// [`Conv2dKernel::run`] on the channel-padded input.
    ///
    /// `filter_quantized` is forwarded as the GEMM's `b_quantized`
    /// assertion: pass `true` only when every element of `filter_matrix`
    /// is already exactly representable in the problem's element dtype
    /// (see [`GemmKernel::run_into`]).
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    #[allow(clippy::too_many_arguments)]
    pub fn run_into(
        &self,
        input_nhwc: &[f32],
        in_c: usize,
        filter_matrix: &[f32],
        bias: Option<&Tensor>,
        cols: &mut Vec<f32>,
        acc: &mut Vec<f32>,
        out: &mut [f32],
        filter_quantized: bool,
    ) -> Result<()> {
        if let Some(b) = bias {
            if b.shape().rank() != 1 || b.shape().dim(0) != self.problem.k {
                return Err(KernelError::Tensor(TensorError::shape(
                    "conv2d bias",
                    &[self.problem.k],
                    b.shape().dims(),
                )));
            }
        }
        let (m, _, kk) = self.problem.implicit_gemm_mnk();
        cols.resize(m * kk, 0.0);
        im2col_into(&self.problem, input_nhwc, in_c, cols)?;
        let gemm = GemmKernel {
            problem: self.implicit_gemm(),
            config: self.config.gemm,
            epilogue: self.epilogue,
            parallel_m_rows: crate::gemm::PARALLEL_M_ROWS,
        };
        gemm.run_into(cols, filter_matrix, bias, acc, out, filter_quantized)
    }

    /// The kernel's performance profile for the GPU simulator.
    pub fn profile(&self, arch: &GpuArch) -> KernelProfile {
        perf::conv2d_profile(
            arch,
            &self.problem,
            &self.config.gemm,
            &self.epilogue,
            self.element,
            None,
        )
    }

    /// Simulated execution time on `arch`.
    pub fn time(&self, arch: &GpuArch) -> KernelTime {
        simulate_kernel(arch, &self.profile(arch))
    }

    /// Kernel name used in timelines and emitted code.
    pub fn name(&self) -> String {
        format!(
            "cutlass_conv2d_fprop_{}_{}_{}",
            self.element,
            self.config.gemm.tag(),
            self.epilogue.activation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::conv_ref::{conv2d_ref, random_filter, random_input};
    use bolt_tensor::Activation;

    fn small_config() -> Conv2dConfig {
        let mut c = Conv2dConfig::turing_default();
        c.gemm.threadblock = TileShape::new(16, 16, 8);
        c.gemm.warp = TileShape::new(8, 8, 8);
        c
    }

    #[test]
    fn matches_direct_reference() {
        let p = Conv2dProblem::new(2, 6, 5, 3, 4, 3, 3, (1, 1), (1, 1));
        let kernel = Conv2dKernel::new(p, small_config(), Epilogue::linear(DType::F16), DType::F16);
        let x = random_input(&p, DType::F16, 1);
        let f = random_filter(&p, DType::F16, 2);
        let got = kernel.run(&x, &f, None).unwrap();
        let expect = conv2d_ref(&p, &x, &f, None, Activation::Identity).unwrap();
        // f16 rounding at matching points; tiled k-order differs from the
        // reference's (r,s,c) loop order only in float addition order, and
        // both quantize identically, so tolerance is a few ULP of f16.
        assert!(got.max_abs_diff(&expect).unwrap() < 2e-2);
    }

    #[test]
    fn bias_relu_epilogue_matches_reference() {
        let p = Conv2dProblem::new(1, 5, 5, 4, 6, 3, 3, (2, 2), (1, 1));
        let kernel = Conv2dKernel::new(
            p,
            small_config(),
            Epilogue::bias_activation(Activation::ReLU, DType::F16),
            DType::F16,
        );
        let x = random_input(&p, DType::F16, 3);
        let f = random_filter(&p, DType::F16, 4);
        let b = Tensor::randn(&[6], DType::F16, 5);
        let got = kernel.run(&x, &f, Some(&b)).unwrap();
        let expect = conv2d_ref(&p, &x, &f, Some(&b), Activation::ReLU).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 2e-2);
    }

    #[test]
    fn pointwise_conv_matches_reference() {
        let p = Conv2dProblem::new(2, 4, 4, 8, 8, 1, 1, (1, 1), (0, 0));
        assert!(p.is_pointwise_unit());
        let kernel = Conv2dKernel::new(p, small_config(), Epilogue::linear(DType::F16), DType::F16);
        let x = random_input(&p, DType::F16, 7);
        let f = random_filter(&p, DType::F16, 8);
        let got = kernel.run(&x, &f, None).unwrap();
        let expect = conv2d_ref(&p, &x, &f, None, Activation::Identity).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-2);
    }

    #[test]
    fn alignment_clamped_to_channels() {
        let p = Conv2dProblem::new(32, 20, 26, 46, 32, 3, 3, (1, 1), (1, 1));
        let kernel = Conv2dKernel::new(
            p,
            Conv2dConfig::turing_default(),
            Epilogue::linear(DType::F16),
            DType::F16,
        );
        assert_eq!(kernel.config.gemm.alignment_a, 2);
        assert_eq!(kernel.config.gemm.alignment_c, 8); // K=32
    }

    #[test]
    fn rejects_bad_bias() {
        let p = Conv2dProblem::new(1, 4, 4, 2, 3, 1, 1, (1, 1), (0, 0));
        let kernel = Conv2dKernel::new(p, small_config(), Epilogue::linear(DType::F16), DType::F16);
        let x = random_input(&p, DType::F16, 1);
        let f = random_filter(&p, DType::F16, 2);
        let bad = Tensor::zeros(&[4], DType::F16);
        assert!(kernel.run(&x, &f, Some(&bad)).is_err());
    }

    #[test]
    fn resnet_conv_time_is_plausible() {
        // ResNet-50 56x56x64 3x3 conv at batch 32 (Figure 8b workload).
        let t4 = GpuArch::tesla_t4();
        let p = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let kernel = Conv2dKernel::new(
            p,
            Conv2dConfig::turing_default(),
            Epilogue::linear(DType::F16),
            DType::F16,
        );
        kernel.validate(&t4).unwrap();
        let t = kernel.time(&t4);
        let tflops = t.tflops(2.0 * p.macs() as f64);
        assert!(tflops > 15.0 && tflops < 65.0, "{tflops:.1} TFLOPS, {t:?}");
    }
}
