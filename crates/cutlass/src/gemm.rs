//! Device-level templated GEMM: problem description and functional
//! executor.
//!
//! [`GemmKernel::run`] really computes the GEMM by walking the CUTLASS
//! hierarchy — threadblock tiles → warp tiles → MMA instruction tiles —
//! with operands rounded through the storage dtype on load and f32
//! accumulation (the tensor-core contract). Results are validated against
//! `bolt_tensor::gemm_ref` in this module's tests and by property tests.

use serde::{Deserialize, Serialize};
use std::fmt;

use bolt_gpu_sim::{simulate_kernel, GpuArch, KernelProfile, KernelTime};
use bolt_tensor::{DType, MatrixLayout, Tensor, TensorError};

use crate::epilogue::{reduce_columns, Epilogue};
use crate::error::KernelError;
use crate::perf;
use crate::template::GemmConfig;
use crate::Result;

/// A (possibly batched) GEMM problem: `D = alpha * A @ B + beta * C`,
/// with `A: (m, k)`, `B: (k, n)` per batch entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmProblem {
    /// Rows of `A` and `D`.
    pub m: usize,
    /// Columns of `B` and `D`.
    pub n: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Batch count (strided-batched GEMM); 1 for a plain GEMM.
    pub batch: usize,
    /// Element type of `A`/`B`.
    pub element: DType,
    /// Layout of `A`.
    pub layout_a: MatrixLayout,
    /// Layout of `B`.
    pub layout_b: MatrixLayout,
}

impl GemmProblem {
    /// A plain row-major FP16 GEMM.
    pub fn fp16(m: usize, n: usize, k: usize) -> Self {
        GemmProblem {
            m,
            n,
            k,
            batch: 1,
            element: DType::F16,
            layout_a: MatrixLayout::RowMajor,
            layout_b: MatrixLayout::RowMajor,
        }
    }

    /// A strided-batched row-major FP16 GEMM.
    pub fn fp16_batched(batch: usize, m: usize, n: usize, k: usize) -> Self {
        GemmProblem {
            batch,
            ..Self::fp16(m, n, k)
        }
    }

    /// Total multiply-accumulates across the batch.
    pub fn macs(&self) -> u64 {
        self.batch as u64 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Total floating-point operations (2 per MAC).
    pub fn flops(&self) -> f64 {
        2.0 * self.macs() as f64
    }

    /// The widest legal vector alignment for each operand, limited by the
    /// contiguous extent of its layout (what Bolt's kernel padding
    /// improves).
    pub fn max_alignments(&self) -> (usize, usize, usize) {
        use bolt_gpu_sim::memory::max_alignment;
        let a_extent = self.layout_a.contiguous_extent(self.m, self.k);
        let b_extent = self.layout_b.contiguous_extent(self.k, self.n);
        (
            max_alignment(self.element, a_extent),
            max_alignment(self.element, b_extent),
            max_alignment(self.element, self.n), // D is row-major
        )
    }

    /// Arithmetic intensity in flops per DRAM byte (compulsory traffic),
    /// used to classify workloads as compute- vs memory-bound.
    pub fn arithmetic_intensity(&self) -> f64 {
        let elt = self.element.size_bytes() as f64;
        let bytes =
            self.batch as f64 * elt * (self.m * self.k + self.k * self.n + self.m * self.n) as f64;
        self.flops() / bytes
    }
}

impl fmt::Display for GemmProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.batch > 1 {
            write!(
                f,
                "{}x[{}, {}, {}] {}",
                self.batch, self.m, self.n, self.k, self.element
            )
        } else {
            write!(f, "[{}, {}, {}] {}", self.m, self.n, self.k, self.element)
        }
    }
}

/// Minimum GEMM M extent before [`GemmKernel::run_into`] spreads
/// threadblock M-stripes across host cores. Small-M problems (single
/// serving requests) stay on the sequential path, so single-request
/// latency never pays thread spawn/join overhead; large-M problems
/// (stacked batches, wide im2col matrices) parallelize when the host has
/// more than one core.
pub const PARALLEL_M_ROWS: usize = 256;

/// A fully instantiated templated GEMM kernel: problem + config +
/// epilogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmKernel {
    /// The problem this instantiation serves.
    pub problem: GemmProblem,
    /// Template parameters.
    pub config: GemmConfig,
    /// Fused epilogue.
    pub epilogue: Epilogue,
    /// Minimum M extent before [`GemmKernel::run_into`] spreads
    /// threadblock M-stripes across host cores ([`PARALLEL_M_ROWS`] by
    /// default). Deployments serving decode-step skinny GEMMs tune this
    /// through `BoltConfig::parallel_m_rows` so single-token batches
    /// never pay thread-scope overhead.
    pub parallel_m_rows: usize,
}

impl GemmKernel {
    /// Creates a kernel after clamping the config's operand alignments to
    /// what the problem's extents allow (CUTLASS selects the kernel with
    /// the widest legal alignment the same way).
    pub fn new(problem: GemmProblem, mut config: GemmConfig, epilogue: Epilogue) -> Self {
        let (a, b, c) = problem.max_alignments();
        config.alignment_a = config.alignment_a.min(a);
        config.alignment_b = config.alignment_b.min(b);
        config.alignment_c = config.alignment_c.min(c);
        GemmKernel {
            problem,
            config,
            epilogue,
            parallel_m_rows: PARALLEL_M_ROWS,
        }
    }

    /// Overrides the M extent at which [`GemmKernel::run_into`] goes
    /// data-parallel. Clamped to at least 1 (0 would claim every
    /// problem, including the degenerate single-stripe ones the parallel
    /// path already skips).
    #[must_use]
    pub fn with_parallel_m_rows(mut self, rows: usize) -> Self {
        self.parallel_m_rows = rows.max(1);
        self
    }

    /// Validates the template against `arch`.
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError::IllegalConfig`] from the config check.
    pub fn validate(&self, arch: &GpuArch) -> Result<()> {
        self.config.validate(arch, self.problem.element)
    }

    /// Functional execution of one batch entry. `a` is `(m, k)`, `b` is
    /// `(k, n)`; `c` interpretation follows the epilogue's bias mode.
    /// Returns `D` (and the column reduction if requested, as a second
    /// tensor).
    ///
    /// # Errors
    ///
    /// Returns shape errors if operands disagree with the problem, and
    /// config errors if the template is malformed.
    pub fn run(
        &self,
        a: &Tensor,
        b: &Tensor,
        c: Option<&Tensor>,
    ) -> Result<(Tensor, Option<Tensor>)> {
        let p = &self.problem;
        if a.shape().dims() != [p.m, p.k] {
            return Err(KernelError::Tensor(TensorError::shape(
                "gemm kernel A",
                &[p.m, p.k],
                a.shape().dims(),
            )));
        }
        if b.shape().dims() != [p.k, p.n] {
            return Err(KernelError::Tensor(TensorError::shape(
                "gemm kernel B",
                &[p.k, p.n],
                b.shape().dims(),
            )));
        }
        self.epilogue.validate_c(c, p.m, p.n)?;

        let tb = self.config.threadblock;
        let elt = p.element;
        let grid_m = p.m.div_ceil(tb.m);
        let grid_n = p.n.div_ceil(tb.n);
        let mut d = Tensor::zeros(&[p.m, p.n], self.epilogue.out_dtype);

        // Parallel split-K: each slice accumulates a partial sum into an
        // f32 workspace; the reduction combines slices and applies the
        // epilogue exactly once (CUTLASS GemmSplitKParallel).
        let split_k = self.config.split_k.max(1);
        let slice_len = p.k.div_ceil(split_k);

        // Walk the grid of threadblock tiles. Within a tile, accumulate the
        // full K extent into an f32 accumulator tile (the register file),
        // then run the epilogue once — exactly the structure of the CUDA
        // kernel, so boundary predication and accumulation order match.
        for bm in 0..grid_m {
            for bn in 0..grid_n {
                let row0 = bm * tb.m;
                let col0 = bn * tb.n;
                let rows = tb.m.min(p.m - row0);
                let cols = tb.n.min(p.n - col0);
                let mut acc = vec![0.0f32; rows * cols];

                // Iterate split-K slices outermost (each is an independent
                // workspace partial), then the slice's K tiles.
                for slice in 0..split_k {
                    let slice_start = slice * slice_len;
                    if slice_start >= p.k {
                        break;
                    }
                    let slice_end = (slice_start + slice_len).min(p.k);
                    let k_tiles = (slice_end - slice_start).div_ceil(tb.k);
                    for bk in 0..k_tiles {
                        let k0 = slice_start + bk * tb.k;
                        let kk = tb.k.min(slice_end - k0);
                        // Stage the A and B slices through "shared memory",
                        // rounding through the element dtype (the global->smem
                        // copy preserves dtype; rounding is idempotent).
                        for r in 0..rows {
                            for kc in 0..kk {
                                let a_val = elt.quantize(a.get2(row0 + r, k0 + kc));
                                for ccol in 0..cols {
                                    let b_val = elt.quantize(b.get2(k0 + kc, col0 + ccol));
                                    acc[r * cols + ccol] += a_val * b_val;
                                }
                            }
                        }
                    }
                }

                for r in 0..rows {
                    for ccol in 0..cols {
                        let v = self
                            .epilogue
                            .apply(acc[r * cols + ccol], row0 + r, col0 + ccol, c);
                        d.set2(row0 + r, col0 + ccol, v);
                    }
                }
            }
        }

        let reduction = if self.epilogue.column_reduction {
            Some(reduce_columns(&d))
        } else {
            None
        };
        Ok((d, reduction))
    }

    /// Allocation-free execution of one batch entry into a caller-provided
    /// buffer: `a` is the row-major `(m, k)` operand, `b` the row-major
    /// `(k, n)` operand, and `out` receives row-major `(m, n)` values
    /// quantized to the epilogue's output dtype — bit-identical to
    /// [`GemmKernel::run`]'s result. `acc` is the reusable accumulator
    /// scratch (resized, never reallocated once warm). The column
    /// reduction, if the epilogue requests one, is not computed here; use
    /// [`GemmKernel::run`] when it is needed.
    ///
    /// `b_quantized` is the caller's assertion that every element of `b`
    /// is already exactly representable in the problem's element dtype —
    /// true for operands read out of a `Tensor` whose dtype equals
    /// `problem.element`, since tensor stores quantize. Rounding is
    /// idempotent, so skipping the per-load rounding of `b` is then an
    /// exact no-op and the result stays bit-identical; pass `false`
    /// whenever the provenance of `b` is not known.
    ///
    /// When the host has more than one core and the problem is large
    /// enough ([`GemmKernel::parallel_m_rows`]), the threadblock M-stripes are
    /// executed data-parallel with `std::thread::scope`; every tile is
    /// computed independently with unchanged arithmetic order, so the
    /// result stays bit-identical to the sequential walk.
    ///
    /// # Errors
    ///
    /// Returns shape errors if operand lengths disagree with the problem.
    pub fn run_into(
        &self,
        a: &[f32],
        b: &[f32],
        c: Option<&Tensor>,
        acc: &mut Vec<f32>,
        out: &mut [f32],
        b_quantized: bool,
    ) -> Result<()> {
        let p = &self.problem;
        if a.len() != p.m * p.k {
            return Err(KernelError::Tensor(TensorError::shape(
                "gemm kernel A",
                &[p.m * p.k],
                &[a.len()],
            )));
        }
        if b.len() != p.k * p.n {
            return Err(KernelError::Tensor(TensorError::shape(
                "gemm kernel B",
                &[p.k * p.n],
                &[b.len()],
            )));
        }
        if out.len() != p.m * p.n {
            return Err(KernelError::Tensor(TensorError::shape(
                "gemm kernel D",
                &[p.m * p.n],
                &[out.len()],
            )));
        }
        self.epilogue.validate_c(c, p.m, p.n)?;

        let tb_m = self.config.threadblock.m;
        let grid_m = p.m.div_ceil(tb_m);
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        if threads > 1 && grid_m > 1 && p.m >= self.parallel_m_rows.max(1) {
            // Data-parallel M-stripes: each worker owns a contiguous run
            // of threadblock rows, which is a contiguous slice of `out`.
            let workers = threads.min(grid_m);
            let per = grid_m.div_ceil(workers);
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut bm0 = 0;
                while bm0 < grid_m {
                    let bm1 = (bm0 + per).min(grid_m);
                    let rows = (bm1 * tb_m).min(p.m) - bm0 * tb_m;
                    let (chunk, tail) = rest.split_at_mut(rows * p.n);
                    rest = tail;
                    let (b0, b1) = (bm0, bm1);
                    scope.spawn(move || {
                        let mut local_acc = Vec::new();
                        self.stripes_into(a, b, c, b0, b1, &mut local_acc, chunk, b_quantized);
                    });
                    bm0 = bm1;
                }
            });
        } else {
            self.stripes_into(a, b, c, 0, grid_m, acc, out, b_quantized);
        }
        Ok(())
    }

    /// Computes threadblock stripes `bm0..bm1` into `out`, whose first
    /// element corresponds to global row `bm0 * tb_m`. Tile walk, k-order,
    /// and rounding are identical to [`GemmKernel::run`]: the global->smem
    /// stage quantizes each operand element exactly once per k-tile, and
    /// the MAC loop then reads the staged values — the same numbers
    /// [`GemmKernel::run`] recomputes per multiply, in the same order.
    #[allow(clippy::too_many_arguments)]
    fn stripes_into(
        &self,
        a: &[f32],
        b: &[f32],
        c: Option<&Tensor>,
        bm0: usize,
        bm1: usize,
        acc: &mut Vec<f32>,
        out: &mut [f32],
        b_quantized: bool,
    ) {
        let p = &self.problem;
        let tb = self.config.threadblock;
        let elt = p.element;
        let out_dtype = self.epilogue.out_dtype;
        let grid_n = p.n.div_ceil(tb.n);
        let split_k = self.config.split_k.max(1);
        let slice_len = p.k.div_ceil(split_k);
        let base_row = bm0 * tb.m;
        // Shared-memory fragments: one A tile and one B tile, rounded
        // through the element dtype on the staging copy so the inner
        // product runs on raw f32 values. Staging B pays for itself once
        // a tile has more than one row to reuse it; single-row tiles
        // (GEMV-shaped problems) stream operands directly instead, so
        // the buffers are grown lazily and stay empty for those.
        let mut a_smem: Vec<f32> = Vec::new();
        let mut b_smem: Vec<f32> = Vec::new();

        for bm in bm0..bm1 {
            for bn in 0..grid_n {
                let row0 = bm * tb.m;
                let col0 = bn * tb.n;
                let rows = tb.m.min(p.m - row0);
                let cols = tb.n.min(p.n - col0);
                acc.clear();
                acc.resize(rows * cols, 0.0);

                for slice in 0..split_k {
                    let slice_start = slice * slice_len;
                    if slice_start >= p.k {
                        break;
                    }
                    let slice_end = (slice_start + slice_len).min(p.k);
                    let k_tiles = (slice_end - slice_start).div_ceil(tb.k);
                    for bk in 0..k_tiles {
                        let k0 = slice_start + bk * tb.k;
                        let kk = tb.k.min(slice_end - k0);
                        if rows == 1 && b_quantized {
                            // GEMV with pre-quantized B: stream both
                            // operands straight from global memory.
                            let acc_row = &mut acc[..cols];
                            for kc in 0..kk {
                                let a_val = elt.quantize(a[row0 * p.k + k0 + kc]);
                                let b_off = (k0 + kc) * p.n + col0;
                                let b_row = &b[b_off..b_off + cols];
                                for (d, &b_val) in acc_row.iter_mut().zip(b_row) {
                                    *d += a_val * b_val;
                                }
                            }
                            continue;
                        }
                        if rows == 1 {
                            // Single-row tile with unknown B provenance:
                            // staging B has no reuse to pay for itself,
                            // so quantize it in the stream.
                            let acc_row = &mut acc[..cols];
                            for kc in 0..kk {
                                let a_val = elt.quantize(a[row0 * p.k + k0 + kc]);
                                let b_off = (k0 + kc) * p.n + col0;
                                let b_row = &b[b_off..b_off + cols];
                                for (d, &b_val) in acc_row.iter_mut().zip(b_row) {
                                    *d += a_val * elt.quantize(b_val);
                                }
                            }
                            continue;
                        }
                        if a_smem.len() < rows * kk {
                            a_smem.resize(rows * kk, 0.0);
                        }
                        for r in 0..rows {
                            for kc in 0..kk {
                                a_smem[r * kk + kc] = elt.quantize(a[(row0 + r) * p.k + k0 + kc]);
                            }
                        }
                        if !b_quantized {
                            if b_smem.len() < kk * cols {
                                b_smem.resize(kk * cols, 0.0);
                            }
                            for kc in 0..kk {
                                for ccol in 0..cols {
                                    b_smem[kc * cols + ccol] =
                                        elt.quantize(b[(k0 + kc) * p.n + col0 + ccol]);
                                }
                            }
                        }
                        for r in 0..rows {
                            for kc in 0..kk {
                                let a_val = a_smem[r * kk + kc];
                                let b_row = if b_quantized {
                                    let b_off = (k0 + kc) * p.n + col0;
                                    &b[b_off..b_off + cols]
                                } else {
                                    &b_smem[kc * cols..kc * cols + cols]
                                };
                                let acc_row = &mut acc[r * cols..r * cols + cols];
                                for (d, &b_val) in acc_row.iter_mut().zip(b_row) {
                                    *d += a_val * b_val;
                                }
                            }
                        }
                    }
                }

                for r in 0..rows {
                    for ccol in 0..cols {
                        let v = self
                            .epilogue
                            .apply(acc[r * cols + ccol], row0 + r, col0 + ccol, c);
                        out[(row0 - base_row + r) * p.n + col0 + ccol] = out_dtype.quantize(v);
                    }
                }
            }
        }
    }

    /// The kernel's performance profile for the GPU simulator.
    pub fn profile(&self, arch: &GpuArch) -> KernelProfile {
        perf::gemm_profile(arch, &self.problem, &self.config, &self.epilogue, None)
    }

    /// Simulated execution time on `arch`.
    pub fn time(&self, arch: &GpuArch) -> KernelTime {
        simulate_kernel(arch, &self.profile(arch))
    }

    /// Kernel name used in timelines and emitted code.
    pub fn name(&self) -> String {
        format!(
            "cutlass_gemm_{}_{}_{}",
            self.problem.element,
            self.config.tag(),
            self.epilogue.activation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::gemm_ref::gemm_with_epilogue;
    use bolt_tensor::Activation;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    fn check_against_reference(m: usize, n: usize, k: usize, config: GemmConfig) {
        let problem = GemmProblem::fp16(m, n, k);
        let kernel = GemmKernel::new(problem, config, Epilogue::linear(DType::F16));
        let a = Tensor::randn(&[m, k], DType::F16, 1);
        let b = Tensor::randn(&[k, n], DType::F16, 2);
        let (d, _) = kernel.run(&a, &b, None).unwrap();
        let expect =
            gemm_with_epilogue(&a, &b, None, 1.0, 0.0, Activation::Identity, DType::F16).unwrap();
        let diff = d.max_abs_diff(&expect).unwrap();
        // Same k-order accumulation => exact equality after f16 rounding.
        assert_eq!(diff, 0.0, "m={m} n={n} k={k} config={config}");
    }

    #[test]
    fn matches_reference_exact_tiles() {
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        c.warp = crate::tiles::TileShape::new(8, 8, 8);
        c.instruction = crate::tiles::TileShape::new(8, 8, 4);
        check_against_reference(32, 32, 16, c);
    }

    #[test]
    fn matches_reference_ragged_boundaries() {
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        c.warp = crate::tiles::TileShape::new(8, 8, 8);
        // 35x29x23 exercises partial tiles in every dimension.
        check_against_reference(35, 29, 23, c);
    }

    #[test]
    fn epilogue_bias_relu_matches_reference() {
        let problem = GemmProblem::fp16(24, 20, 12);
        let mut config = GemmConfig::turing_default();
        config.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        config.warp = crate::tiles::TileShape::new(8, 8, 8);
        let kernel = GemmKernel::new(
            problem,
            config,
            Epilogue::bias_activation(Activation::ReLU, DType::F16),
        );
        let a = Tensor::randn(&[24, 12], DType::F16, 3);
        let b = Tensor::randn(&[12, 20], DType::F16, 4);
        let bias = Tensor::randn(&[20], DType::F16, 5);
        let (d, _) = kernel.run(&a, &b, Some(&bias)).unwrap();
        let expect =
            gemm_with_epilogue(&a, &b, Some(&bias), 1.0, 1.0, Activation::ReLU, DType::F16)
                .unwrap();
        assert_eq!(d.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn column_reduction_output() {
        let problem = GemmProblem::fp16(8, 4, 4);
        let mut config = GemmConfig::turing_default();
        config.threadblock = crate::tiles::TileShape::new(8, 8, 8);
        config.warp = crate::tiles::TileShape::new(8, 8, 8);
        let kernel = GemmKernel::new(
            problem,
            config,
            Epilogue::linear(DType::F16).with_column_reduction(),
        );
        let a = Tensor::ones(&[8, 4], DType::F16);
        let b = Tensor::ones(&[4, 4], DType::F16);
        let (_, red) = kernel.run(&a, &b, None).unwrap();
        let red = red.expect("reduction requested");
        // Every D element is 4.0; column sums are 32.0.
        assert!(red.data().iter().all(|&v| v == 32.0));
    }

    #[test]
    fn rejects_wrong_operand_shapes() {
        let kernel = GemmKernel::new(
            GemmProblem::fp16(8, 8, 8),
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        let a = Tensor::zeros(&[8, 4], DType::F16);
        let b = Tensor::zeros(&[8, 8], DType::F16);
        assert!(kernel.run(&a, &b, None).is_err());
    }

    #[test]
    fn alignment_clamped_by_problem() {
        // K=46 limits A (row-major) alignment to 2.
        let kernel = GemmKernel::new(
            GemmProblem::fp16(32, 64, 46),
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        assert_eq!(kernel.config.alignment_a, 2);
        assert_eq!(kernel.config.alignment_b, 8); // B row-major: extent N=64
    }

    #[test]
    fn problem_helpers() {
        let p = GemmProblem::fp16(1280, 3072, 768);
        assert_eq!(p.macs(), 1280 * 3072 * 768);
        assert!(p.arithmetic_intensity() > 100.0);
        let b = GemmProblem::fp16_batched(384, 40, 40, 64);
        assert!(b.arithmetic_intensity() < 30.0);
        assert_eq!(b.to_string(), "384x[40, 40, 64] f16");
    }

    #[test]
    fn int8_gemm_computes_exactly_and_runs_2x_faster() {
        // CUTLASS IMMA path: int8 operands, i32 accumulation (exact in
        // f32 for these magnitudes), fused dequant via alpha.
        let t4 = GpuArch::tesla_t4();
        let mut problem = GemmProblem::fp16(64, 64, 64);
        problem.element = DType::I8;
        let mut config = GemmConfig::turing_default();
        config.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        config.warp = crate::tiles::TileShape::new(8, 8, 8);
        let mut ep = Epilogue::linear(DType::F32);
        ep.alpha = 0.25; // dequantization scale
        let kernel = GemmKernel::new(problem, config, ep);

        let a = Tensor::from_vec(
            &[64, 64],
            DType::I8,
            (0..4096).map(|i| ((i % 7) as f32) - 3.0).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            &[64, 64],
            DType::I8,
            (0..4096).map(|i| ((i % 5) as f32) - 2.0).collect(),
        )
        .unwrap();
        let (d, _) = kernel.run(&a, &b, None).unwrap();
        // Integer reference.
        let mut expect = 0.0f32;
        for p0 in 0..64 {
            expect += a.get2(0, p0) * b.get2(p0, 0);
        }
        assert_eq!(d.get2(0, 0), 0.25 * expect);

        // INT8 tensor cores run ~2x FP16 rate for compute-bound GEMMs.
        let mut big_i8 = GemmProblem::fp16(4096, 4096, 4096);
        big_i8.element = DType::I8;
        let i8_kernel = GemmKernel::new(
            big_i8,
            GemmConfig::turing_default(),
            Epilogue::linear(DType::I8),
        );
        let f16_kernel = GemmKernel::new(
            GemmProblem::fp16(4096, 4096, 4096),
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        let ratio = f16_kernel.time(&t4).total_us / i8_kernel.time(&t4).total_us;
        assert!(
            ratio > 1.4 && ratio < 2.4,
            "INT8 should be ~2x FP16, got {ratio:.2}x"
        );
    }

    #[test]
    fn split_k_matches_reference() {
        let mut config = GemmConfig::turing_default();
        config.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        config.warp = crate::tiles::TileShape::new(8, 8, 8);
        config.split_k = 4;
        let kernel = GemmKernel::new(
            GemmProblem::fp16(24, 20, 64),
            config,
            Epilogue::linear(DType::F16),
        );
        let a = Tensor::randn(&[24, 64], DType::F16, 11);
        let b = Tensor::randn(&[64, 20], DType::F16, 12);
        let (d, _) = kernel.run(&a, &b, None).unwrap();
        let expect =
            gemm_with_epilogue(&a, &b, None, 1.0, 0.0, Activation::Identity, DType::F16).unwrap();
        // Slice boundaries align with tile boundaries here, so the f32
        // accumulation order is identical: exact match.
        assert_eq!(d.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn split_k_helps_small_m_deep_k() {
        // Batch-32 classifier layer: (32, 1000, 2048) — 1x8 grid without
        // split-K starves the 40 SMs.
        let t4 = GpuArch::tesla_t4();
        let problem = GemmProblem::fp16(32, 1000, 2048);
        let plain = GemmKernel::new(
            problem,
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        let mut cfg = GemmConfig::turing_default();
        cfg.threadblock = crate::tiles::TileShape::new(32, 128, 32);
        cfg.warp = crate::tiles::TileShape::new(32, 32, 32);
        cfg.split_k = 8;
        let split = GemmKernel::new(problem, cfg, Epilogue::linear(DType::F16));
        split.validate(&t4).unwrap();
        assert!(
            split.time(&t4).total_us < plain.time(&t4).total_us,
            "split-K should beat the underfilled plain kernel"
        );
    }

    #[test]
    fn skinny_m1_stays_sequential_at_any_threshold() {
        // Decode-step regression: an M=1 GEMM must produce the same bits
        // whatever the parallel-stripe threshold is set to, and must
        // never enter the thread-scope path (grid_m == 1 at M=1 makes
        // that structurally impossible; this pins it).
        let problem = GemmProblem::fp16(1, 96, 64);
        let a = Tensor::randn(&[1, 64], DType::F16, 11);
        let b = Tensor::randn(&[64, 96], DType::F16, 12);
        let base = GemmKernel::new(
            problem,
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        let mut acc = Vec::new();
        let mut want = vec![0.0f32; 96];
        base.run_into(a.data(), b.data(), None, &mut acc, &mut want, true)
            .unwrap();
        for threshold in [1usize, 2, 256, usize::MAX] {
            let k = base.clone().with_parallel_m_rows(threshold);
            let mut got = vec![0.0f32; 96];
            k.run_into(a.data(), b.data(), None, &mut acc, &mut got, true)
                .unwrap();
            assert_eq!(want, got, "threshold={threshold}");
        }
        // with_parallel_m_rows(0) clamps to 1 rather than claiming
        // every problem.
        assert_eq!(base.clone().with_parallel_m_rows(0).parallel_m_rows, 1);
    }

    #[test]
    fn parallel_threshold_is_bit_identical_to_sequential() {
        // Force the parallel branch with a low threshold on a multi-stripe
        // problem and compare against the sequential walk bit for bit.
        let problem = GemmProblem::fp16(96, 40, 32);
        let mut c = GemmConfig::turing_default();
        c.threadblock = crate::tiles::TileShape::new(16, 16, 8);
        c.warp = crate::tiles::TileShape::new(8, 8, 8);
        let a = Tensor::randn(&[96, 32], DType::F16, 21);
        let b = Tensor::randn(&[32, 40], DType::F16, 22);
        let sequential = GemmKernel::new(problem, c, Epilogue::linear(DType::F16))
            .with_parallel_m_rows(usize::MAX);
        let parallel = sequential.clone().with_parallel_m_rows(1);
        let mut acc = Vec::new();
        let mut want = vec![0.0f32; 96 * 40];
        let mut got = vec![0.0f32; 96 * 40];
        sequential
            .run_into(a.data(), b.data(), None, &mut acc, &mut want, true)
            .unwrap();
        parallel
            .run_into(a.data(), b.data(), None, &mut acc, &mut got, true)
            .unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn simulated_time_is_finite_and_positive() {
        let kernel = GemmKernel::new(
            GemmProblem::fp16(4096, 4096, 4096),
            GemmConfig::turing_default(),
            Epilogue::linear(DType::F16),
        );
        kernel.validate(&t4()).unwrap();
        let t = kernel.time(&t4());
        assert!(t.total_us.is_finite() && t.total_us > 0.0);
        // Must land within the plausible tensor-core band on T4.
        let tflops = t.tflops(kernel.problem.flops());
        assert!(tflops > 35.0 && tflops <= 65.0, "got {tflops:.1} TFLOPS");
    }
}
