//! Persistent kernels: back-to-back GEMM/Conv fusion (paper Section 3.1.1).
//!
//! A persistent kernel computes two (or more) chained GEMMs/Convs in a
//! single launch, keeping the intermediate activation `D0` in fast memory.
//! The legality condition is **threadblock residence**: every output
//! threadblock of the first operator must stay in the same threadblock's
//! memory as the input of the second, which requires
//! `ThreadBlock_N == GEMM_N` for each layer (for Convs,
//! `ThreadBlock_N == output channels`), and for the second Conv a 1×1
//! filter with stride 1 and no padding.
//!
//! Two residence designs are provided, exactly as in the paper:
//!
//! * [`Residence::RegisterFile`] — each warp keeps its accumulator
//!   fragment and consumes it directly in the second GEMM, which further
//!   requires `Warp_N == ThreadBlock_N` for both layers (no cross-warp
//!   data exchange). Higher register pressure, fastest when it fits.
//! * [`Residence::SharedMemory`] — the accumulator tile is staged through
//!   shared memory with a conflict-free layout, relaxing the warp-shape
//!   restriction at the cost of extra shared-memory traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

use bolt_gpu_sim::{
    simulate_kernel, BlockResources, GpuArch, KernelProfile, KernelTime, PipelineFlops,
};
use bolt_tensor::conv_ref::Conv2dProblem;
use bolt_tensor::{DType, Tensor};

use crate::conv2d::{Conv2dConfig, Conv2dKernel};
use crate::epilogue::Epilogue;
use crate::error::KernelError;
use crate::gemm::{GemmKernel, GemmProblem};
use crate::perf;
use crate::template::GemmConfig;
use crate::Result;

/// Where the intermediate activation lives during a persistent kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Residence {
    /// Accumulator fragments stay in each warp's registers (RF-resident).
    RegisterFile,
    /// Accumulator tiles are staged through shared memory (smem-resident).
    SharedMemory,
}

impl fmt::Display for Residence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Residence::RegisterFile => f.write_str("rf-resident"),
            Residence::SharedMemory => f.write_str("smem-resident"),
        }
    }
}

/// A fused back-to-back GEMM kernel:
/// `D0 = epilogue0(A @ W0 [, C0])`, `D1 = epilogue1(D0 @ W1 [, C1])`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct B2bGemmKernel {
    /// First GEMM problem (`m`, `n0`, `k0`).
    pub gemm0: GemmProblem,
    /// Second GEMM problem (`m`, `n1`, `k1 = n0`).
    pub gemm1: GemmProblem,
    /// Template parameters of the first main loop.
    pub config0: GemmConfig,
    /// Template parameters of the second main loop.
    pub config1: GemmConfig,
    /// Epilogue of the first GEMM (computed in fast memory).
    pub epilogue0: Epilogue,
    /// Epilogue of the second GEMM (classic global-store epilogue).
    pub epilogue1: Epilogue,
    /// Intermediate-residence design.
    pub residence: Residence,
    /// Minimum M before [`B2bGemmKernel::run_into`] parallelizes
    /// M-stripes across host cores (see
    /// [`GemmKernel::parallel_m_rows`]).
    pub parallel_m_rows: usize,
}

impl B2bGemmKernel {
    /// Builds a persistent kernel with configs derived from the problems:
    /// threadblock N is pinned to each GEMM's full N (threadblock
    /// residence) and, for the RF-resident variant, warp N too.
    pub fn with_residence(
        gemm0: GemmProblem,
        gemm1: GemmProblem,
        epilogue0: Epilogue,
        epilogue1: Epilogue,
        residence: Residence,
    ) -> Self {
        // Large GEMM_N needs a shorter M tile to keep the fused kernel's
        // shared-memory (staging) and register budgets within capacity.
        let tb_m = if gemm0.n.max(gemm1.n) >= 128 { 32 } else { 64 };
        let mk_config = |n: usize| {
            let mut c = GemmConfig::turing_default();
            c.threadblock = crate::tiles::TileShape::new(tb_m, n, 32.min(n.max(8)));
            c.warp = match residence {
                // Warp_N must equal GEMM_N (RF residence); a short Warp_M
                // keeps 4 warps per block for latency hiding and halves the
                // per-warp accumulator footprint.
                Residence::RegisterFile => {
                    crate::tiles::TileShape::new((tb_m / 4).max(16), n, c.threadblock.k)
                }
                Residence::SharedMemory => {
                    crate::tiles::TileShape::new(32, (n / 2).clamp(8, 64), c.threadblock.k)
                }
            };
            c
        };
        B2bGemmKernel {
            gemm0,
            gemm1,
            config0: mk_config(gemm0.n),
            config1: mk_config(gemm1.n),
            epilogue0,
            epilogue1,
            residence,
            parallel_m_rows: crate::gemm::PARALLEL_M_ROWS,
        }
    }

    /// Overrides the M extent at which [`B2bGemmKernel::run_into`] goes
    /// data-parallel (propagated to the per-stripe GEMM sub-kernels).
    #[must_use]
    pub fn with_parallel_m_rows(mut self, rows: usize) -> Self {
        self.parallel_m_rows = rows.max(1);
        self
    }

    /// Picks the RF-resident variant when it is legal on `arch`, otherwise
    /// falls back to shared-memory residence — the selection Bolt's
    /// profiler automates.
    pub fn auto(
        arch: &GpuArch,
        gemm0: GemmProblem,
        gemm1: GemmProblem,
        epilogue0: Epilogue,
        epilogue1: Epilogue,
    ) -> Result<Self> {
        let rf = Self::with_residence(gemm0, gemm1, epilogue0, epilogue1, Residence::RegisterFile);
        if rf.validate(arch).is_ok() {
            return Ok(rf);
        }
        let smem =
            Self::with_residence(gemm0, gemm1, epilogue0, epilogue1, Residence::SharedMemory);
        smem.validate(arch)?;
        Ok(smem)
    }

    /// Combined per-block resources of the fused kernel.
    pub fn block_resources(&self) -> BlockResources {
        let elt = self.gemm0.element;
        let threads = self.config0.threads().max(self.config1.threads());
        // Both accumulator sets live simultaneously in the RF design; the
        // smem design frees acc0 after staging but pays the staging buffer.
        let acc0 = self.config0.warp.mn() / 32;
        let acc1 = self.config1.warp.mn() / 32;
        let frags = 2 * (self.config0.warp.m + self.config0.warp.n) * self.config0.instruction.k
            / 32
            * elt.size_bytes().max(2)
            / 4;
        let regs = match self.residence {
            Residence::RegisterFile => acc0 + acc1 + frags + 40,
            Residence::SharedMemory => acc0.max(acc1) + frags + 40,
        } as u32;
        let smem0 = self.config0.smem_bytes(elt);
        let smem1 = self.config1.smem_bytes(elt);
        let staging = match self.residence {
            Residence::RegisterFile => 0,
            Residence::SharedMemory => {
                (self.config0.threadblock.m * self.gemm0.n * elt.size_bytes()) as u32
            }
        };
        BlockResources::new(threads, regs.min(512), smem0.max(smem1) + staging)
    }

    /// Validates problem chaining, threadblock residence, and hardware
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnsupportedProblem`] when the fusion is
    /// illegal (shapes, residence) and [`KernelError::IllegalConfig`] when
    /// it exceeds hardware resources.
    pub fn validate(&self, arch: &GpuArch) -> Result<()> {
        if self.gemm1.m != self.gemm0.m {
            return Err(KernelError::unsupported(format!(
                "persistent GEMM fusion requires equal M; got {} and {}",
                self.gemm0.m, self.gemm1.m
            )));
        }
        if self.gemm1.k != self.gemm0.n {
            return Err(KernelError::unsupported(format!(
                "GEMM1 K ({}) must equal GEMM0 N ({})",
                self.gemm1.k, self.gemm0.n
            )));
        }
        if self.gemm0.batch != self.gemm1.batch {
            return Err(KernelError::unsupported("batch counts differ"));
        }
        // Threadblock residence (Figure 5).
        if self.config0.threadblock.n != self.gemm0.n {
            return Err(KernelError::unsupported(format!(
                "threadblock residence: ThreadBlock0_N ({}) != GEMM0_N ({})",
                self.config0.threadblock.n, self.gemm0.n
            )));
        }
        if self.config1.threadblock.n != self.gemm1.n {
            return Err(KernelError::unsupported(format!(
                "threadblock residence: ThreadBlock1_N ({}) != GEMM1_N ({})",
                self.config1.threadblock.n, self.gemm1.n
            )));
        }
        if self.config0.threadblock.m != self.config1.threadblock.m {
            return Err(KernelError::unsupported(
                "both main loops must share the threadblock M tiling",
            ));
        }
        if self.residence == Residence::RegisterFile {
            // Figure 6: Warp_N = ThreadBlock_N = GEMM_N for each layer.
            if self.config0.warp.n != self.gemm0.n || self.config1.warp.n != self.gemm1.n {
                return Err(KernelError::unsupported(format!(
                    "RF residence requires Warp_N = GEMM_N; got {} vs {} and {} vs {}",
                    self.config0.warp.n, self.gemm0.n, self.config1.warp.n, self.gemm1.n
                )));
            }
            if self.config0.warp.m != self.config1.warp.m {
                return Err(KernelError::unsupported(
                    "RF residence requires matching warp M so each warp feeds itself",
                ));
            }
        }
        // Hardware capacity of the combined block.
        let res = self.block_resources();
        if res.regs_per_thread > arch.max_regs_per_thread {
            return Err(KernelError::illegal(format!(
                "fused kernel needs {} regs/thread (> {}); use shared-memory residence",
                res.regs_per_thread, arch.max_regs_per_thread
            )));
        }
        if res.smem_bytes > arch.max_smem_per_block {
            return Err(KernelError::illegal(format!(
                "fused kernel needs {} B smem (> {})",
                res.smem_bytes, arch.max_smem_per_block
            )));
        }
        Ok(())
    }

    /// Functional execution of the fused kernel for one batch entry.
    ///
    /// Walks M-tiles; for each tile the first GEMM's output stays "in fast
    /// memory" as FP16 accumulator fragments (quantized exactly as the
    /// hardware converts f32 accumulators to f16 operands) and feeds the
    /// second main loop without touching `D0` globally. Numerically
    /// identical to running the two epilogue-fused GEMMs sequentially.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    pub fn run(
        &self,
        a: &Tensor,
        w0: &Tensor,
        c0: Option<&Tensor>,
        w1: &Tensor,
        c1: Option<&Tensor>,
    ) -> Result<Tensor> {
        let (m, n0, _k0) = (self.gemm0.m, self.gemm0.n, self.gemm0.k);
        let n1 = self.gemm1.n;
        let tb_m = self.config0.threadblock.m;
        let elt = self.gemm0.element;

        // Reuse the single-GEMM tiled executor per M-stripe so tiling
        // behaviour (k-order, rounding) matches the unfused kernels.
        let k0_kernel = GemmKernel {
            problem: self.gemm0,
            config: self.config0,
            epilogue: self.epilogue0,
            parallel_m_rows: self.parallel_m_rows,
        };
        let k1_kernel = GemmKernel {
            problem: self.gemm1,
            config: self.config1,
            epilogue: self.epilogue1,
            parallel_m_rows: self.parallel_m_rows,
        };

        let mut d1 = Tensor::zeros(&[m, n1], self.epilogue1.out_dtype);
        let stripes = m.div_ceil(tb_m);
        for s in 0..stripes {
            let row0 = s * tb_m;
            let rows = tb_m.min(m - row0);
            // Slice A rows for this threadblock stripe.
            let mut a_tile = Tensor::zeros(&[rows, self.gemm0.k], elt);
            for r in 0..rows {
                for c in 0..self.gemm0.k {
                    a_tile.set2(r, c, a.get2(row0 + r, c));
                }
            }
            let mut stripe_kernel0 = k0_kernel.clone();
            stripe_kernel0.problem.m = rows;
            let (d0_tile, _) = stripe_kernel0.run(&a_tile, w0, c0)?;
            debug_assert_eq!(d0_tile.shape().dims(), &[rows, n0]);

            let mut stripe_kernel1 = k1_kernel.clone();
            stripe_kernel1.problem.m = rows;
            let (d1_tile, _) = stripe_kernel1.run(&d0_tile, w1, c1)?;
            for r in 0..rows {
                for c in 0..n1 {
                    d1.set2(row0 + r, c, d1_tile.get2(r, c));
                }
            }
        }
        Ok(d1)
    }

    /// Allocation-free streaming execution into a caller-provided buffer.
    ///
    /// Walks the same M-stripes as [`B2bGemmKernel::run`], but the
    /// intermediate `D0` stripe lives in the reusable `d0` scratch (the
    /// software analogue of the fast-memory residence) instead of a fresh
    /// tensor per stripe, `A` stripes are read in place, and `D1` stripes
    /// land directly in `out`. Bit-identical to [`B2bGemmKernel::run`].
    ///
    /// On multi-core hosts with a large enough M extent the stripes are
    /// spread across threads; every stripe is independent, so results are
    /// unchanged.
    ///
    /// `weights_quantized` asserts that `w0` and `w1` are already exactly
    /// representable in the element dtype (see
    /// [`GemmKernel::run_into`](crate::gemm::GemmKernel::run_into)).
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    #[allow(clippy::too_many_arguments)]
    pub fn run_into(
        &self,
        a: &[f32],
        w0: &[f32],
        c0: Option<&Tensor>,
        w1: &[f32],
        c1: Option<&Tensor>,
        acc: &mut Vec<f32>,
        d0: &mut Vec<f32>,
        out: &mut [f32],
        weights_quantized: bool,
    ) -> Result<()> {
        let (m, k0) = (self.gemm0.m, self.gemm0.k);
        let n1 = self.gemm1.n;
        if a.len() != m * k0 {
            return Err(KernelError::Tensor(bolt_tensor::TensorError::shape(
                "b2b gemm A",
                &[m * k0],
                &[a.len()],
            )));
        }
        if out.len() != m * n1 {
            return Err(KernelError::Tensor(bolt_tensor::TensorError::shape(
                "b2b gemm D1",
                &[m * n1],
                &[out.len()],
            )));
        }
        let tb_m = self.config0.threadblock.m;
        let stripes = m.div_ceil(tb_m);
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        if threads > 1 && stripes > 1 && m >= self.parallel_m_rows.max(1) {
            let workers = threads.min(stripes);
            let per = stripes.div_ceil(workers);
            let result = std::sync::Mutex::new(Ok(()));
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut s0 = 0;
                while s0 < stripes {
                    let s1 = (s0 + per).min(stripes);
                    let rows = (s1 * tb_m).min(m) - s0 * tb_m;
                    let (chunk, tail) = rest.split_at_mut(rows * n1);
                    rest = tail;
                    let (lo, hi) = (s0, s1);
                    let result = &result;
                    scope.spawn(move || {
                        let (mut acc, mut d0) = (Vec::new(), Vec::new());
                        if let Err(e) = self.stripes_into(
                            a,
                            w0,
                            c0,
                            w1,
                            c1,
                            lo,
                            hi,
                            &mut acc,
                            &mut d0,
                            chunk,
                            weights_quantized,
                        ) {
                            *result.lock().unwrap() = Err(e);
                        }
                    });
                    s0 = s1;
                }
            });
            result.into_inner().unwrap()
        } else {
            self.stripes_into(
                a,
                w0,
                c0,
                w1,
                c1,
                0,
                stripes,
                acc,
                d0,
                out,
                weights_quantized,
            )
        }
    }

    /// Computes M-stripes `lo..hi`; `out` starts at global row
    /// `lo * tb_m`.
    #[allow(clippy::too_many_arguments)]
    fn stripes_into(
        &self,
        a: &[f32],
        w0: &[f32],
        c0: Option<&Tensor>,
        w1: &[f32],
        c1: Option<&Tensor>,
        lo: usize,
        hi: usize,
        acc: &mut Vec<f32>,
        d0: &mut Vec<f32>,
        out: &mut [f32],
        weights_quantized: bool,
    ) -> Result<()> {
        let (m, n0, k0) = (self.gemm0.m, self.gemm0.n, self.gemm0.k);
        let n1 = self.gemm1.n;
        let tb_m = self.config0.threadblock.m;
        let base = lo * tb_m;
        for s in lo..hi {
            let row0 = s * tb_m;
            let rows = tb_m.min(m - row0);
            let mut k0_kernel = GemmKernel {
                problem: self.gemm0,
                config: self.config0,
                epilogue: self.epilogue0,
                parallel_m_rows: self.parallel_m_rows,
            };
            k0_kernel.problem.m = rows;
            d0.resize(rows * n0, 0.0);
            k0_kernel.run_into(
                &a[row0 * k0..(row0 + rows) * k0],
                w0,
                c0,
                acc,
                d0,
                weights_quantized,
            )?;

            let mut k1_kernel = GemmKernel {
                problem: self.gemm1,
                config: self.config1,
                epilogue: self.epilogue1,
                parallel_m_rows: self.parallel_m_rows,
            };
            k1_kernel.problem.m = rows;
            let out_rows = &mut out[(row0 - base) * n1..(row0 - base + rows) * n1];
            k1_kernel.run_into(d0, w1, c1, acc, out_rows, weights_quantized)?;
        }
        Ok(())
    }

    /// Performance profile of the fused kernel: one launch, no
    /// intermediate DRAM traffic, both main loops' flops, and (for the
    /// smem variant) the staging traffic through shared memory.
    pub fn profile(&self, arch: &GpuArch) -> KernelProfile {
        let elt = self.gemm0.element.size_bytes() as f64;
        let batch = self.gemm0.batch as f64;
        let p0 = perf::gemm_profile(arch, &self.gemm0, &self.config0, &self.epilogue0, None);
        let p1 = perf::gemm_profile(arch, &self.gemm1, &self.config1, &self.epilogue1, None);

        let grid = (self.gemm0.batch * self.gemm0.m.div_ceil(self.config0.threadblock.m)) as u64;
        let d0_bytes = batch * (self.gemm0.m * self.gemm0.n) as f64 * elt;

        // DRAM: GEMM0 reads minus nothing, GEMM1 reads minus its D0 input,
        // plus only D1 is written.
        let dram_read = p0.dram_read_bytes
            + (p1.dram_read_bytes - d0_bytes)
                .max(batch * (self.gemm1.k * self.gemm1.n) as f64 * elt);
        let dram_write = p1.dram_write_bytes;

        let staging = match self.residence {
            Residence::SharedMemory => 2.0 * d0_bytes, // store + load through smem
            Residence::RegisterFile => 0.0,
        };
        let flops = PipelineFlops {
            tensor_core: p0.flops.tensor_core + p1.flops.tensor_core,
            cuda_core: p0.flops.cuda_core + p1.flops.cuda_core,
            sfu: p0.flops.sfu + p1.flops.sfu,
        };
        let eff0 = p0.mainloop_efficiency;
        let eff1 = p1.mainloop_efficiency;
        let w0 = p0.flops.tensor_core + p0.flops.cuda_core;
        let w1 = p1.flops.tensor_core + p1.flops.cuda_core;
        let mainloop_efficiency = (eff0 * w0 + eff1 * w1) / (w0 + w1).max(1.0);

        KernelProfile {
            name: format!("b2b_gemm_{}_{}_{}", self.gemm0, self.gemm1, self.residence),
            grid_blocks: grid,
            block: self.block_resources(),
            flops,
            dram_read_bytes: dram_read,
            dram_write_bytes: dram_write,
            smem_bytes: p0.smem_bytes + p1.smem_bytes + staging,
            dtype: self.gemm0.element,
            alignment_elems: self
                .config0
                .min_alignment()
                .min(self.config1.min_alignment()),
            bank_conflict_ways: 1.0, // the paper's conflict-free staging layout
            mainloop_efficiency,
            pipelined_overlap: perf::pipelined_overlap(&self.config0),
        }
    }

    /// Simulated time of the fused kernel.
    pub fn time(&self, arch: &GpuArch) -> KernelTime {
        simulate_kernel(arch, &self.profile(arch))
    }

    /// Simulated time of the *unfused* baseline: the same two
    /// epilogue-fused GEMMs as separate launches (what "Bolt with only
    /// epilogue fusion" does in Table 1).
    pub fn unfused_time_us(&self, arch: &GpuArch) -> f64 {
        let k0 = GemmKernel::new(self.gemm0, GemmConfig::turing_default(), self.epilogue0);
        let k1 = GemmKernel::new(self.gemm1, GemmConfig::turing_default(), self.epilogue1);
        k0.time(arch).total_us + k1.time(arch).total_us
    }
}

/// A fused back-to-back Conv2D kernel. The second convolution must be a
/// 1×1, stride-1, unpadded ("pointwise unit") conv per the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct B2bConvKernel {
    /// First convolution (any geometry).
    pub conv0: Conv2dProblem,
    /// Second convolution (1×1, stride 1, no padding, `C == conv0.k`).
    pub conv1: Conv2dProblem,
    /// Template parameters of the first main loop.
    pub config0: Conv2dConfig,
    /// Template parameters of the second main loop.
    pub config1: Conv2dConfig,
    /// Epilogue of the first conv.
    pub epilogue0: Epilogue,
    /// Epilogue of the second conv.
    pub epilogue1: Epilogue,
    /// Intermediate-residence design.
    pub residence: Residence,
    /// Element type.
    pub element: DType,
}

impl B2bConvKernel {
    /// Builds a persistent Conv kernel with residence-satisfying configs.
    pub fn with_residence(
        conv0: Conv2dProblem,
        conv1: Conv2dProblem,
        epilogue0: Epilogue,
        epilogue1: Epilogue,
        residence: Residence,
        element: DType,
    ) -> Self {
        let tb_m = if conv0.k.max(conv1.k) >= 128 { 32 } else { 64 };
        let mk = |out_ch: usize| {
            let mut c = Conv2dConfig::turing_default();
            c.gemm.threadblock = crate::tiles::TileShape::new(tb_m, out_ch, 32.min(out_ch.max(8)));
            c.gemm.warp = match residence {
                Residence::RegisterFile => {
                    crate::tiles::TileShape::new((tb_m / 4).max(16), out_ch, c.gemm.threadblock.k)
                }
                Residence::SharedMemory => crate::tiles::TileShape::new(
                    32,
                    (out_ch / 2).clamp(8, 64),
                    c.gemm.threadblock.k,
                ),
            };
            c
        };
        B2bConvKernel {
            conv0,
            conv1,
            config0: mk(conv0.k),
            config1: mk(conv1.k),
            epilogue0,
            epilogue1,
            residence,
            element,
        }
    }

    /// Picks RF residence when legal, else shared memory.
    pub fn auto(
        arch: &GpuArch,
        conv0: Conv2dProblem,
        conv1: Conv2dProblem,
        epilogue0: Epilogue,
        epilogue1: Epilogue,
        element: DType,
    ) -> Result<Self> {
        let rf = Self::with_residence(
            conv0,
            conv1,
            epilogue0,
            epilogue1,
            Residence::RegisterFile,
            element,
        );
        if rf.validate(arch).is_ok() {
            return Ok(rf);
        }
        let sm = Self::with_residence(
            conv0,
            conv1,
            epilogue0,
            epilogue1,
            Residence::SharedMemory,
            element,
        );
        sm.validate(arch)?;
        Ok(sm)
    }

    /// Validates chaining, the 1×1 requirement, residence, and capacity.
    ///
    /// # Errors
    ///
    /// As for [`B2bGemmKernel::validate`].
    pub fn validate(&self, arch: &GpuArch) -> Result<()> {
        if !self.conv1.is_pointwise_unit() {
            return Err(KernelError::unsupported(
                "second conv of a persistent fusion must be 1x1, stride 1, unpadded",
            ));
        }
        if self.conv1.c != self.conv0.k {
            return Err(KernelError::unsupported(format!(
                "conv1 input channels ({}) must equal conv0 output channels ({})",
                self.conv1.c, self.conv0.k
            )));
        }
        if self.conv1.n != self.conv0.n
            || self.conv1.h != self.conv0.out_h()
            || self.conv1.w != self.conv0.out_w()
        {
            return Err(KernelError::unsupported(
                "conv1 spatial dims must match conv0 output dims",
            ));
        }
        // Threadblock residence: ThreadBlock_N = output channels.
        if self.config0.gemm.threadblock.n != self.conv0.k
            || self.config1.gemm.threadblock.n != self.conv1.k
        {
            return Err(KernelError::unsupported(
                "threadblock residence: ThreadBlock_N must equal Conv output channels",
            ));
        }
        if self.residence == Residence::RegisterFile
            && (self.config0.gemm.warp.n != self.conv0.k
                || self.config1.gemm.warp.n != self.conv1.k)
        {
            return Err(KernelError::unsupported(
                "RF residence requires Warp_N = Conv output channels",
            ));
        }
        let b2b = self.as_b2b_gemm();
        b2b.validate(arch)
    }

    /// The back-to-back GEMM view of this fusion (via implicit GEMM).
    pub fn as_b2b_gemm(&self) -> B2bGemmKernel {
        let (m0, n0, k0) = self.conv0.implicit_gemm_mnk();
        let (m1, n1, k1) = self.conv1.implicit_gemm_mnk();
        debug_assert_eq!(m0, m1);
        debug_assert_eq!(n0, k1);
        let g0 = GemmProblem {
            m: m0,
            n: n0,
            k: k0,
            batch: 1,
            element: self.element,
            ..GemmProblem::fp16(m0, n0, k0)
        };
        let g1 = GemmProblem {
            m: m1,
            n: n1,
            k: k1,
            batch: 1,
            element: self.element,
            ..GemmProblem::fp16(m1, n1, k1)
        };
        B2bGemmKernel {
            gemm0: g0,
            gemm1: g1,
            config0: self.config0.gemm,
            config1: self.config1.gemm,
            epilogue0: self.epilogue0,
            epilogue1: self.epilogue1,
            residence: self.residence,
            parallel_m_rows: crate::gemm::PARALLEL_M_ROWS,
        }
    }

    /// Functional execution: runs the two convolutions with the fused
    /// numerics (intermediate held as FP16). Identical results to the
    /// sequential epilogue-fused kernels.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    pub fn run(
        &self,
        input: &Tensor,
        f0: &Tensor,
        b0: Option<&Tensor>,
        f1: &Tensor,
        b1: Option<&Tensor>,
    ) -> Result<Tensor> {
        let k0 = Conv2dKernel::new(self.conv0, self.config0, self.epilogue0, self.element);
        let d0 = k0.run(input, f0, b0)?;
        let k1 = Conv2dKernel::new(self.conv1, self.config1, self.epilogue1, self.element);
        k1.run(&d0, f1, b1)
    }

    /// Allocation-free streaming execution into a caller-provided NHWC
    /// buffer: conv0's output streams through the reusable `d0` scratch
    /// as a raw NHWC buffer (never materialized as a tensor) and feeds
    /// conv1 directly, whose output lands in `out`. `fm0`/`fm1` are the
    /// prepacked `(R*S*C, K)` filter matrices; `in_c <= conv0.c` physical
    /// input channels are read with the channel pad folded into im2col.
    /// Bit-identical to [`B2bConvKernel::run`] on the padded input.
    ///
    /// `filters_quantized` asserts that `fm0` and `fm1` are already
    /// exactly representable in the element dtype (see
    /// [`GemmKernel::run_into`](crate::gemm::GemmKernel::run_into)).
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    #[allow(clippy::too_many_arguments)]
    pub fn run_into(
        &self,
        input_nhwc: &[f32],
        in_c: usize,
        fm0: &[f32],
        b0: Option<&Tensor>,
        fm1: &[f32],
        b1: Option<&Tensor>,
        cols: &mut Vec<f32>,
        acc: &mut Vec<f32>,
        d0: &mut Vec<f32>,
        out: &mut [f32],
        filters_quantized: bool,
    ) -> Result<()> {
        let k0 = Conv2dKernel::new(self.conv0, self.config0, self.epilogue0, self.element);
        let (m0, n0, _) = self.conv0.implicit_gemm_mnk();
        d0.resize(m0 * n0, 0.0);
        k0.run_into(input_nhwc, in_c, fm0, b0, cols, acc, d0, filters_quantized)?;
        let k1 = Conv2dKernel::new(self.conv1, self.config1, self.epilogue1, self.element);
        k1.run_into(d0, self.conv1.c, fm1, b1, cols, acc, out, filters_quantized)
    }

    /// Performance profile of the fused kernel (one launch, no
    /// intermediate DRAM traffic).
    pub fn profile(&self, arch: &GpuArch) -> KernelProfile {
        let elt = self.element.size_bytes() as f64;
        let p0 = perf::conv2d_profile(
            arch,
            &self.conv0,
            &self.config0.gemm,
            &self.epilogue0,
            self.element,
            None,
        );
        let p1 = perf::conv2d_profile(
            arch,
            &self.conv1,
            &self.config1.gemm,
            &self.epilogue1,
            self.element,
            None,
        );
        let (m0, n0, _) = self.conv0.implicit_gemm_mnk();
        let d0_bytes = (m0 * n0) as f64 * elt;
        let filter1_bytes = (self.conv1.k * self.conv1.c) as f64 * elt;

        let grid = m0.div_ceil(self.config0.gemm.threadblock.m) as u64;
        let staging = match self.residence {
            Residence::SharedMemory => 2.0 * d0_bytes,
            Residence::RegisterFile => 0.0,
        };
        let b2b = self.as_b2b_gemm();
        KernelProfile {
            name: format!(
                "b2b_conv_{}x{}_{}ch_{}",
                self.conv0.h, self.conv0.w, self.conv0.k, self.residence
            ),
            grid_blocks: grid,
            block: b2b.block_resources(),
            flops: PipelineFlops {
                tensor_core: p0.flops.tensor_core + p1.flops.tensor_core,
                cuda_core: p0.flops.cuda_core + p1.flops.cuda_core,
                sfu: p0.flops.sfu + p1.flops.sfu,
            },
            dram_read_bytes: p0.dram_read_bytes
                + filter1_bytes
                + (p1.dram_read_bytes - d0_bytes - filter1_bytes).max(0.0) * 0.2,
            dram_write_bytes: p1.dram_write_bytes,
            smem_bytes: p0.smem_bytes + p1.smem_bytes + staging,
            dtype: self.element,
            alignment_elems: p0.alignment_elems.min(p1.alignment_elems),
            bank_conflict_ways: 1.0,
            pipelined_overlap: perf::pipelined_overlap(&self.config0.gemm),
            // Flops-weighted: the small second main loop rides the first
            // loop's already-filled pipeline, so its per-kernel fill/drain
            // penalty does not apply at full weight (fusion benefit (iii)
            // in the paper: enlarged scheduling scope).
            mainloop_efficiency: {
                let w0 = p0.flops.tensor_core + p0.flops.cuda_core;
                let w1 = p1.flops.tensor_core + p1.flops.cuda_core;
                (p0.mainloop_efficiency * w0
                    + p1.mainloop_efficiency.max(p0.mainloop_efficiency * 0.8) * w1)
                    / (w0 + w1).max(1.0)
            },
        }
    }

    /// Simulated time of the fused kernel.
    pub fn time(&self, arch: &GpuArch) -> KernelTime {
        simulate_kernel(arch, &self.profile(arch))
    }

    /// Simulated time of the unfused baseline (two epilogue-fused conv
    /// launches).
    pub fn unfused_time_us(&self, arch: &GpuArch) -> f64 {
        let k0 = Conv2dKernel::new(
            self.conv0,
            Conv2dConfig::turing_default(),
            self.epilogue0,
            self.element,
        );
        let k1 = Conv2dKernel::new(
            self.conv1,
            Conv2dConfig::turing_default(),
            self.epilogue1,
            self.element,
        );
        k0.time(arch).total_us + k1.time(arch).total_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::gemm_ref::b2b_gemm_ref;
    use bolt_tensor::Activation;

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    fn relu16() -> Epilogue {
        Epilogue {
            beta: 0.0,
            bias: crate::epilogue::BiasMode::None,
            ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
        }
    }

    #[test]
    fn rf_resident_matches_sequential_reference() {
        let g0 = GemmProblem::fp16(64, 16, 24);
        let g1 = GemmProblem::fp16(64, 8, 16);
        let k = B2bGemmKernel::with_residence(g0, g1, relu16(), relu16(), Residence::RegisterFile);
        k.validate(&t4()).unwrap();
        let a = Tensor::randn(&[64, 24], DType::F16, 1);
        let w0 = Tensor::randn(&[24, 16], DType::F16, 2);
        let w1 = Tensor::randn(&[16, 8], DType::F16, 3);
        let fused = k.run(&a, &w0, None, &w1, None).unwrap();
        let expect = b2b_gemm_ref(
            &a,
            &w0,
            None,
            1.0,
            0.0,
            Activation::ReLU,
            &w1,
            None,
            1.0,
            0.0,
            Activation::ReLU,
        )
        .unwrap();
        assert_eq!(fused.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn smem_resident_matches_sequential_reference() {
        let g0 = GemmProblem::fp16(96, 32, 16);
        let g1 = GemmProblem::fp16(96, 16, 32);
        let k = B2bGemmKernel::with_residence(g0, g1, relu16(), relu16(), Residence::SharedMemory);
        k.validate(&t4()).unwrap();
        let a = Tensor::randn(&[96, 16], DType::F16, 4);
        let w0 = Tensor::randn(&[16, 32], DType::F16, 5);
        let w1 = Tensor::randn(&[32, 16], DType::F16, 6);
        let fused = k.run(&a, &w0, None, &w1, None).unwrap();
        let expect = b2b_gemm_ref(
            &a,
            &w0,
            None,
            1.0,
            0.0,
            Activation::ReLU,
            &w1,
            None,
            1.0,
            0.0,
            Activation::ReLU,
        )
        .unwrap();
        assert_eq!(fused.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn residence_violations_are_rejected() {
        let g0 = GemmProblem::fp16(64, 16, 24);
        let g1 = GemmProblem::fp16(64, 8, 16);
        let mut k =
            B2bGemmKernel::with_residence(g0, g1, relu16(), relu16(), Residence::RegisterFile);
        // Break ThreadBlock0_N == GEMM0_N.
        k.config0.threadblock.n = 8;
        let err = k.validate(&t4()).unwrap_err();
        assert!(err.to_string().contains("residence"));
    }

    #[test]
    fn chain_mismatch_rejected() {
        let g0 = GemmProblem::fp16(64, 16, 24);
        let bad = GemmProblem::fp16(64, 8, 32); // k != n0
        let k = B2bGemmKernel::with_residence(g0, bad, relu16(), relu16(), Residence::RegisterFile);
        assert!(k.validate(&t4()).is_err());
        let bad_m = GemmProblem::fp16(32, 8, 16);
        let k2 =
            B2bGemmKernel::with_residence(g0, bad_m, relu16(), relu16(), Residence::RegisterFile);
        assert!(k2.validate(&t4()).is_err());
    }

    #[test]
    fn rf_pressure_forces_smem_fallback() {
        // Large GEMM_N makes RF residence exceed the register budget; the
        // auto selector must fall back to shared memory (paper Section
        // 3.1.1 motivation for the smem design).
        let g0 = GemmProblem::fp16(16384, 256, 64);
        let g1 = GemmProblem::fp16(16384, 128, 256);
        let k = B2bGemmKernel::auto(&t4(), g0, g1, relu16(), relu16()).unwrap();
        assert_eq!(k.residence, Residence::SharedMemory);
        // Small N stays in the register file.
        let s0 = GemmProblem::fp16(16384, 64, 256);
        let s1 = GemmProblem::fp16(16384, 16, 64);
        let k2 = B2bGemmKernel::auto(&t4(), s0, s1, relu16(), relu16()).unwrap();
        assert_eq!(k2.residence, Residence::RegisterFile);
    }

    #[test]
    fn fusion_beats_unfused_on_memory_bound_chains() {
        // Table 1 row: (16384, 64, 256) -> (16384, 16, 64).
        let g0 = GemmProblem::fp16(16384, 64, 256);
        let g1 = GemmProblem::fp16(16384, 16, 64);
        let k = B2bGemmKernel::auto(&t4(), g0, g1, relu16(), relu16()).unwrap();
        let fused = k.time(&t4()).total_us;
        let unfused = k.unfused_time_us(&t4());
        let speedup = unfused / fused;
        assert!(
            speedup > 1.1 && speedup < 2.2,
            "expected Table 1-band speedup, got {speedup:.2} ({fused:.1} vs {unfused:.1} us)"
        );
    }

    #[test]
    fn conv_fusion_requires_pointwise_second() {
        let c0 = Conv2dProblem::new(32, 56, 56, 48, 48, 3, 3, (1, 1), (1, 1));
        let bad = Conv2dProblem::new(32, 56, 56, 48, 48, 3, 3, (1, 1), (1, 1));
        let k = B2bConvKernel::with_residence(
            c0,
            bad,
            relu16(),
            relu16(),
            Residence::RegisterFile,
            DType::F16,
        );
        assert!(k.validate(&t4()).is_err());
    }

    #[test]
    fn conv_fusion_functional_matches_sequential() {
        let c0 = Conv2dProblem::new(1, 8, 8, 4, 8, 3, 3, (1, 1), (1, 1));
        let c1 = Conv2dProblem::new(1, 8, 8, 8, 8, 1, 1, (1, 1), (0, 0));
        let k = B2bConvKernel::with_residence(
            c0,
            c1,
            relu16(),
            relu16(),
            Residence::RegisterFile,
            DType::F16,
        );
        let x = bolt_tensor::conv_ref::random_input(&c0, DType::F16, 1);
        let f0 = bolt_tensor::conv_ref::random_filter(&c0, DType::F16, 2);
        let f1 = bolt_tensor::conv_ref::random_filter(&c1, DType::F16, 3);
        let fused = k.run(&x, &f0, None, &f1, None).unwrap();
        // Sequential epilogue-fused kernels.
        let k0 = Conv2dKernel::new(c0, k.config0, relu16(), DType::F16);
        let k1 = Conv2dKernel::new(c1, k.config1, relu16(), DType::F16);
        let d0 = k0.run(&x, &f0, None).unwrap();
        let expect = k1.run(&d0, &f1, None).unwrap();
        assert_eq!(fused.max_abs_diff(&expect).unwrap(), 0.0);
    }

    #[test]
    fn conv_fusion_beats_unfused_in_table2_band() {
        // Table 2 row: 56^2, 64ch 3x3 (1,1) + 1x1 -> speedup ~2x.
        let c0 = Conv2dProblem::new(32, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1));
        let c1 = Conv2dProblem::new(32, 56, 56, 64, 64, 1, 1, (1, 1), (0, 0));
        let k = B2bConvKernel::auto(&t4(), c0, c1, relu16(), relu16(), DType::F16).unwrap();
        let speedup = k.unfused_time_us(&t4()) / k.time(&t4()).total_us;
        assert!(speedup > 1.05 && speedup < 2.6, "got {speedup:.2}");
    }
}
