//! N-way persistent kernels: fusing chains of more than two GEMMs.
//!
//! The paper notes that "our persistent kernels can fuse more than two
//! GEMMs/Convs, which can further improve the performance by saving
//! intermediate memory access and kernel launch" (Section 4.1.3), and
//! that multi-GEMM fusion works "by extending the persistent kernel
//! templates and duplicating the GEMM pipelines" (Section 3.1.1). This
//! module implements that extension: a [`PersistentGemmChain`] of `N ≥ 2`
//! stages sharing one M tiling, with per-stage threadblock-residence
//! checks and a combined resource model.

use serde::{Deserialize, Serialize};

use bolt_gpu_sim::{
    simulate_kernel, BlockResources, GpuArch, KernelProfile, KernelTime, PipelineFlops,
};
use bolt_tensor::Tensor;

use crate::b2b::Residence;
use crate::epilogue::Epilogue;
use crate::error::KernelError;
use crate::gemm::{GemmKernel, GemmProblem};
use crate::perf;
use crate::template::GemmConfig;
use crate::tiles::TileShape;
use crate::Result;

/// One stage of a persistent chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStage {
    /// This stage's GEMM problem (`m` equal across the chain; `k` equal
    /// to the previous stage's `n`).
    pub problem: GemmProblem,
    /// Template parameters (threadblock N pinned to the stage's N).
    pub config: GemmConfig,
    /// Stage epilogue, computed in fast memory for all but the last
    /// stage.
    pub epilogue: Epilogue,
}

/// A persistent kernel fusing `N ≥ 2` chained GEMMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistentGemmChain {
    /// The fused stages, in dataflow order.
    pub stages: Vec<ChainStage>,
    /// Intermediate-residence design (shared by every handoff).
    pub residence: Residence,
    /// Minimum M before the per-stage executors parallelize M-stripes
    /// (see [`GemmKernel::parallel_m_rows`]).
    pub parallel_m_rows: usize,
}

impl PersistentGemmChain {
    /// Builds a chain with residence-satisfying configs, like
    /// [`crate::B2bGemmKernel::with_residence`] but for any length.
    pub fn with_residence(
        problems: &[GemmProblem],
        epilogues: &[Epilogue],
        residence: Residence,
    ) -> Result<Self> {
        if problems.len() < 2 {
            return Err(KernelError::unsupported("a chain needs at least two GEMMs"));
        }
        if problems.len() != epilogues.len() {
            return Err(KernelError::unsupported("one epilogue per GEMM required"));
        }
        let max_n = problems.iter().map(|p| p.n).max().unwrap_or(0);
        let tb_m = if max_n >= 128 { 32 } else { 64 };
        let stages = problems
            .iter()
            .zip(epilogues)
            .map(|(&problem, &epilogue)| {
                let mut config = GemmConfig::turing_default();
                config.threadblock = TileShape::new(tb_m, problem.n, 32.min(problem.n.max(8)));
                config.warp = match residence {
                    Residence::RegisterFile => {
                        TileShape::new((tb_m / 4).max(16), problem.n, config.threadblock.k)
                    }
                    Residence::SharedMemory => {
                        TileShape::new(32, (problem.n / 2).clamp(8, 64), config.threadblock.k)
                    }
                };
                ChainStage {
                    problem,
                    config,
                    epilogue,
                }
            })
            .collect();
        Ok(PersistentGemmChain {
            stages,
            residence,
            parallel_m_rows: crate::gemm::PARALLEL_M_ROWS,
        })
    }

    /// Overrides the M extent at which the stage executors go
    /// data-parallel (see [`GemmKernel::with_parallel_m_rows`]).
    #[must_use]
    pub fn with_parallel_m_rows(mut self, rows: usize) -> Self {
        self.parallel_m_rows = rows.max(1);
        self
    }

    /// Picks RF residence when legal, else shared memory.
    pub fn auto(arch: &GpuArch, problems: &[GemmProblem], epilogues: &[Epilogue]) -> Result<Self> {
        let rf = Self::with_residence(problems, epilogues, Residence::RegisterFile)?;
        if rf.validate(arch).is_ok() {
            return Ok(rf);
        }
        let sm = Self::with_residence(problems, epilogues, Residence::SharedMemory)?;
        sm.validate(arch)?;
        Ok(sm)
    }

    /// Number of fused stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the chain has no stages (never constructible via the
    /// public constructors).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Combined per-block resources: in the RF design every stage's
    /// accumulator fragment is live at the handoff with its successor;
    /// the smem design keeps only the largest stage plus the largest
    /// staging buffer.
    pub fn block_resources(&self) -> BlockResources {
        let elt = self.stages[0].problem.element;
        let threads = self
            .stages
            .iter()
            .map(|s| s.config.threads())
            .max()
            .unwrap_or(32);
        let accs: Vec<usize> = self
            .stages
            .iter()
            .map(|s| s.config.warp.mn() / 32)
            .collect();
        let frags = {
            let c = &self.stages[0].config;
            2 * (c.warp.m + c.warp.n) * c.instruction.k / 32 * elt.size_bytes().max(2) / 4
        };
        let regs = match self.residence {
            // Peak pressure: the largest adjacent accumulator pair.
            Residence::RegisterFile => accs
                .windows(2)
                .map(|w| w[0] + w[1])
                .max()
                .unwrap_or(accs[0]),
            Residence::SharedMemory => accs.into_iter().max().unwrap_or(0),
        } + frags
            + 40;
        let smem_main = self
            .stages
            .iter()
            .map(|s| s.config.smem_bytes(elt))
            .max()
            .unwrap_or(0);
        let staging = match self.residence {
            Residence::RegisterFile => 0,
            Residence::SharedMemory => self
                .stages
                .iter()
                .take(self.stages.len() - 1)
                .map(|s| (s.config.threadblock.m * s.problem.n * elt.size_bytes()) as u32)
                .max()
                .unwrap_or(0),
        };
        BlockResources::new(threads, (regs as u32).min(512), smem_main + staging)
    }

    /// Validates chaining, residence, and hardware capacity across the
    /// whole chain.
    ///
    /// # Errors
    ///
    /// As for [`crate::B2bGemmKernel::validate`].
    pub fn validate(&self, arch: &GpuArch) -> Result<()> {
        for pair in self.stages.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.problem.m != a.problem.m {
                return Err(KernelError::unsupported("all chain stages must share M"));
            }
            if b.problem.k != a.problem.n {
                return Err(KernelError::unsupported(format!(
                    "stage K ({}) must equal previous stage N ({})",
                    b.problem.k, a.problem.n
                )));
            }
            if b.config.threadblock.m != a.config.threadblock.m {
                return Err(KernelError::unsupported(
                    "all stages must share ThreadBlock_M",
                ));
            }
        }
        for stage in &self.stages {
            if stage.config.threadblock.n != stage.problem.n {
                return Err(KernelError::unsupported(
                    "threadblock residence: ThreadBlock_N must equal GEMM_N at every stage",
                ));
            }
            if self.residence == Residence::RegisterFile && stage.config.warp.n != stage.problem.n {
                return Err(KernelError::unsupported(
                    "RF residence requires Warp_N = GEMM_N at every stage",
                ));
            }
        }
        let res = self.block_resources();
        if res.regs_per_thread > arch.max_regs_per_thread {
            return Err(KernelError::illegal(format!(
                "chain needs {} regs/thread (> {})",
                res.regs_per_thread, arch.max_regs_per_thread
            )));
        }
        if res.smem_bytes > arch.max_smem_per_block {
            return Err(KernelError::illegal(format!(
                "chain needs {} B smem (> {})",
                res.smem_bytes, arch.max_smem_per_block
            )));
        }
        Ok(())
    }

    /// Functional execution: `weights[i]` is stage `i`'s `(k_i, n_i)`
    /// operand, `biases[i]` its optional bias. Numerically identical to
    /// running the epilogue-fused stages sequentially.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    pub fn run(
        &self,
        a: &Tensor,
        weights: &[&Tensor],
        biases: &[Option<&Tensor>],
    ) -> Result<Tensor> {
        if weights.len() != self.stages.len() || biases.len() != self.stages.len() {
            return Err(KernelError::unsupported(
                "one weight/bias per stage required",
            ));
        }
        let mut cur = a.clone();
        for ((stage, w), b) in self.stages.iter().zip(weights).zip(biases) {
            let kernel = GemmKernel {
                problem: stage.problem,
                config: stage.config,
                epilogue: stage.epilogue,
                parallel_m_rows: self.parallel_m_rows,
            };
            let (d, _) = kernel.run(&cur, w, *b)?;
            cur = d;
        }
        Ok(cur)
    }

    /// Allocation-free execution into a caller-provided buffer: stage
    /// intermediates ping-pong between the two reusable scratch buffers
    /// (the software analogue of fast-memory residence), the input is
    /// read in place, and the final stage writes `out` directly.
    /// Bit-identical to [`PersistentGemmChain::run`].
    ///
    /// `weights_quantized` asserts that every slice in `weights` is
    /// already exactly representable in its stage's element dtype (see
    /// [`GemmKernel::run_into`](crate::gemm::GemmKernel::run_into)).
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched operands.
    #[allow(clippy::too_many_arguments)]
    pub fn run_into(
        &self,
        a: &[f32],
        weights: &[&[f32]],
        biases: &[Option<&Tensor>],
        acc: &mut Vec<f32>,
        ping: &mut Vec<f32>,
        pong: &mut Vec<f32>,
        out: &mut [f32],
        weights_quantized: bool,
    ) -> Result<()> {
        if weights.len() != self.stages.len() || biases.len() != self.stages.len() {
            return Err(KernelError::unsupported(
                "one weight/bias per stage required",
            ));
        }
        let last = self.stages.len() - 1;
        for (i, ((stage, w), b)) in self.stages.iter().zip(weights).zip(biases).enumerate() {
            let kernel = GemmKernel {
                problem: stage.problem,
                config: stage.config,
                epilogue: stage.epilogue,
                parallel_m_rows: self.parallel_m_rows,
            };
            let numel = stage.problem.m * stage.problem.n;
            if i == last {
                let src: &[f32] = if i == 0 {
                    a
                } else if i % 2 == 1 {
                    ping
                } else {
                    pong
                };
                kernel.run_into(src, w, *b, acc, out, weights_quantized)?;
            } else if i == 0 {
                ping.resize(numel, 0.0);
                kernel.run_into(a, w, *b, acc, ping, weights_quantized)?;
            } else if i % 2 == 1 {
                pong.resize(numel, 0.0);
                kernel.run_into(ping, w, *b, acc, pong, weights_quantized)?;
            } else {
                ping.resize(numel, 0.0);
                kernel.run_into(pong, w, *b, acc, ping, weights_quantized)?;
            }
        }
        Ok(())
    }

    /// Performance profile: one launch; only the first stage's `A` and
    /// every stage's weights are read from DRAM; only the last stage's
    /// `D` is written.
    pub fn profile(&self, arch: &GpuArch) -> KernelProfile {
        let elt = self.stages[0].problem.element.size_bytes() as f64;
        let profiles: Vec<KernelProfile> = self
            .stages
            .iter()
            .map(|s| perf::gemm_profile(arch, &s.problem, &s.config, &s.epilogue, None))
            .collect();

        let first = &self.stages[0];
        let grid =
            (first.problem.batch * first.problem.m.div_ceil(first.config.threadblock.m)) as u64;

        let mut flops = PipelineFlops::none();
        let mut weight_bytes = 0.0;
        let mut smem = 0.0;
        let mut eff_num = 0.0;
        let mut eff_den = 0.0;
        for (stage, p) in self.stages.iter().zip(&profiles) {
            flops.tensor_core += p.flops.tensor_core;
            flops.cuda_core += p.flops.cuda_core;
            flops.sfu += p.flops.sfu;
            weight_bytes += (stage.problem.k * stage.problem.n) as f64 * elt;
            smem += p.smem_bytes;
            let w = p.flops.tensor_core + p.flops.cuda_core;
            eff_num += p.mainloop_efficiency * w;
            eff_den += w;
        }
        let staging = match self.residence {
            Residence::SharedMemory => self
                .stages
                .iter()
                .take(self.len() - 1)
                .map(|s| 2.0 * (s.problem.m * s.problem.n) as f64 * elt)
                .sum(),
            Residence::RegisterFile => 0.0,
        };
        let a_bytes = (first.problem.m * first.problem.k) as f64 * elt;
        let last = self.stages.last().expect("non-empty");
        let out_bytes =
            (last.problem.m * last.problem.n) as f64 * last.epilogue.out_dtype.size_bytes() as f64;

        KernelProfile {
            name: format!("persistent_chain_x{}_{}", self.len(), self.residence),
            grid_blocks: grid,
            block: self.block_resources(),
            flops,
            dram_read_bytes: a_bytes + weight_bytes,
            dram_write_bytes: out_bytes,
            smem_bytes: smem + staging,
            dtype: first.problem.element,
            alignment_elems: self
                .stages
                .iter()
                .map(|s| s.config.min_alignment())
                .min()
                .unwrap_or(8),
            bank_conflict_ways: 1.0,
            mainloop_efficiency: eff_num / eff_den.max(1.0),
            pipelined_overlap: perf::pipelined_overlap(&self.stages[0].config),
        }
    }

    /// Simulated time of the fused chain.
    pub fn time(&self, arch: &GpuArch) -> KernelTime {
        simulate_kernel(arch, &self.profile(arch))
    }

    /// Simulated time of the unfused baseline (one epilogue-fused kernel
    /// per stage).
    pub fn unfused_time_us(&self, arch: &GpuArch) -> f64 {
        self.stages
            .iter()
            .map(|s| {
                GemmKernel::new(s.problem, GemmConfig::turing_default(), s.epilogue)
                    .time(arch)
                    .total_us
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_tensor::gemm_ref::gemm_with_epilogue;
    use bolt_tensor::{Activation, DType};

    fn t4() -> GpuArch {
        GpuArch::tesla_t4()
    }

    fn relu() -> Epilogue {
        Epilogue {
            beta: 0.0,
            bias: crate::epilogue::BiasMode::None,
            ..Epilogue::bias_activation(Activation::ReLU, DType::F16)
        }
    }

    fn mlp_chain() -> Vec<GemmProblem> {
        vec![
            GemmProblem::fp16(16384, 64, 256),
            GemmProblem::fp16(16384, 32, 64),
            GemmProblem::fp16(16384, 16, 32),
        ]
    }

    #[test]
    fn three_stage_chain_validates_and_fuses() {
        let eps = vec![relu(); 3];
        let chain = PersistentGemmChain::auto(&t4(), &mlp_chain(), &eps).unwrap();
        assert_eq!(chain.len(), 3);
        let fused = chain.time(&t4()).total_us;
        let unfused = chain.unfused_time_us(&t4());
        let speedup = unfused / fused;
        assert!(
            speedup > 1.3,
            "3-way fusion should beat pairwise-at-most baselines: {speedup:.2}x"
        );
    }

    #[test]
    fn deeper_chains_save_more_than_pairs() {
        // Paper: fusing more than two "can further improve the performance".
        let eps3 = vec![relu(); 3];
        let chain3 = PersistentGemmChain::auto(&t4(), &mlp_chain(), &eps3).unwrap();
        let pair = PersistentGemmChain::auto(&t4(), &mlp_chain()[..2], &eps3[..2]).unwrap();
        let third = GemmKernel::new(mlp_chain()[2], GemmConfig::turing_default(), relu());
        let two_plus_one = pair.time(&t4()).total_us + third.time(&t4()).total_us;
        assert!(
            chain3.time(&t4()).total_us < two_plus_one,
            "{} !< {}",
            chain3.time(&t4()).total_us,
            two_plus_one
        );
    }

    #[test]
    fn chain_matches_sequential_reference() {
        let problems = vec![
            GemmProblem::fp16(48, 16, 24),
            GemmProblem::fp16(48, 8, 16),
            GemmProblem::fp16(48, 4, 8),
        ];
        let eps = vec![relu(); 3];
        let chain =
            PersistentGemmChain::with_residence(&problems, &eps, Residence::RegisterFile).unwrap();
        chain.validate(&t4()).unwrap();
        let a = Tensor::randn(&[48, 24], DType::F16, 1);
        let w: Vec<Tensor> = problems
            .iter()
            .enumerate()
            .map(|(i, p)| Tensor::randn(&[p.k, p.n], DType::F16, 10 + i as u64))
            .collect();
        let w_refs: Vec<&Tensor> = w.iter().collect();
        let fused = chain.run(&a, &w_refs, &[None, None, None]).unwrap();

        let mut cur = a;
        for wi in &w {
            cur =
                gemm_with_epilogue(&cur, wi, None, 1.0, 0.0, Activation::ReLU, DType::F16).unwrap();
        }
        assert_eq!(fused.max_abs_diff(&cur).unwrap(), 0.0);
    }

    #[test]
    fn broken_chains_rejected() {
        let eps = vec![relu(); 2];
        // K mismatch.
        let bad = vec![GemmProblem::fp16(64, 16, 24), GemmProblem::fp16(64, 8, 32)];
        let chain =
            PersistentGemmChain::with_residence(&bad, &eps, Residence::RegisterFile).unwrap();
        assert!(chain.validate(&t4()).is_err());
        // M mismatch.
        let bad_m = vec![GemmProblem::fp16(64, 16, 24), GemmProblem::fp16(32, 8, 16)];
        let chain_m =
            PersistentGemmChain::with_residence(&bad_m, &eps, Residence::RegisterFile).unwrap();
        assert!(chain_m.validate(&t4()).is_err());
        // Too short.
        assert!(
            PersistentGemmChain::with_residence(&bad[..1], &eps[..1], Residence::RegisterFile)
                .is_err()
        );
    }

    #[test]
    fn rf_pressure_grows_with_chain_width() {
        let eps = vec![relu(); 2];
        let wide = vec![
            GemmProblem::fp16(8192, 256, 64),
            GemmProblem::fp16(8192, 192, 256),
        ];
        let chain = PersistentGemmChain::auto(&t4(), &wide, &eps).unwrap();
        assert_eq!(chain.residence, Residence::SharedMemory);
    }
}
