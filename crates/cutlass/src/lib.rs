#![warn(missing_docs)]
//! # bolt-cutlass
//!
//! A CUTLASS-like templated kernel library, reproduced in Rust for the Bolt
//! (MLSys 2022) evaluation.
//!
//! NVIDIA CUTLASS provides C++ templates for every layer of the CUDA GEMM
//! hierarchy — device, threadblock, warp, and instruction tiles — which
//! users instantiate with declarative parameters (tile shapes, stage
//! counts, swizzle functors, alignments). Bolt's thesis is that such
//! templates are the right substrate for auto-tuning: a *small* space of
//! hardware-meaningful parameters replaces the huge opaque schedule space
//! of a traditional auto-tuner.
//!
//! This crate reproduces that substrate:
//!
//! * [`tiles`] / [`template`] — the template parameter space
//!   ([`GemmConfig`]) with CUTLASS's legality rules (divisibility, shared
//!   memory and register capacity, warp counts).
//! * [`epilogue`] — the four epilogue-fusion patterns the paper lists:
//!   elementwise operators, data-type conversion, broadcast vector over
//!   columns (bias), and partial reduction over columns.
//! * [`gemm`] / [`conv2d`] — *functional* executors that really compute,
//!   walking the threadblock → warp → instruction tile hierarchy with
//!   FP16-faithful rounding, validated against `bolt-tensor`'s references.
//! * [`b2b`] — the paper's persistent kernels: back-to-back GEMM/Conv
//!   fusion in RF-resident and shared-memory-resident variants, with the
//!   threadblock-residence legality checks of Section 3.1.1.
//! * [`perf`] — maps a template instantiation to a
//!   [`bolt_gpu_sim::KernelProfile`] for the analytic simulator.
//! * [`generator`] — the architecture-aware enumeration of "tens of best
//!   parameter combinations" Bolt's light-weight profiler searches.
//! * [`vendor`] — a cuBLAS/cuDNN stand-in: a fixed-function library whose
//!   per-workload configs were picked by exhaustive offline search,
//!   representing hand-tuned hardware-native performance.
//! * [`emit`] — renders the equivalent CUTLASS C++ instantiation for any
//!   kernel, which is what Bolt's code generator would compile.

pub mod b2b;
pub mod chain;
pub mod conv2d;
pub mod emit;
pub mod epilogue;
pub mod error;
pub mod gemm;
pub mod generator;
pub mod perf;
pub mod template;
pub mod tiles;
pub mod vendor;

pub use b2b::{B2bConvKernel, B2bGemmKernel, Residence};
pub use chain::{ChainStage, PersistentGemmChain};
pub use conv2d::{Conv2dConfig, Conv2dKernel};
pub use epilogue::{BiasMode, Epilogue};
pub use error::KernelError;
pub use gemm::{GemmKernel, GemmProblem, PARALLEL_M_ROWS};
pub use generator::{CandidateSeed, ConfigGenerator};
pub use template::GemmConfig;
pub use tiles::TileShape;
pub use vendor::VendorLibrary;

/// Result alias for kernel-library operations.
pub type Result<T> = std::result::Result<T, KernelError>;
