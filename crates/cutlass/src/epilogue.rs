//! Epilogue functors — the fusion patterns of paper Section 3.1.
//!
//! CUTLASS epilogues compute `D = activation(alpha * accum + beta * C)`
//! while the accumulator tile is still in registers, before the single
//! store to global memory. The paper lists four fusible patterns, all
//! covered here:
//!
//! 1. elementwise operators (activations) — [`Epilogue::activation`];
//! 2. data-type conversion — [`Epilogue::out_dtype`];
//! 3. broadcast vector over columns (bias add) — [`BiasMode::PerColumn`];
//! 4. partial reduction over columns — [`Epilogue::column_reduction`].

use serde::{Deserialize, Serialize};

use bolt_tensor::{Activation, DType, Tensor, TensorError};

use crate::Result;

/// How the `C` operand participates in the epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BiasMode {
    /// No `C` operand (`beta` ignored).
    None,
    /// `C` is a length-`N` vector broadcast over columns — the BiasAdd
    /// pattern.
    PerColumn,
    /// `C` is a full `M x N` matrix (residual connection / classic GEMM
    /// beta input).
    Full,
}

/// An epilogue specification attached to a GEMM or Conv kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Epilogue {
    /// Scalar multiplier on the accumulator.
    pub alpha: f32,
    /// Scalar multiplier on the `C` operand.
    pub beta: f32,
    /// How `C` is interpreted.
    pub bias: BiasMode,
    /// Elementwise activation applied last.
    pub activation: Activation,
    /// Output element type (pattern 2: fused data-type conversion).
    pub out_dtype: DType,
    /// If true, additionally produce the per-column partial sums of `D`
    /// (pattern 4), as CUTLASS's `EpilogueWithReduction` does.
    pub column_reduction: bool,
}

impl Epilogue {
    /// The plain `D = accum` epilogue in `dtype`.
    pub fn linear(out_dtype: DType) -> Self {
        Epilogue {
            alpha: 1.0,
            beta: 0.0,
            bias: BiasMode::None,
            activation: Activation::Identity,
            out_dtype,
            column_reduction: false,
        }
    }

    /// The common `D = act(accum + bias)` epilogue.
    pub fn bias_activation(activation: Activation, out_dtype: DType) -> Self {
        Epilogue {
            alpha: 1.0,
            beta: 1.0,
            bias: BiasMode::PerColumn,
            activation,
            out_dtype,
            column_reduction: false,
        }
    }

    /// Returns a copy with `column_reduction` enabled.
    pub fn with_column_reduction(mut self) -> Self {
        self.column_reduction = true;
        self
    }

    /// Applies the epilogue to one accumulator value at output coordinate
    /// `(row, col)`, rounding to the output dtype.
    #[inline]
    pub fn apply(&self, acc: f32, row: usize, col: usize, c: Option<&Tensor>) -> f32 {
        let c_val = match (self.bias, c) {
            (BiasMode::None, _) | (_, None) => 0.0,
            (BiasMode::PerColumn, Some(c)) => c.data()[col],
            (BiasMode::Full, Some(c)) => c.get2(row, col),
        };
        let v = self.activation.apply(self.alpha * acc + self.beta * c_val);
        self.out_dtype.quantize(v)
    }

    /// Validates that `c` matches the bias mode for an `m x n` output.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the `C` operand does not match
    /// `self.bias`.
    pub fn validate_c(&self, c: Option<&Tensor>, m: usize, n: usize) -> Result<()> {
        match (self.bias, c) {
            (BiasMode::None, _) => Ok(()),
            (BiasMode::PerColumn, Some(c)) if c.shape().rank() == 1 && c.shape().dim(0) == n => {
                Ok(())
            }
            (BiasMode::Full, Some(c)) if c.shape().rank() == 2 && c.shape().dims() == [m, n] => {
                Ok(())
            }
            (mode, Some(c)) => Err(TensorError::shape(
                format!("epilogue C operand for bias mode {mode:?}"),
                &[m, n],
                c.shape().dims(),
            )
            .into()),
            (_, None) => Err(TensorError::invalid("epilogue requires a C operand").into()),
        }
    }

    /// Arithmetic cost of the epilogue per output element, in
    /// (cuda-core flops, sfu ops) — used by the performance model.
    pub fn cost_per_elem(&self) -> (f64, f64) {
        let mut fma = 1.0; // alpha scale
        if self.bias != BiasMode::None {
            fma += 1.0;
        }
        if self.column_reduction {
            fma += 1.0;
        }
        fma += self.activation.fma_ops_per_elem();
        (fma, self.activation.sfu_ops_per_elem())
    }

    /// Extra global traffic of the epilogue per output tile, in bytes —
    /// bias vector reads, residual matrix reads, reduction writes.
    pub fn extra_bytes(&self, m: usize, n: usize) -> f64 {
        let elt = self.out_dtype.size_bytes() as f64;
        let mut bytes = 0.0;
        match self.bias {
            BiasMode::None => {}
            BiasMode::PerColumn => bytes += n as f64 * elt,
            BiasMode::Full => bytes += (m * n) as f64 * elt,
        }
        if self.column_reduction {
            bytes += n as f64 * 4.0; // f32 partial sums
        }
        bytes
    }

    /// The CUTLASS C++ epilogue functor name for the emitter.
    pub fn cutlass_name(&self) -> &'static str {
        use Activation::*;
        match self.activation {
            Identity => "cutlass::epilogue::thread::LinearCombination",
            ReLU => "cutlass::epilogue::thread::LinearCombinationRelu",
            Gelu => "cutlass::epilogue::thread::LinearCombinationGELU",
            Hardswish => "cutlass::epilogue::thread::LinearCombinationHardSwish",
            Sigmoid => "cutlass::epilogue::thread::LinearCombinationSigmoid",
            Silu => "cutlass::epilogue::thread::LinearCombinationSilu",
            Softplus => "cutlass::epilogue::thread::LinearCombinationGeneric<Softplus>",
        }
    }
}

/// Computes the per-column reduction (pattern 4) of an output matrix,
/// returning a length-`N` f32 tensor. Functional counterpart of
/// `column_reduction`.
pub fn reduce_columns(d: &Tensor) -> Tensor {
    let (m, n) = (d.shape().dim(0), d.shape().dim(1));
    let mut out = Tensor::zeros(&[n], DType::F32);
    for j in 0..n {
        let mut acc = 0.0;
        for i in 0..m {
            acc += d.get2(i, j);
        }
        out.data_mut()[j] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_identity() {
        let ep = Epilogue::linear(DType::F32);
        assert_eq!(ep.apply(2.5, 0, 0, None), 2.5);
    }

    #[test]
    fn bias_and_activation_apply() {
        let ep = Epilogue::bias_activation(Activation::ReLU, DType::F32);
        let bias = Tensor::from_vec(&[2], DType::F32, vec![1.0, -10.0]).unwrap();
        assert_eq!(ep.apply(2.0, 0, 0, Some(&bias)), 3.0);
        assert_eq!(ep.apply(2.0, 0, 1, Some(&bias)), 0.0);
    }

    #[test]
    fn dtype_conversion_rounds() {
        let ep = Epilogue::linear(DType::F16);
        let v = ep.apply(1.0 + 2f32.powi(-12), 0, 0, None);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn full_c_residual() {
        let mut ep = Epilogue::linear(DType::F32);
        ep.bias = BiasMode::Full;
        ep.beta = 2.0;
        let c = Tensor::from_vec(&[1, 1], DType::F32, vec![3.0]).unwrap();
        assert_eq!(ep.apply(1.0, 0, 0, Some(&c)), 7.0);
    }

    #[test]
    fn validate_c_shapes() {
        let ep = Epilogue::bias_activation(Activation::Identity, DType::F16);
        let good = Tensor::zeros(&[8], DType::F16);
        ep.validate_c(Some(&good), 4, 8).unwrap();
        let bad = Tensor::zeros(&[4], DType::F16);
        assert!(ep.validate_c(Some(&bad), 4, 8).is_err());
        assert!(ep.validate_c(None, 4, 8).is_err());
        assert!(Epilogue::linear(DType::F16).validate_c(None, 4, 8).is_ok());
    }

    #[test]
    fn costs_scale_with_activation() {
        let relu = Epilogue::bias_activation(Activation::ReLU, DType::F16);
        let softplus = Epilogue::bias_activation(Activation::Softplus, DType::F16);
        assert!(softplus.cost_per_elem().1 > relu.cost_per_elem().1);
        assert!(relu.cost_per_elem().0 >= 2.0);
    }

    #[test]
    fn extra_bytes_by_mode() {
        let none = Epilogue::linear(DType::F16);
        assert_eq!(none.extra_bytes(128, 64), 0.0);
        let bias = Epilogue::bias_activation(Activation::ReLU, DType::F16);
        assert_eq!(bias.extra_bytes(128, 64), 128.0);
        let red = bias.with_column_reduction();
        assert_eq!(red.extra_bytes(128, 64), 128.0 + 256.0);
    }

    #[test]
    fn column_reduction_functional() {
        let d = Tensor::from_vec(&[2, 3], DType::F32, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = reduce_columns(&d);
        assert_eq!(r.data(), &[5.0, 7.0, 9.0]);
    }
}
