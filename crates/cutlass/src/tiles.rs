//! Tile shapes of the GEMM hierarchy.
//!
//! CUTLASS decomposes a GEMM into threadblock tiles in shared memory, warp
//! tiles in the register file, and instruction (MMA) tiles consumed by the
//! tensor cores (paper Figure 2). All three levels are described by an
//! `(M, N, K)` [`TileShape`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// An `(M, N, K)` tile of the GEMM iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Rows of the output tile.
    pub m: usize,
    /// Columns of the output tile.
    pub n: usize,
    /// Depth of the reduction slice.
    pub k: usize,
}

impl TileShape {
    /// Creates a tile shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        TileShape { m, n, k }
    }

    /// Output elements covered by the tile.
    pub const fn mn(&self) -> usize {
        self.m * self.n
    }

    /// Multiply-accumulates per tile.
    pub const fn macs(&self) -> usize {
        self.m * self.n * self.k
    }

    /// True if `self` evenly divides `outer` in all three dimensions.
    pub fn divides(&self, outer: &TileShape) -> bool {
        self.m != 0
            && self.n != 0
            && self.k != 0
            && outer.m.is_multiple_of(self.m)
            && outer.n.is_multiple_of(self.n)
            && outer.k.is_multiple_of(self.k)
    }

    /// The Turing/Ampere HMMA instruction shape for FP16: `16x8x8`.
    pub const MMA_16X8X8: TileShape = TileShape::new(16, 8, 8);
    /// The larger Turing/Ampere HMMA shape for FP16: `16x8x16`.
    pub const MMA_16X8X16: TileShape = TileShape::new(16, 8, 16);
    /// The Volta HMMA shape: `8x8x4`.
    pub const MMA_8X8X4: TileShape = TileShape::new(8, 8, 4);
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

impl From<(usize, usize, usize)> for TileShape {
    fn from((m, n, k): (usize, usize, usize)) -> Self {
        TileShape { m, n, k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = TileShape::new(128, 128, 32);
        assert_eq!(t.mn(), 16384);
        assert_eq!(t.macs(), 524288);
    }

    #[test]
    fn divisibility() {
        let tb = TileShape::new(128, 128, 32);
        let warp = TileShape::new(64, 64, 32);
        assert!(warp.divides(&tb));
        let odd = TileShape::new(48, 64, 32);
        assert!(!odd.divides(&tb));
        let zero = TileShape::new(0, 64, 32);
        assert!(!zero.divides(&tb));
    }

    #[test]
    fn display_and_from() {
        let t: TileShape = (64, 64, 32).into();
        assert_eq!(t.to_string(), "64x64x32");
    }

    #[test]
    fn mma_shapes_divide_typical_warps() {
        let warp = TileShape::new(64, 64, 32);
        assert!(TileShape::MMA_16X8X8.divides(&warp));
        assert!(TileShape::MMA_16X8X16.divides(&warp));
    }
}
